//! # DROM — Dynamic Resource Ownership Management (reproduction)
//!
//! Facade crate of the reproduction of *"DROM: Enabling Efficient and
//! Effortless Malleability for Resource Managers"* (D'Amico et al., ICPP 2018).
//! It re-exports every layer of the stack so examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`cpuset`] | `drom-cpuset` | CPU masks, node topology, distribution algorithms |
//! | [`shmem`] | `drom-shmem` | per-node DLB shared-memory registry |
//! | [`core`] | `drom-core` | the DROM API, the DLB application runtime, LeWI |
//! | [`ompsim`] | `drom-ompsim` | OpenMP-like runtime + OMPT tool interface |
//! | [`mpisim`] | `drom-mpisim` | MPI-like layer + PMPI interception |
//! | [`slurm`] | `drom-slurm` | SLURM-like controller, slurmd, slurmstepd, task/affinity |
//! | [`apps`] | `drom-apps` | NEST/CoreNeuron/Pils/STREAM mini-apps + performance models |
//! | [`sim`] | `drom-sim` | discrete-event replay of the paper's workloads |
//! | [`metrics`] | `drom-metrics` | tracing, counters, timelines, workload reports |
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the per-figure reproduction results.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use drom::core::{DromAdmin, DromFlags, DromProcess};
//! use drom::cpuset::CpuSet;
//! use drom::shmem::NodeShmem;
//!
//! // One node with 16 CPUs, one application owning all of them.
//! let shmem = Arc::new(NodeShmem::new("node0", 16));
//! let app = DromProcess::init(42, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
//!
//! // The resource manager attaches and takes half the node away.
//! let admin = DromAdmin::attach(Arc::clone(&shmem));
//! admin.set_process_mask(42, &CpuSet::from_range(0..8).unwrap(), DromFlags::default()).unwrap();
//!
//! // The application adapts at its next malleability point.
//! assert_eq!(app.poll_drom().unwrap().unwrap().count(), 8);
//! ```

#![forbid(unsafe_code)]

pub use drom_apps as apps;
pub use drom_core as core;
pub use drom_cpuset as cpuset;
pub use drom_metrics as metrics;
pub use drom_mpisim as mpisim;
pub use drom_ompsim as ompsim;
pub use drom_shmem as shmem;
pub use drom_sim as sim;
pub use drom_slurm as slurm;

/// Version of the reproduction, mirrored from the workspace manifest.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
