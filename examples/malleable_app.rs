//! A manually malleable application — the Listing 1 pattern.
//!
//! This is what an application without a supported programming model does to
//! become DROM-responsive: initialise DLB, poll DROM before every malleable
//! phase, adapt the thread count, compute, finalise. A second thread plays the
//! resource manager and keeps changing the process mask while the application
//! iterates, demonstrating that the changes are picked up at the iteration
//! boundaries ("its effect does not need to be immediate").
//!
//! Run with: `cargo run --example malleable_app`

use std::sync::Arc;
use std::time::Duration;

use drom::apps::kernel::busy_work;
use drom::apps::MalleableDriver;
use drom::core::{DromAdmin, DromFlags};
use drom::cpuset::CpuSet;
use drom::shmem::NodeShmem;

fn main() {
    let shmem = Arc::new(NodeShmem::new("node0", 8));

    // DLB_Init with the whole node (Listing 1, initialization).
    let driver = MalleableDriver::init(1, CpuSet::first_n(8), Arc::clone(&shmem)).unwrap();
    println!(
        "application initialised with {} CPUs",
        driver.process().num_cpus()
    );

    // The "resource manager": shrinks the application half-way through and
    // gives the CPUs back near the end.
    let admin_shmem = Arc::clone(&shmem);
    let manager = std::thread::spawn(move || {
        let admin = DromAdmin::attach(admin_shmem);
        std::thread::sleep(Duration::from_millis(30));
        admin
            .set_process_mask(1, &CpuSet::from_range(0..2).unwrap(), DromFlags::default())
            .unwrap();
        println!("[manager] shrank the application to 2 CPUs");
        std::thread::sleep(Duration::from_millis(60));
        admin
            .set_process_mask(1, &CpuSet::first_n(8), DromFlags::default())
            .unwrap();
        println!("[manager] returned all 8 CPUs");
    });

    // The main loop (Listing 1): poll DROM, adapt, run the parallel phase.
    let report = driver.run_iterations(12, |runtime, iteration| {
        runtime.parallel(|_ctx| {
            busy_work(400_000);
        });
        // Keep iterations long enough for the manager's changes to land
        // between them.
        let _ = iteration;
        std::thread::sleep(Duration::from_millis(10));
    });

    manager.join().unwrap();

    println!("\niteration log:");
    for it in &report.iterations {
        println!(
            "  iteration {:>2}: team of {} threads{}",
            it.iteration,
            it.team_size,
            if it.mask_changed {
                "  <- mask change applied"
            } else {
                ""
            }
        );
    }
    println!(
        "\n{} mask changes were applied across {} iterations; final team size {}",
        report.mask_changes,
        report.iterations.len(),
        report.final_team_size().unwrap_or(0)
    );

    // DLB_Finalize.
    driver.finalize().unwrap();
    println!("application finalised cleanly");
}
