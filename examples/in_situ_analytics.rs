//! Use case 1 (in-situ analytics) executed for real on the simulated node
//! manager: a NEST-like simulation owns two nodes, a Pils-like analytics job
//! is co-allocated through the DROM-enabled task/affinity plugin, and the
//! simulation shrinks and re-expands without being restarted.
//!
//! Run with: `cargo run --example in_situ_analytics`

use std::sync::Arc;

use drom::apps::{NestSim, Pils, Table1};
use drom::core::DromProcess;
use drom::ompsim::{DromOmptTool, OmpRuntime};
use drom::slurm::{Cluster, JobSpec, Srun};

fn main() {
    // Two MareNostrum III nodes managed by a DROM-enabled SLURM.
    let cluster = Arc::new(Cluster::marenostrum3(2));
    let srun = Srun::new(Arc::clone(&cluster), true);
    let nodes: Vec<String> = cluster.node_names();

    // --- 1. Launch the simulation: NEST Conf. 1 (2 MPI x 16 OpenMP). ---------
    let sim_spec = JobSpec::new(1, "NEST Conf. 1").with_tasks(2).with_nodes(2);
    let launched_sim = srun.launch(&sim_spec, &nodes).unwrap();
    println!("launched {}:", sim_spec.name);
    for task in &launched_sim.tasks {
        println!(
            "  task {} on {} mask {}",
            task.task_index, task.node, task.mask
        );
    }

    // Each task gets a DROM process, an OpenMP-like runtime and the DROM OMPT
    // tool (this is what pre-loading DLB does for a real application).
    let sim_tasks: Vec<(Arc<DromProcess>, OmpRuntime, Arc<DromOmptTool>)> = launched_sim
        .tasks
        .iter()
        .map(|task| {
            let shmem = cluster.shmem(&task.node).unwrap();
            let process = Arc::new(DromProcess::init_from_environ(&task.environ, shmem).unwrap());
            let runtime = OmpRuntime::new(16);
            let tool = DromOmptTool::attach(&runtime, Arc::clone(&process));
            (process, runtime, tool)
        })
        .collect();

    // Run a first chunk of simulation iterations on the full nodes.
    let nest = NestSim::new(Table1::NEST_CONF1).scaled(4, 1_500);
    for (i, (_, runtime, tool)) in sim_tasks.iter().enumerate() {
        let report = nest.run_rank(runtime, Some(tool), None, i);
        println!(
            "  rank {i}: {} iterations on team sizes {:?}",
            report.iterations_done, report.team_sizes
        );
    }

    // --- 2. The analytics job arrives: Pils Conf. 3 (2 MPI x 4 OmpSs). -------
    let ana_spec = JobSpec::new(2, "Pils Conf. 3").with_tasks(2).with_nodes(2);
    let launched_ana = srun.launch(&ana_spec, &nodes).unwrap();
    println!("co-allocated {}:", ana_spec.name);
    for task in &launched_ana.tasks {
        println!(
            "  task {} on {} mask {}",
            task.task_index, task.node, task.mask
        );
    }

    // The simulation keeps iterating; its next parallel constructs run on the
    // reduced team (the launch already posted the pending shrink).
    for (i, (process, runtime, tool)) in sim_tasks.iter().enumerate() {
        let report = nest.run_rank(runtime, Some(tool), None, i);
        println!(
            "  rank {i} while sharing: team sizes {:?} (mask {})",
            report.team_sizes,
            process.current_mask()
        );
    }

    // The analytics runs to completion on its slice of the nodes.
    let pils = Pils::new(Table1::PILS_CONF3).scaled(3, 32, 1_000);
    for task in &launched_ana.tasks {
        let shmem = cluster.shmem(&task.node).unwrap();
        let process = Arc::new(DromProcess::init_from_environ(&task.environ, shmem).unwrap());
        let runtime = OmpRuntime::new(16);
        let tool = DromOmptTool::attach(&runtime, Arc::clone(&process));
        let report = pils.run_rank(&runtime, Some(&tool));
        println!(
            "  analytics rank on {}: {} packages on team sizes {:?}",
            task.node, report.packages_done, report.team_sizes
        );
        process.finalize().unwrap();
    }

    // --- 3. The analytics finishes: CPUs return to the simulation. -----------
    srun.complete(&launched_ana).unwrap();
    for (i, (process, runtime, tool)) in sim_tasks.iter().enumerate() {
        let report = nest.run_rank(runtime, Some(tool), None, i);
        println!(
            "  rank {i} after release: team sizes {:?} (mask {})",
            report.team_sizes,
            process.current_mask()
        );
    }

    // --- 4. Tear down the simulation job. ------------------------------------
    for (process, _, _) in &sim_tasks {
        process.finalize().unwrap();
    }
    srun.complete(&launched_sim).unwrap();
    println!(
        "workload finished; node utilization now {:.0}%",
        srun.slurmd(&nodes[0]).unwrap().utilization() * 100.0
    );
}
