//! Use case 2 (high-priority job) replayed in virtual time: a long NEST
//! simulation and a high-priority CoreNeuron simulation share two nodes.
//! The example prints the Serial vs DROM comparison the paper reports in
//! Figures 13 and 15, plus an ASCII rendering of the cycles/µs timelines.
//!
//! Run with: `cargo run --example high_priority_job`

use drom::metrics::export::series_to_ascii;
use drom::metrics::Table;
use drom::sim::{
    comparison_row, high_priority_workload, job_cycles_series, Scenario, WorkloadSimulator,
};

fn main() {
    let workload = high_priority_workload(200.0);
    println!("workload:");
    for job in &workload {
        println!(
            "  job {} '{}' submitted at {:.0}s (priority {})",
            job.id, job.name, job.submit_s, job.priority
        );
    }

    let serial = WorkloadSimulator::new(Scenario::Serial).run(&workload);
    let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);

    // --- System metrics (Figures 13 and 15). --------------------------------
    let mut table = Table::new(
        "Use case 2: high-priority job (Serial vs DROM)",
        &["metric", "Serial [s]", "DROM [s]", "improvement [%]"],
    );
    let rows = vec![
        comparison_row(
            "total run time",
            serial.report.total_run_time() as f64 / 1e6,
            drom.report.total_run_time() as f64 / 1e6,
        ),
        comparison_row(
            "average response time",
            serial.report.average_response_time() / 1e6,
            drom.report.average_response_time() / 1e6,
        ),
    ];
    for row in &rows {
        table.add_row(&[
            row.label.clone(),
            format!("{:.0}", row.serial),
            format!("{:.0}", row.drom),
            format!("{:+.1}", row.improvement_pct),
        ]);
    }
    println!("\n{}", table.render());

    // Per-job response times.
    let mut per_job = Table::new("Per-job response times", &["job", "Serial [s]", "DROM [s]"]);
    for job in &workload {
        per_job.add_row(&[
            job.name.clone(),
            format!(
                "{:.0}",
                serial.report.response_time_of(&job.name).unwrap_or(0) as f64 / 1e6
            ),
            format!(
                "{:.0}",
                drom.report.response_time_of(&job.name).unwrap_or(0) as f64 / 1e6
            ),
        ]);
    }
    println!("{}", per_job.render());

    // --- The Figure 13 view: cycles/µs over time, per job, per scenario. -----
    println!("cycles per microsecond over time (darker = busier threads):\n");
    for (label, result) in [("Serial", &serial), ("DROM", &drom)] {
        let bin = result.makespan_s() / 60.0;
        let series: Vec<Vec<f64>> = workload
            .iter()
            .map(|job| job_cycles_series(result, job.id, bin))
            .collect();
        let labels: Vec<String> = workload
            .iter()
            .map(|job| format!("{label:>6} {}", job.name))
            .collect();
        print!("{}", series_to_ascii(&labels, &series, 60));
        println!();
    }
    println!(
        "DROM starts the high-priority job {:.0}s earlier than Serial.",
        (serial.report.jobs[1].start as f64
            - drom
                .report
                .jobs
                .iter()
                .find(|j| j.name.contains("CoreNeuron"))
                .map(|j| j.start as f64)
                .unwrap_or(0.0))
            / 1e6
    );
}
