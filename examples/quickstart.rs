//! Quickstart: the DROM API end to end on one node.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The example walks the whole life cycle the paper describes in Section 3:
//! an application registers with DLB, a resource manager attaches as a DROM
//! administrator, shrinks the application, pre-initialises a second process on
//! the freed CPUs, and everything is returned when the newcomer finishes. It
//! also shows the asynchronous (helper thread + callback) mode.

use std::sync::Arc;
use std::time::Duration;

use drom::core::{AsyncListener, DromAdmin, DromFlags, DromProcess};
use drom::cpuset::CpuSet;
use drom::shmem::NodeShmem;

fn main() {
    // One MareNostrum III style node: 16 CPUs.
    let shmem = Arc::new(NodeShmem::new("node0", 16));

    // 1. A running application initialises DLB with the whole node.
    let simulation =
        Arc::new(DromProcess::init(100, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap());
    println!(
        "simulation registered: pid {} mask {}",
        simulation.pid(),
        simulation.current_mask()
    );

    // 2. The resource manager attaches as a DROM administrator.
    let admin = DromAdmin::attach(Arc::clone(&shmem));
    println!("admin attached to {}", admin.node_name());
    println!("registered pids: {:?}", admin.get_pid_list().unwrap());

    // 3. The administrator shrinks the simulation to half the node.
    admin
        .set_process_mask(
            100,
            &CpuSet::from_range(0..8).unwrap(),
            DromFlags::default(),
        )
        .unwrap();
    // The application observes the change at its next malleability point.
    let new_mask = simulation.poll_drom().unwrap().expect("pending update");
    println!(
        "simulation shrank to {} ({} CPUs)",
        new_mask,
        new_mask.count()
    );

    // 4. A second process is pre-initialised on the freed CPUs and started.
    let (environ, _victims) = admin
        .pre_init(
            200,
            &CpuSet::from_range(8..16).unwrap(),
            DromFlags::default().with_steal(),
        )
        .unwrap();
    let analytics = DromProcess::init_from_environ(&environ, Arc::clone(&shmem)).unwrap();
    println!(
        "analytics started: pid {} mask {}",
        analytics.pid(),
        analytics.current_mask()
    );

    // 5. Asynchronous mode: a helper thread applies updates without polling.
    let listener = AsyncListener::spawn(Arc::clone(&simulation), |mask| {
        println!("async callback: simulation mask is now {mask}");
    })
    .unwrap();

    // 6. The analytics finishes; DROM_PostFinalize-style cleanup returns its
    //    CPUs to the original owner, and the helper thread applies the
    //    expansion without any explicit poll.
    analytics.finalize().unwrap();
    let _ = admin.post_finalize(200, DromFlags::default());
    for _ in 0..400 {
        if simulation.num_cpus() == 16 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("simulation runs on {} CPUs again", simulation.num_cpus());
    let applied = listener.stop();
    println!("helper thread applied {applied} asynchronous update(s)");

    // 7. Shared-memory statistics (the data a future DROM-aware scheduler
    //    would consume).
    let stats = admin.stats().unwrap();
    println!(
        "node stats: {} registers, {} polls ({} with updates), {} mask sets",
        stats.registers, stats.polls, stats.poll_updates, stats.mask_sets
    );

    simulation.finalize().unwrap();
    admin.detach().unwrap();
    println!("done");
}
