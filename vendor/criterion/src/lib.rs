//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the `drom-bench` crate uses (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros) with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery.
//!
//! Mode selection mirrors criterion's behaviour with `harness = false`
//! targets: only when cargo invokes the bench executable with `--bench`
//! (`cargo bench`) does the sampling loop run and print a mean wall-clock
//! time per iteration; under `cargo test` (no flag) every benchmark body runs
//! exactly once as a smoke test. Swapping the path dependency for crates.io
//! `criterion` restores full statistics without source changes.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Returns the argument, hindering the optimizer from deleting the value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo test`: run each body once, measure nothing.
    Test,
    /// `cargo bench`: run the sampling loop and report timings.
    Bench,
}

fn mode_from_args() -> Mode {
    // Cargo passes `--bench` to `cargo bench` runs of harness=false targets
    // and no flag at all under `cargo test`, so measuring is opt-in.
    if std::env::args().any(|a| a == "--bench") {
        Mode::Bench
    } else {
        Mode::Test
    }
}

/// Entry point handed to `criterion_group!` functions.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: mode_from_args(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            mode: self.mode,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Registers a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    mode: Mode,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the wall-clock budget one benchmark may spend measuring.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs (test mode) or measures (bench mode) one benchmark body.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        match self.mode {
            Mode::Test => {
                let mut bencher = Bencher {
                    iters: 1,
                    elapsed: Duration::ZERO,
                };
                f(&mut bencher);
            }
            Mode::Bench => {
                let deadline = Instant::now() + self.measurement_time;
                let mut total = Duration::ZERO;
                let mut iters: u64 = 0;
                for _ in 0..self.sample_size {
                    let mut bencher = Bencher {
                        iters: 1,
                        elapsed: Duration::ZERO,
                    };
                    f(&mut bencher);
                    total += bencher.elapsed;
                    iters += bencher.iters;
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                let mean = if iters > 0 {
                    total / iters as u32
                } else {
                    Duration::ZERO
                };
                println!(
                    "{}/{:<40} mean {:>12.3?} ({} iters)",
                    self.name, id, mean, iters
                );
            }
        }
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`; in test mode it runs exactly once.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 3);
    }

    #[test]
    fn group_runs_body_in_test_mode() {
        let mut c = Criterion { mode: Mode::Test };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1));
        group.bench_function("b", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
