//! Offline stand-in for `serde_derive`.
//!
//! The DROM reproduction only uses `#[derive(Serialize, Deserialize)]` as a
//! marker (no value is ever serialized to an interchange format inside the
//! workspace), so these derives emit empty impls of the marker traits defined
//! by the sibling `serde` stub. The build container has no network access to
//! crates.io; swapping the `vendor/serde*` path dependencies for the real
//! crates restores full serde behaviour without touching any other source.

#![forbid(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Extract the type identifier following the `struct`/`enum`/`union` keyword.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    // A generic type would need the parameters repeated on the
                    // emitted impl; fail loudly rather than generating an impl
                    // that errors far away from this stub.
                    if let Some(TokenTree::Punct(p)) = iter.next() {
                        if p.as_char() == '<' {
                            panic!(
                                "the vendored serde stub does not support deriving on \
                                 generic types (found `{name}<…>`); either make the type \
                                 concrete or extend vendor/serde_derive"
                            );
                        }
                    }
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde stub derive: could not find a type name in the input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}
