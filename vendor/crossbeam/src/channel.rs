//! Unbounded MPMC channel with `crossbeam-channel`-compatible signatures.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected_for_recv(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_for_send(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

/// Sending half of an unbounded channel; `Clone + Send + Sync`.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of an unbounded channel; `Clone + Send + Sync`.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.disconnected_for_send() {
            return Err(SendError(value));
        }
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }

    pub fn is_empty(&self) -> bool {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake blocked receivers so they observe EOF.
            // The notify must happen under the queue mutex: a receiver that
            // has already loaded senders > 0 but not yet parked on the condvar
            // still holds the mutex, so acquiring it here orders this notify
            // after that receiver's wait and closes the lost-wakeup window.
            let _queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.disconnected_for_recv() {
                return Err(RecvError);
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match queue.pop_front() {
            Some(value) => Ok(value),
            None if self.shared.disconnected_for_recv() => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.disconnected_for_recv() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self
                .shared
                .ready
                .wait_timeout(queue, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
            if result.timed_out() && queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Drains currently queued messages without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }

    pub fn is_empty(&self) -> bool {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn recv_sees_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn drop_wakes_blocked_receiver() {
        let (tx, rx) = unbounded::<u8>();
        let t = thread::spawn(move || rx.recv());
        // Give the receiver time to park on the condvar before disconnecting.
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
        t.join().unwrap();
    }
}
