//! Offline stand-in for the `crossbeam` facade.
//!
//! Only the `channel` module is provided — an unbounded MPMC channel whose
//! `Sender` and `Receiver` are both `Clone + Send + Sync`, matching the
//! `crossbeam-channel` ownership model the DROM runtimes rely on (std's
//! `mpsc::Receiver` cannot be shared, so this is a small Mutex+Condvar queue
//! rather than a wrapper).

#![forbid(unsafe_code)]

pub mod channel;
