//! Offline stand-in for `parking_lot`, implemented on top of `std::sync`.
//!
//! Exposes the (small) subset of the `parking_lot` API the DROM workspace
//! uses: poison-free [`Mutex`]/[`RwLock`] whose guards are obtained without a
//! `Result`, and a [`Condvar`] that takes `&mut MutexGuard` like the real
//! crate. Lock poisoning is deliberately swallowed (`parking_lot` has no
//! poisoning); a panicked writer simply leaves the last written state.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a `Condvar` can temporarily take ownership during a wait.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_deref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable mirroring `parking_lot::Condvar` (waits take
/// `&mut MutexGuard` rather than consuming the guard).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard already taken");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Waits until `deadline`, returning whether the wait timed out.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Waits for at most `timeout`, returning whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard already taken");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock mirroring `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
