//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types so
//! that downstream users can persist traces and workload reports, but nothing
//! inside the repository serializes through serde itself. This stub keeps the
//! derive surface compiling in the offline build container; replacing the
//! `vendor/serde*` path dependencies with the real crates.io packages restores
//! full serialization support with no source changes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of [`serde::Serialize`](https://docs.rs/serde).
pub trait Serialize {}

/// Marker form of [`serde::Deserialize`](https://docs.rs/serde).
pub trait Deserialize<'de> {}
