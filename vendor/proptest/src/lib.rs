//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the DROM workspace uses:
//! [`Strategy`](strategy::Strategy) over integer/float ranges and tuples, `prop_map`,
//! [`collection::vec`]/[`collection::btree_set`], `prop_oneof!`, the
//! `proptest!` test macro with `#![proptest_config(..)]`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics with
//! the sampled inputs' debug output. Sampling is fully deterministic — the RNG
//! is seeded from the test's module path and name — so failures reproduce
//! across runs. Swapping this path dependency for the crates.io `proptest`
//! restores shrinking without source changes.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `any::<T>()` for the primitive types the workspace samples.
    pub fn any<T: crate::strategy::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Defines randomized test functions: `proptest! { #[test] fn f(x in 0..4) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest: gave up after {} attempts ({} accepted; too many prop_assume! rejections)",
                            attempts - 1, accepted
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body; ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest case failed: {}\n\tinputs: {}",
                            msg, inputs
                        ),
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::OneOf::arm($strat) ),+
        ])
    };
}

/// Like `assert!` but returns a [`TestCaseError`](test_runner::TestCaseError)
/// instead of panicking, so
/// the runner can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Like `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
