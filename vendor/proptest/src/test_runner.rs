//! Test-runner types: config, errors, and the deterministic RNG.

use std::fmt;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the suite fast while still
        // exercising a meaningful slice of the input space.
        Self { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` failed — resample, don't count as a failure.
    Reject(String),
    /// `prop_assert*!` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }

    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Reject(r) => write!(f, "rejected: {r}"),
            Self::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic xorshift64* RNG seeded from the test name, so every run
/// samples the same cases and failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: hash | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Marsaglia); period 2^64-1, plenty for test sampling.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::deterministic("y").next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::deterministic("f");
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
