//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-start, exclusive-end length range for collection strategies.
///
/// Mirrors proptest's `SizeRange`: the conversions only exist for `usize`
/// shapes, which is what lets an untyped `1..40` argument infer as `usize`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty collection size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            start: len,
            end: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            start: *r.start(),
            end: r.end().saturating_add(1),
        }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `sizes`.
pub struct VecStrategy<S> {
    element: S,
    sizes: SizeRange,
}

/// `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        sizes: sizes.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.sizes.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy producing `BTreeSet`s with a target size drawn from `sizes`.
///
/// As in real proptest, duplicate samples may make the set smaller than the
/// drawn target size.
pub struct BTreeSetStrategy<S> {
    element: S,
    sizes: SizeRange,
}

/// `proptest::collection::btree_set(element, size_range)`.
pub fn btree_set<S>(element: S, sizes: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        sizes: sizes.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.sizes.sample(rng);
        let mut set = BTreeSet::new();
        // Bounded attempts so narrow element domains cannot loop forever.
        for _ in 0..target.saturating_mul(4) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.sample(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = vec(0usize..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_stays_within_domain_and_size() {
        let mut rng = TestRng::deterministic("set");
        for _ in 0..100 {
            let s = btree_set(0usize..256, 0..64).sample(&mut rng);
            assert!(s.len() < 64);
            assert!(s.iter().all(|&x| x < 256));
        }
    }

    #[test]
    fn fixed_size_and_inclusive_conversions() {
        let mut rng = TestRng::deterministic("conv");
        assert_eq!(vec(0usize..5, 3).sample(&mut rng).len(), 3);
        let len = vec(0usize..5, 2..=4).sample(&mut rng).len();
        assert!((2..=4).contains(&len));
    }
}
