//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for sampling values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking; a strategy is
/// just a deterministic sampler over the [`TestRng`].
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards sampled values failing `f` by resampling (bounded retries).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy (proptest's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(move |rng: &mut TestRng| self.sample(rng))
    }
}

/// Boxed sampler; what `prop_oneof!` arms erase to.
pub type BoxedStrategy<V> = Box<dyn Fn(&mut TestRng) -> V>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let value = self.inner.sample(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter: no accepted value in 1024 samples");
    }
}

/// Uniform choice between same-typed strategies; built by `prop_oneof!`.
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }

    /// Erases one `prop_oneof!` arm.
    pub fn arm<S>(strategy: S) -> BoxedStrategy<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        strategy.boxed()
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty integer range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    // Full 64-bit domain: the span wrapped to zero.
                    return rng.next_u64() as $ty;
                }
                (start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            type Strategy = RangeInclusive<$ty>;
            fn arbitrary() -> Self::Strategy {
                <$ty>::MIN..=<$ty>::MAX
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = Map<Range<u8>, fn(u8) -> bool>;
    fn arbitrary() -> Self::Strategy {
        (0u8..2).prop_map(|b| b == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..500 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-5i32..=5).sample(&mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn prop_map_and_oneof_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = crate::prop_oneof![
            (0usize..4).prop_map(|x| x * 10),
            (100usize..104).prop_map(|x| x),
        ];
        let mut seen_small = false;
        let mut seen_big = false;
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v < 40 && v % 10 == 0 || (100..104).contains(&v));
            seen_small |= v < 40;
            seen_big |= v >= 100;
        }
        assert!(seen_small && seen_big, "both arms should be exercised");
    }
}
