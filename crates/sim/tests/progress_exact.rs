//! Property tests for the engine's exact progress accounting
//! (`drom_sim::progress::JobProgress`).
//!
//! The pre-fix engine kept remaining work as an `f64` and re-derived the
//! completion instant with `remaining / rate` + `.ceil()` on every resize,
//! so repeated resizes could drift a job's completion time away from the
//! work actually delivered (`100 / (2.0/3.0)` rounds to 150.00000000000003,
//! which ceils to 151). These properties pin the exact-integer contract:
//!
//! * any sequence of **no-op** resizes leaves the completion time unchanged;
//! * across arbitrary resize sequences the CPU-time delivered equals the
//!   job's work, with the single documented rounding: the completion event
//!   lands on the next whole microsecond, so the allocation is held for at
//!   most one extra fractional microsecond (< `allocated` CPU-µs).

use proptest::prelude::*;

use drom_sim::progress::JobProgress;
use drom_sim::trace::TraceJob;
use drom_sim::ClusterSim;
use drom_slurm::policy::QueuedJob;
use drom_slurm::MalleablePolicy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No-op resizes at arbitrary instants before completion never move the
    /// completion time.
    #[test]
    fn noop_resizes_never_move_completion(
        duration in 1u64..5_000,
        request in 1usize..64,
        alloc_raw in 1usize..64,
        offsets in proptest::collection::vec(0u64..5_000u64, 0..12),
    ) {
        let alloc = alloc_raw.min(request);
        let mut p = JobProgress::start(duration, request, alloc, 0);
        let expected = p.completion_us();
        let mut times: Vec<u64> = offsets
            .into_iter()
            .filter(|&t| t < expected)
            .collect();
        times.sort_unstable();
        for t in times {
            p.resize(t, alloc);
            prop_assert_eq!(
                p.completion_us(),
                expected,
                "no-op resize at t={} drifted the completion",
                t
            );
        }
    }

    /// Across an arbitrary resize sequence, the busy CPU-time integral over
    /// [start, completion] brackets the job's work within one event rounding
    /// (`work ≤ delivered < work + final_allocation`), and the work itself
    /// is fully delivered by the completion instant.
    #[test]
    fn delivered_cpu_time_equals_work(
        duration in 1u64..5_000,
        request in 1usize..64,
        resizes in proptest::collection::vec((1u64..500u64, 1usize..64usize), 0..10),
    ) {
        let work = duration as u128 * request as u128;
        let first_alloc = request; // start at full width
        let mut p = JobProgress::start(duration, request, first_alloc, 0);
        let mut delivered: u128 = 0;
        let mut clock: u64 = 0;
        let mut alloc = first_alloc;
        for (gap, new_alloc_raw) in resizes {
            let new_alloc = new_alloc_raw.min(request);
            let next = clock + gap;
            if next >= p.completion_us() {
                break; // the job would already have completed
            }
            delivered += alloc as u128 * (next - clock) as u128;
            p.resize(next, new_alloc);
            clock = next;
            alloc = new_alloc;
        }
        let end = p.completion_us();
        delivered += alloc as u128 * (end - clock) as u128;
        prop_assert!(delivered >= work, "work lost: {} < {}", delivered, work);
        prop_assert!(
            delivered < work + alloc as u128,
            "more than one event-rounding of over-delivery: {} vs {}",
            delivered,
            work
        );
        // Reconciling at the completion instant leaves exactly zero work.
        p.resize(end, alloc);
        prop_assert_eq!(p.work_remaining(), 0u128);
    }

    /// The exactness guarantees are properties of the integer `(work, rate)`
    /// pair, not of linear speedup: under an arbitrary **monotone non-linear
    /// rate table** (the `SpeedupCurve` shape the model-aware path feeds the
    /// engine), no-op rate changes never move the completion instant and the
    /// delivered work equals the job's work within the single event
    /// rounding.
    #[test]
    fn nonlinear_rates_preserve_exactness(
        duration in 1u64..5_000,
        increments in proptest::collection::vec(0u64..1_000_000u64, 1..16),
        picks in proptest::collection::vec((1u64..500u64, 0usize..16usize), 0..10),
    ) {
        // A monotone rate table at an arbitrary fixed-point scale.
        let mut rates: Vec<u64> = Vec::with_capacity(increments.len());
        let mut acc = 0u64;
        for inc in &increments {
            acc += inc + 1;
            rates.push(acc);
        }
        let full = *rates.last().unwrap();
        let work = duration as u128 * full as u128;
        let mut p = JobProgress::start_scaled(work, full, 0);
        prop_assert_eq!(p.completion_us(), duration);
        let mut delivered: u128 = 0;
        let mut clock: u64 = 0;
        let mut rate = full;
        for (gap, pick) in picks {
            let next = clock + gap;
            if next >= p.completion_us() {
                break;
            }
            delivered += rate as u128 * (next - clock) as u128;
            // A no-op change at an arbitrary instant must not move the
            // completion…
            let before = p.completion_us();
            p.set_rate(next, rate);
            prop_assert_eq!(p.completion_us(), before, "no-op drift at t={}", next);
            // …and then the real rate switch takes effect exactly.
            p.set_rate(next, rates[pick % rates.len()]);
            rate = rates[pick % rates.len()];
            clock = next;
        }
        let end = p.completion_us();
        delivered += rate as u128 * (end - clock) as u128;
        prop_assert!(delivered >= work, "work lost: {} < {}", delivered, work);
        prop_assert!(
            delivered < work + rate as u128,
            "more than one event-rounding of over-delivery: {} vs {}",
            delivered,
            work
        );
        p.set_rate(end, rate);
        prop_assert_eq!(p.work_remaining(), 0u128);
    }

    /// A shrink/expand round-trip of a **static-partition** job — the
    /// calibrated NEST curve, where shrinking costs more than linear —
    /// conserves work exactly: the work delivered through the shrunk
    /// interval plus the full-rate intervals equals the job's work within
    /// the single event rounding.
    #[test]
    fn static_partition_round_trip_conserves_work(
        duration in 100u64..5_000,
        shrink_at in 0u64..2_000,
        shrink_span in 1u64..4_000,
        width in 8usize..16,
    ) {
        let curve = drom_sim::speedup_curve(drom_apps::AppKind::Nest, 16, 16);
        let full = curve.full_rate();
        let shrunk = curve.rate(width);
        let work = duration as u128 * full as u128;
        let mut p = JobProgress::start_scaled(work, full, 0);
        prop_assert_eq!(p.completion_us(), duration);
        let t1 = shrink_at.min(duration.saturating_sub(1));
        p.set_rate(t1, shrunk);
        let t2 = (t1 + shrink_span).min(p.completion_us().saturating_sub(1)).max(t1);
        p.set_rate(t2, full);
        let end = p.completion_us();
        let delivered = full as u128 * t1 as u128
            + shrunk as u128 * (t2 - t1) as u128
            + full as u128 * (end - t2) as u128;
        prop_assert!(delivered >= work, "work lost across the round trip");
        prop_assert!(
            delivered < work + full as u128,
            "round trip over-delivered more than one event rounding"
        );
        // The shrunk stretch really ran sub-linearly (the curve is not a
        // disguised linear table).
        prop_assert!(shrunk < full);
    }
}

/// Deterministic regression: a job running at 2/3 of its request completes
/// exactly when its work runs out. The f64 path computed `100 / (2/3)` as
/// `150.00000000000003` and ceiled it to 151 — one spurious microsecond per
/// re-quantization.
#[test]
fn two_thirds_rate_completes_exactly() {
    // Node of 16 CPUs: a rigid 14-wide job pins the node, then a malleable
    // 3-wide job (floor 1, shrink bound ⌈3/2⌉ = 2) is admitted on the 2
    // remaining CPUs and runs shrunk for its whole life.
    let jobs = vec![
        TraceJob {
            job: QueuedJob::new(1, 1, 14)
                .with_submit_us(0)
                .with_expected_duration_us(100_000),
            duration_us: 100_000,
        },
        TraceJob {
            job: QueuedJob::new(2, 1, 3)
                .malleable(1)
                .with_submit_us(5)
                .with_expected_duration_us(100),
            duration_us: 100,
        },
    ];
    let report = ClusterSim::new(1, 16)
        .run(Box::new(MalleablePolicy::default()), &jobs)
        .unwrap();
    let j2 = report.jobs().iter().find(|j| j.name == "job2").unwrap();
    assert_eq!(j2.start, 5);
    // 100 µs × 3 CPUs = 300 CPU-µs at 2 CPUs → exactly 150 µs, not 151.
    assert_eq!(j2.end, 155);
}
