//! Discrete-event replay of the paper's workload experiments in virtual time.
//!
//! The evaluation (Section 6) runs two-job workloads on two MareNostrum III
//! nodes and compares a *Serial* scenario (the second job waits for the first
//! to free the nodes) against the *DROM* scenario (the second job is
//! co-allocated and the node CPUs are repartitioned on the fly). We cannot run
//! on MN3, so this crate replays those workloads in virtual time:
//!
//! * the scheduling and placement decisions come from the same logic the real
//!   execution path uses (`drom-slurm`'s controller admission rule and the
//!   equipartition arithmetic of `drom-cpuset`);
//! * the progress of every job under a given CPU assignment comes from the
//!   calibrated application models of `drom-apps::perfmodel`.
//!
//! The result of a simulation is a [`WorkloadReport`](drom_metrics::WorkloadReport)
//! (total run time, per-job response times) plus the per-job execution
//! [`segments`](JobSegment) from which the Figure 13 cycles/µs timelines and
//! the Figure 14 IPC histograms are derived.
//!
//! # Example: use case 1 (in-situ analytics), Serial vs DROM
//!
//! ```
//! use drom_sim::{Scenario, WorkloadSimulator};
//! use drom_sim::scenario::in_situ_workload;
//! use drom_apps::Table1;
//!
//! let workload = in_situ_workload(Table1::NEST_CONF1, Table1::PILS_CONF2, 100.0);
//! let serial = WorkloadSimulator::new(Scenario::Serial).run(&workload);
//! let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);
//! // DROM completes the workload sooner and improves the average response time.
//! assert!(drom.report.total_run_time() < serial.report.total_run_time());
//! assert!(drom.report.average_response_time() < serial.report.average_response_time());
//! ```

pub mod engine;
pub mod report;
pub mod scenario;

pub use engine::{JobSegment, SimulationResult, WorkloadSimulator};
pub use report::{comparison_row, ipc_samples, job_cycles_series, ComparisonRow};
pub use scenario::{high_priority_workload, in_situ_workload, SimJob};

/// Re-export of the scenario enum shared with the metrics crate.
pub use drom_metrics::Scenario;
