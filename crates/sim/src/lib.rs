//! Discrete-event replay of the paper's workload experiments in virtual time.
//!
//! The evaluation (Section 6) runs two-job workloads on two MareNostrum III
//! nodes and compares a *Serial* scenario (the second job waits for the first
//! to free the nodes) against the *DROM* scenario (the second job is
//! co-allocated and the node CPUs are repartitioned on the fly). We cannot run
//! on MN3, so this crate replays those workloads in virtual time:
//!
//! * the scheduling and placement decisions come from the same logic the real
//!   execution path uses (`drom-slurm`'s controller admission rule and the
//!   equipartition arithmetic of `drom-cpuset`);
//! * the progress of every job under a given CPU assignment comes from the
//!   calibrated application models of `drom-apps::perfmodel`.
//!
//! The result of a simulation is a [`WorkloadReport`](drom_metrics::WorkloadReport)
//! (total run time, per-job response times) plus the per-job execution
//! [`segments`](JobSegment) from which the Figure 13 cycles/µs timelines and
//! the Figure 14 IPC histograms are derived.
//!
//! # Example: use case 1 (in-situ analytics), Serial vs DROM
//!
//! ```
//! use drom_sim::{Scenario, WorkloadSimulator};
//! use drom_sim::scenario::in_situ_workload;
//! use drom_apps::Table1;
//!
//! let workload = in_situ_workload(Table1::NEST_CONF1, Table1::PILS_CONF2, 100.0);
//! let serial = WorkloadSimulator::new(Scenario::Serial).run(&workload);
//! let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);
//! // DROM completes the workload sooner and improves the average response time.
//! assert!(drom.report.total_run_time() < serial.report.total_run_time());
//! assert!(drom.report.average_response_time() < serial.report.average_response_time());
//! ```
//!
//! # Beyond the paper: cluster-scale trace replay
//!
//! The [`cluster`] engine replays *synthetic workload traces* (hundreds of
//! nodes, thousands of jobs) against any
//! [`SchedulerPolicy`](drom_slurm::policy::SchedulerPolicy), reporting
//! makespan, mean/P95 response time and node utilization — the experiment
//! the `cluster_sweep` binary runs to compare first-fit, backfill and the
//! DROM-malleable policy on the same job stream:
//!
//! ```
//! use drom_sim::{ClusterSim, mixed_hpc_trace};
//! use drom_slurm::{FirstFitPolicy, MalleablePolicy};
//!
//! // A small loaded cluster: 8 nodes × 16 CPUs, 40 jobs at ~1.2× capacity.
//! let trace = mixed_hpc_trace(42, 40, 8, 16, 1.2).generate();
//! let sim = ClusterSim::new(8, 16);
//! let first_fit = sim.run(Box::new(FirstFitPolicy::default()), &trace).unwrap();
//! let malleable = sim.run(Box::new(MalleablePolicy::default()), &trace).unwrap();
//! // Shrinking running jobs to admit queued work cuts the queue wait.
//! assert!(malleable.mean_response_s() <= first_fit.mean_response_s());
//! assert!(malleable.stats.started == 40 && malleable.stats.completed == 40);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod progress;
pub mod rate;
pub mod report;
pub mod scenario;
pub mod trace;

pub use cluster::{ClusterRunReport, ClusterSim};
pub use engine::{JobSegment, SimulationResult, WorkloadSimulator};
pub use progress::JobProgress;
pub use rate::{phase_rate, speedup_curve, JobRate};
pub use report::{comparison_row, ipc_samples, job_cycles_series, ComparisonRow};
pub use scenario::{high_priority_workload, in_situ_workload, SimJob};
pub use trace::{
    default_app_mix, mega_trace, mixed_hpc_trace, model_aware_trace, queue_churn_trace,
    reservation_heavy_trace, scale_out_trace, ArrivalProcess, JobClass, TraceConfig, TraceJob,
};

/// Re-export of the scenario enum shared with the metrics crate.
pub use drom_metrics::Scenario;
