//! Workload definitions: the two use cases of the evaluation.

use drom_apps::{AppConfig, AppKind};

/// A job of a simulated workload: an application configuration plus the
/// submission metadata the scheduler sees.
#[derive(Debug, Clone, PartialEq)]
pub struct SimJob {
    /// Job identifier (unique within the workload).
    pub id: u64,
    /// Display name (e.g. `"NEST Conf. 1"`).
    pub name: String,
    /// The application configuration (Table 1).
    pub config: AppConfig,
    /// Submission time in seconds.
    pub submit_s: f64,
    /// Priority (larger = more urgent).
    pub priority: u32,
    /// Multiplier on the application model's total work (1.0 = the calibrated
    /// default). The paper does not state the simulated durations of its jobs,
    /// only that they are "long"; the use-case builders use this knob to set
    /// the relative job lengths.
    pub work_scale: f64,
}

impl SimJob {
    /// Creates a job submitted at `submit_s` seconds.
    pub fn new(id: u64, config: AppConfig, submit_s: f64) -> Self {
        SimJob {
            id,
            name: config.label(),
            config,
            submit_s,
            priority: 0,
            work_scale: 1.0,
        }
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Scales the job's total work relative to the calibrated model.
    pub fn with_work_scale(mut self, scale: f64) -> Self {
        self.work_scale = scale.max(0.01);
        self
    }

    /// Shorthand for the application kind.
    pub fn kind(&self) -> AppKind {
        self.config.kind
    }
}

/// Use case 1 — *In-Situ Analytics*: a long simulation (NEST or CoreNeuron)
/// submitted at time 0 and a short analytics job (Pils or STREAM) submitted
/// `analytics_delay_s` seconds later.
pub fn in_situ_workload(
    simulation: AppConfig,
    analytics: AppConfig,
    analytics_delay_s: f64,
) -> Vec<SimJob> {
    vec![
        SimJob::new(1, simulation, 0.0),
        SimJob::new(2, analytics, analytics_delay_s),
    ]
}

/// Use case 2 — *High-priority job*: a long NEST Conf. 1 simulation submitted
/// at time 0 and a high-priority CoreNeuron Conf. 1 simulation submitted
/// `delay_s` seconds later.
///
/// The paper only says both jobs are "long"; Figure 13's traces show the NEST
/// phase of the workload lasting noticeably longer than the CoreNeuron tail,
/// so the builder makes NEST ~1.7× its calibrated length and CoreNeuron
/// ~0.7× — the ratio under which the paper's twin claims (total run time
/// −2.5%, average response time −10%) both hold.
pub fn high_priority_workload(delay_s: f64) -> Vec<SimJob> {
    vec![
        SimJob::new(1, drom_apps::Table1::NEST_CONF1, 0.0).with_work_scale(1.7),
        SimJob::new(2, drom_apps::Table1::CORENEURON_CONF1, delay_s)
            .with_priority(10)
            .with_work_scale(0.7),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use drom_apps::Table1;

    #[test]
    fn in_situ_workload_shape() {
        let jobs = in_situ_workload(Table1::NEST_CONF1, Table1::PILS_CONF2, 50.0);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].kind(), AppKind::Nest);
        assert_eq!(jobs[1].kind(), AppKind::Pils);
        assert_eq!(jobs[1].submit_s, 50.0);
        assert!(jobs[0].name.contains("NEST"));
    }

    #[test]
    fn high_priority_workload_shape() {
        let jobs = high_priority_workload(200.0);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].kind(), AppKind::Nest);
        assert_eq!(jobs[1].kind(), AppKind::CoreNeuron);
        assert!(jobs[1].priority > jobs[0].priority);
    }
}
