//! The single model-aware rate definition shared by both engines.
//!
//! Before this module existed the repository had two drifting copies of "how
//! fast does a job progress at a given CPU grant": the figure-replay engine
//! ([`engine`](crate::engine)) picked between `AppModel::rate` and
//! `AppModel::init_rate` inline, while the trace-driven cluster engine
//! ([`cluster`](crate::cluster)) hard-coded linear speedup. Now:
//!
//! * [`phase_rate`] is the one init-vs-steady switch the figure engine
//!   calls at every reallocation, and the curve builder derives its
//!   per-width times from [`AppModel::execution_time`] — which integrates
//!   the same `rate`/`init_rate` pair — so a change to the phase model
//!   reaches both engines at once.
//! * [`speedup_curve`] compiles a calibrated [`AppModel`] into the
//!   fixed-point integer [`SpeedupCurve`] the scheduler's estimates
//!   (`QueuedJob::scaled_duration_us`) and the cluster engine's exact
//!   progress accounting ([`JobRate`] → `JobProgress::set_rate`) both
//!   consume — one rate table, three consumers, no drift by construction
//!   (`curve_ratios_match_model_execution_times` pins it).
//!
//! # Fixed-point representation
//!
//! A curve entry is `rates[w] = round(FP × T(request) / T(w))`, where `T(w)`
//! is the model's whole-run execution time at a constant per-node width `w`
//! (init phase plus steady state — an amortized single rate, so the exact
//! integer progress accounting keeps its one-rounding guarantee). The
//! request width holds exactly [`SpeedupCurve::FP`] (ratio 1), so a job
//! running at full width for its declared duration delivers exactly
//! `duration × FP` work units: the honest-estimates property of the traces
//! is preserved bit for bit. Entries are clamped monotone non-decreasing —
//! the [`SpeedupCurve`] invariant that an expand can never slow a job down.

use drom_apps::perfmodel::AppModel;
use drom_apps::{AppConfig, AppKind};
use drom_metrics::TimeUs;
use drom_slurm::policy::QueuedJob;
use drom_slurm::SpeedupCurve;

/// Work rate (core-seconds of work per second) of one task granted
/// `cpus_per_task` CPUs, in the given phase — the single init-vs-steady
/// switch both engines consume.
pub fn phase_rate(
    model: &AppModel,
    config: &AppConfig,
    cpus_per_task: usize,
    in_init: bool,
) -> f64 {
    if in_init {
        model.init_rate(config, cpus_per_task)
    } else {
        model.rate(config, cpus_per_task)
    }
}

/// Whole-run execution time (seconds) of one task at a constant CPU grant —
/// a pure delegation to [`AppModel::execution_time`], which integrates both
/// phases over the same `rate`/`init_rate` pair [`phase_rate`] switches
/// between, so there is exactly one phase-integration definition in the
/// workspace. Absolute work scale cancels out of the curve ratios; only the
/// shape matters.
fn execution_time(model: &AppModel, config: &AppConfig, cpus_per_task: usize) -> f64 {
    model.execution_time(config, cpus_per_task)
}

/// Compiles the calibrated model of `kind` into a [`SpeedupCurve`] for a job
/// that launched `initial_threads` threads per node and requests
/// `request_width` CPUs per node.
///
/// `initial_threads` is what a static partition is sized by (the Figure 5
/// mechanism): widths below it pay the orphaned-chunk redistribution
/// penalty, widths above it gain nothing. In the canonical traces the two
/// are equal — the app launches at its request width; they differ only for
/// jobs whose allocation request exceeds the app's configured thread count.
pub fn speedup_curve(kind: AppKind, initial_threads: usize, request_width: usize) -> SpeedupCurve {
    let model = AppModel::for_kind(kind);
    // One task: MPI task counts multiply every rate equally and cancel out
    // of the ratios, so the curve is per-node-width only.
    let config = AppConfig {
        kind,
        conf: 0,
        mpi_tasks: 1,
        threads_per_task: initial_threads.max(1),
        nodes: 1,
    };
    let request = request_width.max(1);
    let t_full = execution_time(&model, &config, request);
    let mut rates = Vec::with_capacity(request + 1);
    rates.push(0u64);
    let mut prev = 0u64;
    for w in 1..=request {
        let ratio = t_full / execution_time(&model, &config, w).max(1e-12);
        let rate = ((SpeedupCurve::FP as f64) * ratio).round() as u64;
        // Monotone clamp: the models in this repo are monotone already (the
        // static-partition cap and init_rate fixes guarantee it), but a
        // custom model must not be able to violate the curve invariant.
        prev = rate.clamp(prev.max(1), u64::MAX);
        rates.push(prev);
    }
    debug_assert_eq!(
        rates[request],
        SpeedupCurve::FP,
        "the request width must hold exactly one fixed-point unit"
    );
    SpeedupCurve::from_rates(rates)
}

/// How a running trace job's integer delivery rate derives from its
/// allocation — the cluster engine's side of the shared rate definition.
/// Linear jobs reproduce the PR 3/4 arithmetic bit for bit (work in CPU-µs,
/// rate = allocated CPUs); model jobs read the same [`SpeedupCurve`] the
/// scheduler's estimates use, so an estimate and the engine completion it
/// predicts can never disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobRate {
    /// Linear speedup: work is CPU-µs, the rate is the allocated CPU count.
    Linear {
        /// Total CPUs of the full request (`nodes × cpus_per_node`).
        requested_cpus: usize,
    },
    /// Model-aware speedup through the job's fixed-point curve.
    Model {
        /// The per-node-width rate table.
        curve: SpeedupCurve,
    },
}

impl JobRate {
    /// The rate definition of `job`: its speedup curve when it carries one,
    /// linear otherwise.
    pub fn for_job(job: &QueuedJob) -> Self {
        match &job.speedup {
            Some(curve) => JobRate::Model {
                curve: curve.clone(),
            },
            None => JobRate::Linear {
                requested_cpus: job.total_cpus(),
            },
        }
    }

    /// Total work of a job declared to take `duration_us` at full width.
    pub fn work(&self, duration_us: TimeUs) -> u128 {
        match self {
            JobRate::Linear { requested_cpus } => {
                duration_us as u128 * (*requested_cpus).max(1) as u128
            }
            JobRate::Model { curve } => duration_us as u128 * curve.full_rate() as u128,
        }
    }

    /// Delivery rate of an allocation spanning `nodes` nodes at `width` CPUs
    /// per node. The per-node width drives the model curve (allocations are
    /// width-uniform, so every node progresses in lockstep and the node
    /// count cancels out of model-relative rates); for linear jobs the rate
    /// is simply the allocated CPU total.
    pub fn rate(&self, nodes: usize, width: usize) -> u64 {
        match self {
            JobRate::Linear { .. } => (nodes * width).max(1) as u64,
            JobRate::Model { curve } => curve.rate(width).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The curve is a faithful compilation of the model: scaling a full-width
    /// duration through the curve reproduces the model's execution time at
    /// every width, within fixed-point quantization. The comparison target
    /// is the model's *monotone envelope* (`min over w' ≤ w of T(w')`): at a
    /// static-partition chunk plateau the raw model charges the per-thread
    /// efficiency penalty for CPUs that add no parallelism, while a real
    /// runtime — and therefore the curve — simply leaves those CPUs idle.
    #[test]
    fn curve_ratios_match_model_execution_times() {
        for kind in [
            AppKind::Nest,
            AppKind::CoreNeuron,
            AppKind::Pils,
            AppKind::Stream,
        ] {
            let model = AppModel::for_kind(kind);
            let config = AppConfig {
                kind,
                conf: 0,
                mpi_tasks: 1,
                threads_per_task: 16,
                nodes: 1,
            };
            let curve = speedup_curve(kind, 16, 16);
            let t_full = execution_time(&model, &config, 16);
            let duration_us = (t_full * 1e6).round() as TimeUs;
            let mut t_envelope = f64::INFINITY;
            for w in 1..=16usize {
                t_envelope = t_envelope.min(execution_time(&model, &config, w));
                let est_s = curve.scaled_duration_us(duration_us, w) as f64 / 1e6;
                assert!(
                    (est_s - t_envelope).abs() / t_envelope < 1e-4,
                    "{kind:?} width {w}: curve {est_s} vs model envelope {t_envelope}"
                );
            }
        }
    }

    /// Static-partition shape: sub-linear below the launch width (removing
    /// one of 16 threads costs ~20%), flat at the request.
    #[test]
    fn static_partition_curve_shape() {
        let curve = speedup_curve(AppKind::Nest, 16, 16);
        assert_eq!(curve.request_width(), 16);
        assert_eq!(curve.full_rate(), SpeedupCurve::FP);
        // Shrinking 16 → 15 drops the rate well below 15/16 of full.
        assert!(curve.rate(15) < SpeedupCurve::FP * 15 / 16);
        assert!(curve.rate(15) > SpeedupCurve::FP / 2);
        // Half the threads divide the chunks evenly: about half speed.
        let half = curve.rate(8) as f64 / SpeedupCurve::FP as f64;
        assert!((0.45..0.55).contains(&half), "half-width rate {half}");
    }

    /// The expansion bug, at curve level: a static app launched with 8
    /// threads whose allocation request is 16 wide gains nothing past width
    /// 8 (pre-fix, the curve kept rising linearly).
    #[test]
    fn expansion_past_launch_threads_is_flat() {
        let curve = speedup_curve(AppKind::CoreNeuron, 8, 16);
        assert_eq!(curve.rate(8), curve.rate(16));
        assert_eq!(curve.rate(12), curve.rate(16));
        assert!(curve.rate(7) < curve.rate(8));
    }

    /// Memory-bound saturation: STREAM's curve is flat beyond 2 CPUs.
    #[test]
    fn saturated_curve_is_flat_beyond_the_saturation_point() {
        let curve = speedup_curve(AppKind::Stream, 4, 4);
        assert_eq!(curve.rate(2), curve.rate(4));
        assert!(curve.rate(1) < curve.rate(2));
    }

    #[test]
    fn job_rate_linear_reproduces_cpu_microsecond_arithmetic() {
        let job = QueuedJob::new(1, 2, 8);
        let rate = JobRate::for_job(&job);
        assert_eq!(rate.work(100), 1600);
        assert_eq!(rate.rate(2, 8), 16);
        assert_eq!(rate.rate(2, 3), 6);
    }

    #[test]
    fn job_rate_model_reads_the_attached_curve() {
        let curve = speedup_curve(AppKind::Nest, 16, 16);
        let job = QueuedJob::new(1, 2, 16).with_speedup(curve.clone());
        let rate = JobRate::for_job(&job);
        assert_eq!(rate.work(100), 100 * SpeedupCurve::FP as u128);
        assert_eq!(rate.rate(2, 16), SpeedupCurve::FP);
        assert_eq!(rate.rate(2, 15), curve.rate(15));
    }
}
