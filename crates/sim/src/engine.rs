//! The virtual-time engine: admission, CPU grants, progress and completion.

use drom_apps::perfmodel::PerfModel;
use drom_cpuset::distribution::balanced_sizes;
use drom_metrics::{JobRecord, Scenario, WorkloadReport};

use crate::scenario::SimJob;

/// Numerical tolerance on remaining work (core-seconds).
const EPS: f64 = 1e-6;

/// One stretch of virtual time during which a job ran with a fixed CPU grant.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSegment {
    /// The job this segment belongs to.
    pub job_id: u64,
    /// Segment start (seconds).
    pub start_s: f64,
    /// Segment end (seconds).
    pub end_s: f64,
    /// CPUs granted to each task during the segment.
    pub cpus_per_task: usize,
    /// Number of MPI tasks of the job.
    pub tasks: usize,
    /// `true` while the job is in its initialization phase.
    pub in_init_phase: bool,
    /// Average per-thread utilization (fraction of a core actually used).
    pub utilization: f64,
    /// Modelled IPC of the job's threads during the segment.
    pub ipc: f64,
}

impl JobSegment {
    /// Segment length in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// The outcome of simulating one workload under one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    /// The scenario that was simulated.
    pub scenario: Scenario,
    /// System-level metrics (total run time, response times).
    pub report: WorkloadReport,
    /// Per-job execution segments (the data behind Figures 13 and 14).
    pub segments: Vec<JobSegment>,
}

impl SimulationResult {
    /// The segments of one job, in time order.
    pub fn segments_of(&self, job_id: u64) -> Vec<&JobSegment> {
        self.segments
            .iter()
            .filter(|s| s.job_id == job_id)
            .collect()
    }

    /// End of the workload in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.segments.iter().map(|s| s.end_s).fold(0.0, f64::max)
    }
}

struct RunningJob {
    job: SimJob,
    start_s: f64,
    remaining_init: f64,
    remaining_main: f64,
    cpus_per_task: usize,
    rate: f64,
    oversub_factor: f64,
}

impl RunningJob {
    fn in_init(&self) -> bool {
        self.remaining_init > EPS
    }
}

/// Simulates workloads on a small cluster in virtual time.
#[derive(Debug, Clone)]
pub struct WorkloadSimulator {
    scenario: Scenario,
    num_nodes: usize,
    node_cpus: usize,
    max_jobs_per_node: usize,
    models: PerfModel,
}

impl WorkloadSimulator {
    /// Creates a simulator of the paper's environment: two MareNostrum III
    /// nodes of 16 CPUs, at most two jobs co-allocated per node.
    pub fn new(scenario: Scenario) -> Self {
        WorkloadSimulator {
            scenario,
            num_nodes: 2,
            node_cpus: 16,
            max_jobs_per_node: 2,
            models: PerfModel::new(),
        }
    }

    /// Overrides the cluster shape (used by scaling experiments).
    pub fn with_cluster(mut self, num_nodes: usize, node_cpus: usize) -> Self {
        self.num_nodes = num_nodes.max(1);
        self.node_cpus = node_cpus.max(1);
        self
    }

    /// Overrides the co-allocation limit.
    pub fn with_max_jobs_per_node(mut self, max: usize) -> Self {
        self.max_jobs_per_node = max.max(1);
        self
    }

    /// The scenario this simulator runs.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// CPUs granted per node to each of the co-allocated jobs: every job gets
    /// at most its request; the fair share bounds jobs that request more; CPUs
    /// nobody needs are handed to jobs still below their request.
    fn node_grants(&self, requests: &[usize]) -> Vec<usize> {
        if requests.is_empty() {
            return Vec::new();
        }
        if self.scenario == Scenario::Oversubscribed {
            // Everybody gets what they asked for; contention is modelled by the
            // oversubscription factor instead.
            return requests.iter().map(|&r| r.min(self.node_cpus)).collect();
        }
        let fair = balanced_sizes(self.node_cpus, requests.len());
        let mut grants: Vec<usize> = requests
            .iter()
            .zip(fair.iter())
            .map(|(&req, &share)| req.min(share))
            .collect();
        let mut leftover = self.node_cpus.saturating_sub(grants.iter().sum());
        // Round-robin the leftover to jobs that still want more.
        let mut progress = true;
        while leftover > 0 && progress {
            progress = false;
            for (grant, &req) in grants.iter_mut().zip(requests.iter()) {
                if leftover == 0 {
                    break;
                }
                if *grant < req {
                    *grant += 1;
                    leftover -= 1;
                    progress = true;
                }
            }
        }
        grants
    }

    fn oversubscription_factor(&self, requests: &[usize]) -> f64 {
        if self.scenario != Scenario::Oversubscribed {
            return 1.0;
        }
        let total: usize = requests.iter().map(|&r| r.min(self.node_cpus)).sum();
        if total <= self.node_cpus {
            1.0
        } else {
            self.node_cpus as f64 / total as f64
        }
    }

    /// Recomputes the CPU grant and progress rate of every running job.
    fn reallocate(&self, running: &mut [RunningJob]) {
        let requests: Vec<usize> = running
            .iter()
            .map(|r| r.job.config.cpus_per_node())
            .collect();
        let grants = self.node_grants(&requests);
        let factor = self.oversubscription_factor(&requests);
        for (job, grant_per_node) in running.iter_mut().zip(grants) {
            let tasks_per_node = job.job.config.tasks_per_node().max(1);
            let cpus_per_task = (grant_per_node / tasks_per_node).max(1);
            let model = self.models.of(job.job.config.kind);
            job.cpus_per_task = cpus_per_task;
            job.oversub_factor = factor;
            // The init-vs-steady rate switch lives in `crate::rate` — the
            // same definition the cluster engine's speedup curves are
            // compiled from, so the two engines cannot drift.
            job.rate =
                crate::rate::phase_rate(model, &job.job.config, cpus_per_task, job.in_init())
                    * factor;
        }
    }

    fn admission_allows(&self, running_count: usize) -> bool {
        match self.scenario {
            Scenario::Serial => running_count == 0,
            Scenario::Drom | Scenario::Oversubscribed => running_count < self.max_jobs_per_node,
        }
    }

    /// Runs the workload to completion and returns the metrics.
    pub fn run(&self, jobs: &[SimJob]) -> SimulationResult {
        let mut pending: Vec<SimJob> = jobs.to_vec();
        pending.sort_by(submit_order);
        let mut running: Vec<RunningJob> = Vec::new();
        let mut segments: Vec<JobSegment> = Vec::new();
        let mut records: Vec<JobRecord> = Vec::new();
        let mut now = 0.0f64;
        let mut guard = 0usize;

        while !pending.is_empty() || !running.is_empty() {
            guard += 1;
            assert!(guard < 100_000, "simulation failed to converge");

            // Admit every job that may start now (priority first, then FIFO).
            loop {
                let mut arrived: Vec<usize> = pending
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| j.submit_s <= now + EPS)
                    .map(|(i, _)| i)
                    .collect();
                arrived.sort_by_key(|&i| {
                    (
                        std::cmp::Reverse(pending[i].priority),
                        (pending[i].submit_s * 1e6) as u64,
                        pending[i].id,
                    )
                });
                match arrived.first() {
                    Some(&idx) if self.admission_allows(running.len()) => {
                        let job = pending.remove(idx);
                        let model = self.models.of(job.config.kind);
                        let total = model.total_work(&job.config) * job.work_scale;
                        let init = model.init_work(&job.config) * job.work_scale;
                        running.push(RunningJob {
                            start_s: now,
                            remaining_init: init,
                            remaining_main: total - init,
                            cpus_per_task: job.config.threads_per_task,
                            rate: 0.0,
                            oversub_factor: 1.0,
                            job,
                        });
                    }
                    _ => break,
                }
            }

            if running.is_empty() {
                // Nothing running: jump to the next submission.
                if let Some(next) = pending
                    .iter()
                    .map(|j| j.submit_s)
                    .fold(None::<f64>, |acc, s| Some(acc.map_or(s, |a| a.min(s))))
                {
                    now = now.max(next);
                    continue;
                }
                break;
            }

            self.reallocate(&mut running);

            // Time until the next phase completion or the next submission.
            let mut dt = f64::INFINITY;
            for job in &running {
                let remaining = if job.in_init() {
                    job.remaining_init
                } else {
                    job.remaining_main
                };
                if job.rate > 0.0 {
                    dt = dt.min(remaining / job.rate);
                }
            }
            for job in &pending {
                if job.submit_s > now + EPS {
                    dt = dt.min(job.submit_s - now);
                }
            }
            assert!(dt.is_finite(), "no progress possible: stalled simulation");
            let end = now + dt;

            // Record segments and advance progress.
            for job in running.iter_mut() {
                let model = self.models.of(job.job.config.kind);
                let threads_initial = job.job.config.threads_per_task;
                let utilization = if job.in_init() {
                    (model.init_parallelism / job.cpus_per_task as f64).min(1.0)
                } else {
                    (model.effective_parallelism(job.cpus_per_task, threads_initial)
                        * model.efficiency(job.cpus_per_task.min(threads_initial) as f64)
                        / job.cpus_per_task as f64)
                        .min(1.0)
                } * job.oversub_factor;
                segments.push(JobSegment {
                    job_id: job.job.id,
                    start_s: now,
                    end_s: end,
                    cpus_per_task: job.cpus_per_task,
                    tasks: job.job.config.mpi_tasks,
                    in_init_phase: job.in_init(),
                    utilization,
                    ipc: model.ipc(job.cpus_per_task),
                });
                let work = job.rate * dt;
                if job.in_init() {
                    job.remaining_init = (job.remaining_init - work).max(0.0);
                } else {
                    job.remaining_main = (job.remaining_main - work).max(0.0);
                }
            }
            now = end;

            // Retire completed jobs.
            let mut i = 0;
            while i < running.len() {
                if !running[i].in_init() && running[i].remaining_main <= EPS {
                    let done = running.remove(i);
                    records.push(JobRecord::new(
                        done.job.name.clone(),
                        (done.job.submit_s * 1e6) as u64,
                        (done.start_s * 1e6) as u64,
                        (now * 1e6) as u64,
                    ));
                } else {
                    i += 1;
                }
            }
        }

        SimulationResult {
            scenario: self.scenario,
            report: WorkloadReport::new(self.scenario, records),
            segments,
        }
    }
}

/// Submission order: by submit time, ties broken by job id.
///
/// Uses `total_cmp` so a NaN submit time (e.g. from a bad workload file)
/// sorts deterministically (after every real time) instead of silently
/// comparing `Equal` to everything and leaving the order
/// partition-dependent.
fn submit_order(a: &SimJob, b: &SimJob) -> std::cmp::Ordering {
    a.submit_s.total_cmp(&b.submit_s).then(a.id.cmp(&b.id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{high_priority_workload, in_situ_workload};
    use drom_apps::Table1;
    use drom_metrics::workload::percent_improvement;

    fn seconds(us: u64) -> f64 {
        us as f64 / 1e6
    }

    #[test]
    fn submit_order_is_total_under_nan_and_ties() {
        let job = |id, submit_s| crate::scenario::SimJob::new(id, Table1::NEST_CONF1, submit_s);
        // Equal submit times fall back to the id, both ways round.
        let mut jobs = [job(2, 5.0), job(1, 5.0), job(3, 1.0)];
        jobs.sort_by(submit_order);
        let ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![3, 1, 2]);
        // A NaN submit time sorts after every real time — deterministically,
        // regardless of the input permutation.
        let with_nan = vec![job(4, f64::NAN), job(5, 2.0), job(6, f64::NAN)];
        let mut a = with_nan.clone();
        let mut b: Vec<_> = with_nan.into_iter().rev().collect();
        a.sort_by(submit_order);
        b.sort_by(submit_order);
        let order = |v: &[crate::scenario::SimJob]| v.iter().map(|j| j.id).collect::<Vec<_>>();
        assert_eq!(order(&a), vec![5, 4, 6]);
        assert_eq!(order(&a), order(&b));
    }

    #[test]
    fn single_job_matches_model_time() {
        let sim = WorkloadSimulator::new(Scenario::Serial);
        let jobs = vec![crate::scenario::SimJob::new(1, Table1::NEST_CONF1, 0.0)];
        let result = sim.run(&jobs);
        assert_eq!(result.report.jobs.len(), 1);
        let model = drom_apps::AppModel::for_kind(drom_apps::AppKind::Nest);
        let expected = model.execution_time(&Table1::NEST_CONF1, 16);
        let simulated = seconds(result.report.jobs[0].run_time());
        assert!(
            (simulated - expected).abs() / expected < 0.01,
            "simulated {simulated} vs model {expected}"
        );
        // One init segment + one main segment.
        assert!(result.segments_of(1).len() >= 2);
    }

    #[test]
    fn serial_scenario_queues_the_second_job() {
        let workload = in_situ_workload(Table1::NEST_CONF1, Table1::PILS_CONF2, 100.0);
        let result = WorkloadSimulator::new(Scenario::Serial).run(&workload);
        let sim_job = &result.report.jobs[0];
        let analytics = result
            .report
            .jobs
            .iter()
            .find(|j| j.name.contains("Pils"))
            .unwrap();
        // The analytics waits for the whole simulation.
        assert!(analytics.start >= sim_job.end);
        assert!(analytics.wait_time() > 0);
    }

    #[test]
    fn drom_beats_serial_for_in_situ_analytics() {
        let workload = in_situ_workload(Table1::NEST_CONF1, Table1::PILS_CONF2, 100.0);
        let serial = WorkloadSimulator::new(Scenario::Serial).run(&workload);
        let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);

        // Total run time improves (Fig. 4), moderately.
        let rt_improvement = percent_improvement(
            serial.report.total_run_time() as f64,
            drom.report.total_run_time() as f64,
        );
        assert!(rt_improvement > 0.0, "DROM must not be slower overall");
        assert!(rt_improvement < 25.0);

        // The analytics response time collapses (Fig. 6: up to 96%).
        let serial_ana = serial.report.response_time_of(&workload[1].name).unwrap() as f64;
        let drom_ana = drom.report.response_time_of(&workload[1].name).unwrap() as f64;
        let ana_improvement = percent_improvement(serial_ana, drom_ana);
        assert!(
            ana_improvement > 80.0,
            "analytics response should collapse, got {ana_improvement:.1}%"
        );

        // The simulation's response time degrades only slightly (0 - ~7%).
        let serial_sim = serial.report.response_time_of(&workload[0].name).unwrap() as f64;
        let drom_sim = drom.report.response_time_of(&workload[0].name).unwrap() as f64;
        let sim_degradation = -percent_improvement(serial_sim, drom_sim);
        assert!(
            (0.0..10.0).contains(&sim_degradation),
            "simulation degradation was {sim_degradation:.1}%"
        );

        // Average response time improves a lot (Fig. 8: 37 - 48%).
        let avg_improvement = percent_improvement(
            serial.report.average_response_time(),
            drom.report.average_response_time(),
        );
        assert!(
            avg_improvement > 25.0,
            "average response improvement was {avg_improvement:.1}%"
        );
    }

    #[test]
    fn drom_grants_match_the_requests_in_use_case_1() {
        let workload = in_situ_workload(Table1::NEST_CONF1, Table1::STREAM_CONF1, 100.0);
        let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);
        // While STREAM (2 CPUs per node requested) is running, NEST keeps
        // 14 CPUs per task.
        let nest_during_overlap = drom
            .segments_of(1)
            .iter()
            .find(|s| s.start_s >= 100.0 && s.cpus_per_task < 16)
            .cloned()
            .cloned();
        let seg = nest_during_overlap.expect("an overlap segment exists");
        assert_eq!(seg.cpus_per_task, 14);
    }

    #[test]
    fn high_priority_use_case_improves_response_time() {
        let workload = high_priority_workload(200.0);
        let serial = WorkloadSimulator::new(Scenario::Serial).run(&workload);
        let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);

        // Fig. 13: total run time improves a little (paper: 2.5%).
        let rt_improvement = percent_improvement(
            serial.report.total_run_time() as f64,
            drom.report.total_run_time() as f64,
        );
        assert!(
            rt_improvement > 0.0 && rt_improvement < 20.0,
            "got {rt_improvement:.1}%"
        );

        // Fig. 15: average response time improves (paper: 10%).
        let avg_improvement = percent_improvement(
            serial.report.average_response_time(),
            drom.report.average_response_time(),
        );
        assert!(
            avg_improvement > 0.0 && avg_improvement < 35.0,
            "got {avg_improvement:.1}%"
        );

        // Under DROM the two simulators equipartition the node: 8 CPUs each.
        let overlap_seg = drom
            .segments_of(2)
            .iter()
            .find(|s| !s.in_init_phase)
            .cloned()
            .cloned()
            .expect("CoreNeuron has a steady segment");
        assert_eq!(overlap_seg.cpus_per_task, 8);
    }

    #[test]
    fn oversubscribed_mode_is_worse_than_drom() {
        let workload = in_situ_workload(Table1::NEST_CONF1, Table1::PILS_CONF1, 100.0);
        let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);
        let oversub = WorkloadSimulator::new(Scenario::Oversubscribed).run(&workload);
        // With oversubscription both jobs run degraded; the workload takes at
        // least as long as with DROM repartitioning.
        assert!(oversub.report.total_run_time() >= drom.report.total_run_time());
    }

    #[test]
    fn segments_are_contiguous_and_positive() {
        let workload = high_priority_workload(150.0);
        let result = WorkloadSimulator::new(Scenario::Drom).run(&workload);
        for job_id in [1, 2] {
            let segs = result.segments_of(job_id);
            assert!(!segs.is_empty());
            for pair in segs.windows(2) {
                assert!(pair[0].end_s <= pair[1].start_s + 1e-9);
            }
            for seg in segs {
                assert!(seg.duration_s() > 0.0);
                assert!(seg.utilization > 0.0 && seg.utilization <= 1.0);
                assert!(seg.ipc > 0.0);
            }
        }
        assert!(result.makespan_s() > 0.0);
    }

    #[test]
    fn grants_respect_requests_and_capacity() {
        let sim = WorkloadSimulator::new(Scenario::Drom);
        assert_eq!(sim.node_grants(&[16, 1]), vec![15, 1]);
        assert_eq!(sim.node_grants(&[16, 2]), vec![14, 2]);
        assert_eq!(sim.node_grants(&[16, 16]), vec![8, 8]);
        assert_eq!(sim.node_grants(&[4, 2]), vec![4, 2]);
        assert_eq!(sim.node_grants(&[16]), vec![16]);
        assert!(sim.node_grants(&[]).is_empty());
        let total: usize = sim.node_grants(&[16, 16]).iter().sum();
        assert!(total <= 16);
    }

    #[test]
    fn scenario_accessors() {
        let sim = WorkloadSimulator::new(Scenario::Drom)
            .with_cluster(4, 32)
            .with_max_jobs_per_node(3);
        assert_eq!(sim.scenario(), Scenario::Drom);
    }
}
