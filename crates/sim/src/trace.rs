//! Synthetic workload traces for the cluster-scale scheduling experiments.
//!
//! The paper's evaluation replays two hand-built two-job workloads; the
//! dynamic-workload literature it opens into (DMR, malleable batch schedulers)
//! instead drives a cluster with a *stream* of jobs drawn from a statistical
//! mix. This module generates such streams deterministically: a seeded
//! [`TraceConfig`] — arrival process, job classes (size × duration × share of
//! the mix), malleability — expands into a reproducible list of
//! [`TraceJob`]s that [`ClusterSim`](crate::ClusterSim) replays against any
//! [`SchedulerPolicy`](drom_slurm::policy::SchedulerPolicy).
//!
//! All randomness comes from a small embedded xorshift generator so traces
//! are identical across platforms and runs — a trace is fully described by
//! `(config, seed)`, which is what the committed experiment tables record.

use std::collections::HashMap;

use drom_apps::AppKind;
use drom_metrics::TimeUs;
use drom_slurm::policy::QueuedJob;
use drom_slurm::SpeedupCurve;

use crate::rate::speedup_curve;

/// One job of a synthetic trace: its scheduler-visible shape plus the ground
/// truth the simulator needs (the actual duration at full request width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceJob {
    /// The job as the scheduler sees it (`expected_duration_us` is set to the
    /// true duration: the trace assumes honest user estimates; see
    /// `docs/scheduling.md` for why that favours backfill).
    pub job: QueuedJob,
    /// True duration (virtual µs) when running at the full request width.
    pub duration_us: TimeUs,
}

/// How job arrivals are spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson process: exponentially distributed inter-arrival times with
    /// the given mean.
    Poisson {
        /// Mean inter-arrival time (µs).
        mean_interarrival_us: TimeUs,
    },
    /// Fixed spacing: every job arrives exactly this long after the previous.
    Uniform {
        /// Inter-arrival time (µs).
        interarrival_us: TimeUs,
    },
}

/// One class of the job mix: a resource shape, a duration range and a weight.
#[derive(Debug, Clone, PartialEq)]
pub struct JobClass {
    /// Relative weight of this class in the mix (need not sum to 1 across
    /// classes).
    pub weight: f64,
    /// Nodes requested.
    pub nodes: usize,
    /// CPUs requested per node.
    pub cpus_per_node: usize,
    /// Malleable floor (CPUs per node); ignored for rigid classes.
    pub min_cpus_per_node: usize,
    /// `true` if jobs of this class tolerate resizing.
    pub malleable: bool,
    /// Durations are drawn log-uniformly from this range (µs, at full width).
    pub duration_range_us: (TimeUs, TimeUs),
}

/// A complete trace description: expand it with [`TraceConfig::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Seed of the deterministic generator.
    pub seed: u64,
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// The job mix (must not be empty).
    pub classes: Vec<JobClass>,
    /// Weighted application mix. Empty (the default) means every job scales
    /// linearly — the PR 3/4 traces, reproduced byte for byte. Non-empty
    /// assigns each generated job an application kind (weighted draw from a
    /// *separate* RNG stream, so the base trace — arrivals, shapes,
    /// durations — is identical to the linear trace of the same seed) and
    /// attaches the matching calibrated [`SpeedupCurve`] from
    /// [`crate::rate::speedup_curve`].
    pub app_mix: Vec<(AppKind, f64)>,
}

impl TraceConfig {
    /// Expands the configuration into its job list. Jobs are numbered from 1
    /// in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or all weights are non-positive.
    pub fn generate(&self) -> Vec<TraceJob> {
        assert!(
            !self.classes.is_empty(),
            "a trace needs at least one job class"
        );
        let total_weight: f64 = self.classes.iter().map(|c| c.weight.max(0.0)).sum();
        assert!(
            total_weight > 0.0,
            "job class weights must sum to a positive value"
        );
        let mut rng = XorShift64::new(self.seed);
        let mut jobs = Vec::with_capacity(self.num_jobs);
        let mut clock: TimeUs = 0;
        for id in 1..=self.num_jobs as u64 {
            clock += match self.arrival {
                ArrivalProcess::Poisson {
                    mean_interarrival_us,
                } => {
                    // Inverse-CDF exponential; clamp u away from 0 so ln is finite.
                    let u = rng.next_f64().max(1e-12);
                    (-(u.ln()) * mean_interarrival_us as f64).round() as TimeUs
                }
                ArrivalProcess::Uniform { interarrival_us } => interarrival_us,
            };
            let class = self.pick_class(&mut rng, total_weight);
            let (lo, hi) = class.duration_range_us;
            let (lo, hi) = (lo.max(1) as f64, hi.max(1) as f64);
            let duration_us = (lo.ln() + rng.next_f64() * (hi.ln() - lo.ln()))
                .exp()
                .round() as TimeUs;
            let mut job = QueuedJob::new(id, class.nodes, class.cpus_per_node)
                .with_submit_us(clock)
                .with_expected_duration_us(duration_us);
            if class.malleable {
                job = job.malleable(class.min_cpus_per_node);
            }
            jobs.push(TraceJob { job, duration_us });
        }
        self.assign_apps(&mut jobs);
        jobs
    }

    /// Attaches a weighted-drawn application model to every job when
    /// [`app_mix`](Self::app_mix) is non-empty. Uses its own RNG stream
    /// (salted seed) so the base trace stays byte-identical to the linear
    /// trace of the same `(config, seed)` — the model-aware path is purely
    /// additive.
    fn assign_apps(&self, jobs: &mut [TraceJob]) {
        if self.app_mix.is_empty() {
            return;
        }
        let total: f64 = self.app_mix.iter().map(|&(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "app mix weights must sum to a positive value");
        let mut rng = XorShift64::new(self.seed ^ APP_MIX_STREAM_SALT);
        // Curves depend only on (kind, request width): build each once.
        let mut curves: HashMap<(AppKind, usize), SpeedupCurve> = HashMap::new();
        for tj in jobs.iter_mut() {
            let mut target = rng.next_f64() * total;
            let mut picked = self.app_mix.last().expect("non-empty mix").0;
            for &(kind, weight) in &self.app_mix {
                target -= weight.max(0.0);
                if target <= 0.0 {
                    picked = kind;
                    break;
                }
            }
            let width = tj.job.cpus_per_node;
            let curve = curves
                .entry((picked, width))
                .or_insert_with(|| speedup_curve(picked, width, width))
                .clone();
            tj.job.speedup = Some(curve);
        }
    }

    /// Returns the configuration with the given application mix attached
    /// (see [`app_mix`](Self::app_mix)); works on any trace, including
    /// [`mixed_hpc_trace`] and [`scale_out_trace`].
    pub fn with_app_mix(mut self, app_mix: Vec<(AppKind, f64)>) -> Self {
        self.app_mix = app_mix;
        self
    }

    fn pick_class(&self, rng: &mut XorShift64, total_weight: f64) -> &JobClass {
        let mut target = rng.next_f64() * total_weight;
        for class in &self.classes {
            target -= class.weight.max(0.0);
            if target <= 0.0 {
                return class;
            }
        }
        self.classes.last().expect("classes is non-empty")
    }
}

/// The canonical mixed-HPC trace of the scheduling experiments: small
/// single-node jobs, medium and large multi-node jobs, a tail of wide jobs,
/// and a rigid minority — all against `node_cpus`-CPU nodes.
///
/// Durations span 2–30 virtual minutes (log-uniform). The arrival rate is
/// set so the offered load is roughly `load` times the capacity of a
/// `num_nodes`-node cluster, which for `load ≈ 1.1` keeps a deep queue
/// without degenerating into pure saturation.
pub fn mixed_hpc_trace(
    seed: u64,
    num_jobs: usize,
    num_nodes: usize,
    node_cpus: usize,
    load: f64,
) -> TraceConfig {
    let full = node_cpus;
    let half = (node_cpus / 2).max(1);
    let quarter = (node_cpus / 4).max(1);
    // Multi-node classes shrink to the cluster the caller described, so every
    // generated job passes the scheduler's fits_ever admission check.
    let capped = |nodes: usize| nodes.clamp(1, num_nodes.max(1));
    let classes = vec![
        // Small fry: one node, a quarter wide, malleable down to 1 CPU.
        JobClass {
            weight: 0.35,
            nodes: 1,
            cpus_per_node: quarter,
            min_cpus_per_node: 1,
            malleable: true,
            duration_range_us: (120_000_000, 900_000_000),
        },
        // Medium: two nodes, half wide.
        JobClass {
            weight: 0.30,
            nodes: capped(2),
            cpus_per_node: half,
            min_cpus_per_node: (half / 4).max(1),
            malleable: true,
            duration_range_us: (120_000_000, 1_800_000_000),
        },
        // Large: four full-width nodes.
        JobClass {
            weight: 0.20,
            nodes: capped(4),
            cpus_per_node: full,
            min_cpus_per_node: (full / 4).max(1),
            malleable: true,
            duration_range_us: (300_000_000, 1_800_000_000),
        },
        // Wide: an eighth of the cluster, half-width — the jobs that
        // head-of-line block a first-fit queue.
        JobClass {
            weight: 0.10,
            nodes: (num_nodes / 8).max(1),
            cpus_per_node: half,
            min_cpus_per_node: (half / 4).max(1),
            malleable: true,
            duration_range_us: (300_000_000, 1_200_000_000),
        },
        // Rigid minority: legacy jobs that can never be resized.
        JobClass {
            weight: 0.05,
            nodes: capped(2),
            cpus_per_node: full,
            min_cpus_per_node: full,
            malleable: false,
            duration_range_us: (120_000_000, 900_000_000),
        },
    ];
    // Offered load = (mean job CPU-seconds) / (interarrival × capacity).
    let mean_cpu_us: f64 = {
        let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
        classes
            .iter()
            .map(|c| {
                // Log-uniform mean: (hi - lo) / ln(hi / lo).
                let (lo, hi) = (c.duration_range_us.0 as f64, c.duration_range_us.1 as f64);
                let mean_duration = (hi - lo) / (hi / lo).ln();
                c.weight / total_weight * mean_duration * (c.nodes * c.cpus_per_node) as f64
            })
            .sum()
    };
    let capacity = (num_nodes * node_cpus) as f64;
    let mean_interarrival_us = (mean_cpu_us / (capacity * load.max(0.01))).round() as TimeUs;
    TraceConfig {
        seed,
        num_jobs,
        arrival: ArrivalProcess::Poisson {
            mean_interarrival_us: mean_interarrival_us.max(1),
        },
        classes,
        app_mix: Vec::new(),
    }
}

/// Salt of the application-assignment RNG stream: keeps the model-aware
/// draws independent of the base trace draws, so attaching an app mix never
/// perturbs arrivals, shapes or durations.
const APP_MIX_STREAM_SALT: u64 = 0xD20_60AE_57A7_1C3B;

/// The canonical weighted application mix of the model-aware tier: the four
/// calibrated paper applications, weighted so the two static-partition
/// simulators dominate (as they do the paper's evaluation) with a
/// compute-bound and a memory-bound minority.
pub fn default_app_mix() -> Vec<(AppKind, f64)> {
    vec![
        (AppKind::Nest, 0.30),
        (AppKind::CoreNeuron, 0.25),
        (AppKind::Pils, 0.35),
        (AppKind::Stream, 0.10),
    ]
}

/// The model-aware tier: the canonical mixed-HPC trace with the
/// [`default_app_mix`] attached — same arrivals, shapes and durations as the
/// linear trace of the same `(seed, …)` arguments, but every job carries the
/// calibrated speedup curve of its application, so shrinking a
/// static-partition job is no longer free and memory-bound jobs gain nothing
/// from expansion. `cluster_sweep --tier model-aware` drives it.
pub fn model_aware_trace(
    seed: u64,
    num_jobs: usize,
    num_nodes: usize,
    node_cpus: usize,
    load: f64,
) -> TraceConfig {
    mixed_hpc_trace(seed, num_jobs, num_nodes, node_cpus, load).with_app_mix(default_app_mix())
}

/// A reservation-dense job stream: a heavy rigid minority — including
/// cluster-quarter-wide full-width jobs that can never be shrunk into a
/// packed cluster — keeps the queue head blocked, so almost every scheduling
/// pass computes a drain reservation. This is the workload that makes
/// `earliest_release_fit` the dominant pass cost, which is exactly what the
/// release-timeline differentials and the pinned reservation digests need to
/// exercise; the malleable filler classes keep the cluster packed enough
/// that the rigid jobs never fit immediately.
pub fn reservation_heavy_trace(
    seed: u64,
    num_jobs: usize,
    num_nodes: usize,
    node_cpus: usize,
    load: f64,
) -> TraceConfig {
    let full = node_cpus;
    let half = (node_cpus / 2).max(1);
    let quarter = (node_cpus / 4).max(1);
    let capped = |nodes: usize| nodes.clamp(1, num_nodes.max(1));
    let classes = vec![
        // Rigid and a quarter of the cluster wide at full width: the drain
        // generator — it only ever starts into a reservation.
        JobClass {
            weight: 0.20,
            nodes: (num_nodes / 4).max(1),
            cpus_per_node: full,
            min_cpus_per_node: full,
            malleable: false,
            duration_range_us: (120_000_000, 600_000_000),
        },
        // Rigid two-node full-width jobs: block often, drain quickly.
        JobClass {
            weight: 0.15,
            nodes: capped(2),
            cpus_per_node: full,
            min_cpus_per_node: full,
            malleable: false,
            duration_range_us: (120_000_000, 900_000_000),
        },
        // Malleable filler keeping the cluster packed between drains.
        JobClass {
            weight: 0.35,
            nodes: 1,
            cpus_per_node: quarter,
            min_cpus_per_node: 1,
            malleable: true,
            duration_range_us: (120_000_000, 900_000_000),
        },
        JobClass {
            weight: 0.30,
            nodes: capped(2),
            cpus_per_node: half,
            min_cpus_per_node: (half / 4).max(1),
            malleable: true,
            duration_range_us: (120_000_000, 1_200_000_000),
        },
    ];
    let mean_cpu_us: f64 = {
        let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
        classes
            .iter()
            .map(|c| {
                let (lo, hi) = (c.duration_range_us.0 as f64, c.duration_range_us.1 as f64);
                let mean_duration = (hi - lo) / (hi / lo).ln();
                c.weight / total_weight * mean_duration * (c.nodes * c.cpus_per_node) as f64
            })
            .sum()
    };
    let capacity = (num_nodes * node_cpus) as f64;
    let mean_interarrival_us = (mean_cpu_us / (capacity * load.max(0.01))).round() as TimeUs;
    TraceConfig {
        seed,
        num_jobs,
        arrival: ArrivalProcess::Poisson {
            mean_interarrival_us: mean_interarrival_us.max(1),
        },
        classes,
        app_mix: Vec::new(),
    }
}

/// A queue-churn-heavy job stream: **short** durations (tens of virtual
/// seconds instead of tens of minutes) at an offered load well above
/// capacity, so completions — and with them scheduling passes — fire at a
/// high rate against a queue that stays thousands of jobs deep. A rigid
/// full-width minority (including a cluster-quarter-wide blocker class)
/// keeps the queue head blocked most of the time, so the passes are
/// dominated by *failed* admission probes over the whole waiting queue —
/// exactly the per-pass O(queue log queue) sort + O(queue) re-probe cost
/// the admission-order index and the dirty-tracked probing exist to remove.
/// `cluster_sweep --tier queue-churn` drives it; the CI `--scan` smoke
/// replays it differentially against the reference scan.
pub fn queue_churn_trace(
    seed: u64,
    num_jobs: usize,
    num_nodes: usize,
    node_cpus: usize,
    load: f64,
) -> TraceConfig {
    let full = node_cpus;
    let half = (node_cpus / 2).max(1);
    let quarter = (node_cpus / 4).max(1);
    let capped = |nodes: usize| nodes.clamp(1, num_nodes.max(1));
    let classes = vec![
        // Short narrow filler: the churn generator — admitted and completed
        // at a high rate whenever the head unblocks.
        JobClass {
            weight: 0.40,
            nodes: 1,
            cpus_per_node: quarter,
            min_cpus_per_node: 1,
            malleable: true,
            duration_range_us: (10_000_000, 60_000_000),
        },
        // Two-node half-width malleable mid class.
        JobClass {
            weight: 0.25,
            nodes: capped(2),
            cpus_per_node: half,
            min_cpus_per_node: (half / 4).max(1),
            malleable: true,
            duration_range_us: (10_000_000, 120_000_000),
        },
        // Rigid single-node full-width jobs: frequent short head blockers.
        JobClass {
            weight: 0.15,
            nodes: 1,
            cpus_per_node: full,
            min_cpus_per_node: full,
            malleable: false,
            duration_range_us: (20_000_000, 120_000_000),
        },
        // Wide malleable jobs an eighth of the cluster across.
        JobClass {
            weight: 0.12,
            nodes: (num_nodes / 8).max(1),
            cpus_per_node: half,
            min_cpus_per_node: (half / 4).max(1),
            malleable: true,
            duration_range_us: (30_000_000, 180_000_000),
        },
        // Rigid cluster-quarter-wide blockers: force drain reservations, so
        // the churn exercises the masked/post-reservation probe paths too.
        JobClass {
            weight: 0.08,
            nodes: (num_nodes / 4).max(1),
            cpus_per_node: full,
            min_cpus_per_node: full,
            malleable: false,
            duration_range_us: (30_000_000, 120_000_000),
        },
    ];
    let mean_cpu_us: f64 = {
        let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
        classes
            .iter()
            .map(|c| {
                let (lo, hi) = (c.duration_range_us.0 as f64, c.duration_range_us.1 as f64);
                let mean_duration = (hi - lo) / (hi / lo).ln();
                c.weight / total_weight * mean_duration * (c.nodes * c.cpus_per_node) as f64
            })
            .sum()
    };
    let capacity = (num_nodes * node_cpus) as f64;
    let mean_interarrival_us = (mean_cpu_us / (capacity * load.max(0.01))).round() as TimeUs;
    TraceConfig {
        seed,
        num_jobs,
        arrival: ArrivalProcess::Poisson {
            mean_interarrival_us: mean_interarrival_us.max(1),
        },
        classes,
        app_mix: Vec::new(),
    }
}

/// Nodes of the scale-out sweep tier (× 16 CPUs each).
pub const SCALE_OUT_NODES: usize = 1024;

/// Jobs of the full scale-out sweep tier.
pub const SCALE_OUT_JOBS: usize = 10_000;

/// The scale-out sweep tier: the canonical mixed-HPC job stream against a
/// 1024-node × 16-CPU cluster at ~1.15× offered load — [`SCALE_OUT_JOBS`]
/// jobs at full size; `cluster_sweep --tier scale-out` drives it (CI smokes
/// a reduced `num_jobs` on the same cluster shape).
///
/// This is the tier the indexed malleable pass exists for: the pre-index
/// implementation's O(queue × nodes × running) rescans made a full replay at
/// this scale take hours (the 128-node pass alone cost ~2 ms, and this tier
/// runs ~8× the nodes, ~10× the running jobs and ~5× the passes — see
/// `docs/scheduling.md`), while the indexed pass finishes it in seconds.
pub fn scale_out_trace(seed: u64, num_jobs: usize) -> TraceConfig {
    mixed_hpc_trace(seed, num_jobs, SCALE_OUT_NODES, 16, 1.15)
}

/// Nodes of the mega sweep tier (× 16 CPUs each).
pub const MEGA_NODES: usize = 10_000;

/// Jobs of the full mega sweep tier.
pub const MEGA_JOBS: usize = 100_000;

/// The mega sweep tier: the canonical mixed-HPC job stream against a
/// 10 000-node × 16-CPU cluster at ~1.15× offered load — [`MEGA_JOBS`] jobs
/// at full size; `cluster_sweep --tier mega` drives it (CI smokes a reduced
/// `num_jobs` on the same cluster shape).
///
/// This is the tier the release-timeline index exists for: at 10k nodes a
/// single drain-reservation replay costs O(running × nodes) ≈ 10⁷ node
/// visits, and a 100k-job replay computes hundreds of thousands of them —
/// the timeline walk plus the histogram-guarded admission probes keep the
/// whole three-policy sweep in minutes (see `docs/scheduling.md`).
pub fn mega_trace(seed: u64, num_jobs: usize) -> TraceConfig {
    mixed_hpc_trace(seed, num_jobs, MEGA_NODES, 16, 1.15)
}

/// Small, fast, platform-independent PRNG (xorshift64*). Not cryptographic;
/// chosen because the repo has no `rand` dependency and traces must be
/// byte-reproducible everywhere.
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // A zero state would be a fixed point; mix the seed like splitmix64.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift64 {
            state: (z ^ (z >> 31)).max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        let config = mixed_hpc_trace(42, 200, 128, 16, 1.1);
        let a = config.generate();
        let b = config.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        // A different seed produces a different trace.
        let c = mixed_hpc_trace(43, 200, 128, 16, 1.1).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_monotonic_and_ids_unique() {
        let jobs = mixed_hpc_trace(7, 500, 128, 16, 1.2).generate();
        for pair in jobs.windows(2) {
            assert!(pair[0].job.submit_us <= pair[1].job.submit_us);
            assert!(pair[0].job.id < pair[1].job.id);
        }
    }

    #[test]
    fn jobs_fit_the_cluster_shape() {
        let jobs = mixed_hpc_trace(7, 500, 128, 16, 1.1).generate();
        for tj in &jobs {
            assert!(tj.job.nodes <= 128);
            assert!(tj.job.cpus_per_node <= 16);
            assert!(tj.job.min_cpus_per_node >= 1);
            assert!(tj.job.min_cpus_per_node <= tj.job.cpus_per_node);
            assert!(tj.duration_us > 0);
            assert_eq!(tj.job.expected_duration_us, Some(tj.duration_us));
        }
        // The mix contains both malleable and rigid jobs.
        assert!(jobs.iter().any(|j| j.job.malleable));
        assert!(jobs.iter().any(|j| !j.job.malleable));
    }

    #[test]
    fn mixed_trace_fits_small_clusters_too() {
        // Multi-node classes clamp to the cluster: every job of a 2-node
        // trace asks for at most 2 nodes, so none is unschedulable.
        let jobs = mixed_hpc_trace(1, 200, 2, 16, 1.1).generate();
        assert!(jobs.iter().all(|j| j.job.nodes <= 2));
        let single = mixed_hpc_trace(1, 50, 1, 16, 1.1).generate();
        assert!(single.iter().all(|j| j.job.nodes == 1));
    }

    /// Attaching an app mix must not perturb the base trace: arrivals,
    /// shapes and durations are byte-identical to the linear trace of the
    /// same seed — only the speedup curves differ.
    #[test]
    fn app_mix_leaves_the_base_trace_byte_identical() {
        let linear = mixed_hpc_trace(2018, 300, 32, 16, 1.15).generate();
        let model = model_aware_trace(2018, 300, 32, 16, 1.15).generate();
        assert_eq!(linear.len(), model.len());
        for (l, m) in linear.iter().zip(model.iter()) {
            assert_eq!(l.duration_us, m.duration_us);
            let mut stripped = m.job.clone();
            assert!(
                stripped.speedup.is_some(),
                "every model job carries a curve"
            );
            stripped.speedup = None;
            assert_eq!(l.job, stripped, "base job fields must not change");
        }
        // The assignment itself is deterministic…
        assert_eq!(model, model_aware_trace(2018, 300, 32, 16, 1.15).generate());
        // …and covers more than one application kind.
        let distinct: std::collections::HashSet<_> = model
            .iter()
            .map(|t| t.job.speedup.as_ref().unwrap().clone())
            .map(|c| c.rate(1))
            .collect();
        assert!(distinct.len() > 1, "the mix must actually mix");
    }

    /// The scale-out tier composes with the app mix too (the ISSUE's
    /// "extend scale_out_trace" requirement): same base trace, curves on top.
    #[test]
    fn scale_out_trace_accepts_an_app_mix() {
        let linear = scale_out_trace(7, 50).generate();
        let model = scale_out_trace(7, 50)
            .with_app_mix(default_app_mix())
            .generate();
        for (l, m) in linear.iter().zip(model.iter()) {
            assert_eq!(l.job.id, m.job.id);
            assert_eq!(l.job.submit_us, m.job.submit_us);
            assert_eq!(l.duration_us, m.duration_us);
            assert!(m.job.speedup.is_some());
        }
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let config = TraceConfig {
            seed: 1,
            num_jobs: 5,
            arrival: ArrivalProcess::Uniform {
                interarrival_us: 10,
            },
            classes: vec![JobClass {
                weight: 1.0,
                nodes: 1,
                cpus_per_node: 4,
                min_cpus_per_node: 1,
                malleable: true,
                duration_range_us: (100, 100),
            }],
            app_mix: Vec::new(),
        };
        let jobs = config.generate();
        let submits: Vec<_> = jobs.iter().map(|j| j.job.submit_us).collect();
        assert_eq!(submits, vec![10, 20, 30, 40, 50]);
        assert!(jobs.iter().all(|j| j.duration_us == 100));
    }
}
