//! Exact integer progress accounting for the trace-driven cluster engine.
//!
//! A trace job carries a duration at full request width; under the linear
//! speedup model it is equivalent to a fixed amount of **work**, measured in
//! CPU-microseconds: `duration_us × requested_cpus`. A running allocation
//! delivers `allocated_cpus` work units per microsecond, so progress updates
//! are exact integer arithmetic — no float, no per-resize re-quantization.
//!
//! The previous implementation kept the remaining duration as an `f64` and
//! re-derived the completion instant through `remaining / rate` with a
//! `.ceil()` on **every resize**, so each resize could re-round the job's
//! completion time: a sequence of resizes that delivered exactly the job's
//! work could still drift its completion by a microsecond per event (e.g. a
//! rate of 1/3 makes `100.0 / (1.0/3.0)` come out as `300.0000…06`, which
//! ceils to 301). [`JobProgress`] makes the accounting exact:
//!
//! * the remaining work is an integer, decremented by `allocated × elapsed`
//!   (exact) at every rate change;
//! * the **single** rounding in the model is the completion event's
//!   wall-clock instant, `updated + ⌈remaining / allocated⌉` — the work runs
//!   out partway through a microsecond and the discrete-event clock carries
//!   whole microseconds. The rounding is *stable*: re-deriving the instant
//!   after any number of intermediate no-op updates yields the same value,
//!   because `⌈(r − a·dt) / a⌉ = ⌈r / a⌉ − dt` for integer `dt`.
//!
//! Consequently the total CPU-time delivered to a job equals its work
//! exactly; the completion *event* may hold the allocation for the final
//! fractional microsecond (strictly less than `allocated` CPU-µs of
//! accounted busy time), which is the one documented rounding of the engine.

use drom_metrics::TimeUs;

/// Exact progress state of one running job: remaining work in
/// CPU-microseconds, the current delivery rate (allocated CPUs) and the
/// virtual instant the two were last reconciled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobProgress {
    work_remaining: u128,
    allocated: u64,
    updated_us: TimeUs,
}

impl JobProgress {
    /// Starts a job of `duration_us` at full `requested_cpus`, granted
    /// `allocated_cpus`, at virtual time `now_us`. Widths are clamped to at
    /// least one CPU (the engine never allocates zero).
    pub fn start(
        duration_us: TimeUs,
        requested_cpus: usize,
        allocated_cpus: usize,
        now_us: TimeUs,
    ) -> Self {
        JobProgress {
            work_remaining: duration_us as u128 * requested_cpus.max(1) as u128,
            allocated: allocated_cpus.max(1) as u64,
            updated_us: now_us,
        }
    }

    /// Accounts the work delivered since the last update and switches the
    /// delivery rate to `allocated_cpus`. Exact: no rounding happens here,
    /// so a resize to the *same* width (or any no-op sequence) leaves the
    /// completion instant untouched.
    pub fn resize(&mut self, now_us: TimeUs, allocated_cpus: usize) {
        let elapsed = now_us.saturating_sub(self.updated_us) as u128;
        self.work_remaining = self
            .work_remaining
            .saturating_sub(self.allocated as u128 * elapsed);
        self.updated_us = now_us;
        self.allocated = allocated_cpus.max(1) as u64;
    }

    /// The instant the remaining work runs out at the current rate, rounded
    /// up to the next whole microsecond — the engine's single rounding.
    pub fn completion_us(&self) -> TimeUs {
        let ticks = self.work_remaining.div_ceil(self.allocated as u128);
        self.updated_us
            .saturating_add(TimeUs::try_from(ticks).unwrap_or(TimeUs::MAX))
    }

    /// Work not yet delivered, in CPU-microseconds (as of the last update).
    pub fn work_remaining(&self) -> u128 {
        self.work_remaining
    }

    /// CPUs currently delivering work.
    pub fn allocated_cpus(&self) -> usize {
        self.allocated as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_is_exact_for_divisible_rates() {
        let p = JobProgress::start(100, 16, 8, 0);
        assert_eq!(p.completion_us(), 200);
        let q = JobProgress::start(100, 16, 16, 50);
        assert_eq!(q.completion_us(), 150);
    }

    #[test]
    fn one_third_rate_does_not_drift() {
        // The f64 path computed 100 / (1/3) = 300.0000…06 → ceil 301. The
        // exact path: 100 µs × 3 CPUs = 300 CPU-µs at 1 CPU → 300 µs.
        let p = JobProgress::start(100, 3, 1, 0);
        assert_eq!(p.completion_us(), 300);
    }

    #[test]
    fn noop_resizes_leave_completion_unchanged() {
        let mut p = JobProgress::start(100, 3, 1, 0);
        let expected = p.completion_us();
        for t in [1, 7, 13, 100, 299] {
            p.resize(t, 1);
            assert_eq!(p.completion_us(), expected, "drifted at t={t}");
        }
    }

    #[test]
    fn shrink_then_restore_conserves_work() {
        // 100 µs at 4/4 CPUs = 400 CPU-µs. Run 50 µs at 4 (200 done), 100 µs
        // at 1 (100 done), back to 4: 100 left → 25 µs.
        let mut p = JobProgress::start(100, 4, 4, 0);
        p.resize(50, 1);
        assert_eq!(p.work_remaining(), 200);
        p.resize(150, 4);
        assert_eq!(p.work_remaining(), 100);
        assert_eq!(p.completion_us(), 175);
    }

    #[test]
    fn zero_duration_completes_immediately() {
        let p = JobProgress::start(0, 8, 8, 42);
        assert_eq!(p.completion_us(), 42);
        assert_eq!(p.work_remaining(), 0);
    }

    #[test]
    fn overdue_update_saturates_at_zero_work() {
        // A resize arriving after the work ran out (the completion event is
        // still in flight) leaves zero work, completing "now".
        let mut p = JobProgress::start(10, 2, 2, 0);
        p.resize(500, 1);
        assert_eq!(p.work_remaining(), 0);
        assert_eq!(p.completion_us(), 500);
    }
}
