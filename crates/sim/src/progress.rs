//! Exact integer progress accounting for the trace-driven cluster engine.
//!
//! A trace job carries a duration at full request width; it is equivalent to
//! a fixed amount of **work** delivered at an integer **rate** of work units
//! per microsecond. Two rate regimes share the same accounting:
//!
//! * **Linear speedup** (no application model): work is measured in
//!   CPU-microseconds (`duration_us × requested_cpus`) and a running
//!   allocation delivers `allocated_cpus` units per microsecond.
//! * **Model-aware speedup** (a [`SpeedupCurve`](drom_slurm::SpeedupCurve)
//!   from the calibrated `drom-apps` models): work is
//!   `duration_us × curve.full_rate()` fixed-point units and an allocation
//!   at per-node width `w` delivers `curve.rate(w)` units per microsecond —
//!   sub-linear scaling (static partitions, memory-bound saturation, init
//!   phases) folded into an integer rate table.
//!
//! Either way, progress updates are exact integer arithmetic — no float, no
//! per-resize re-quantization. (The pre-PR-4 implementation kept the
//! remaining duration as an `f64` and re-derived the completion instant
//! through `remaining / rate` with a `.ceil()` on **every resize**, so each
//! resize could re-round the completion time: a rate of 1/3 makes
//! `100.0 / (1.0/3.0)` come out as `300.0000…06`, which ceils to 301.)
//! [`JobProgress`] makes the accounting exact:
//!
//! * the remaining work is an integer, decremented by `rate × elapsed`
//!   (exact) at every rate change;
//! * the **single** rounding in the model is the completion event's
//!   wall-clock instant, `updated + ⌈remaining / rate⌉` — the work runs
//!   out partway through a microsecond and the discrete-event clock carries
//!   whole microseconds. The rounding is *stable*: re-deriving the instant
//!   after any number of intermediate no-op updates yields the same value,
//!   because `⌈(r − a·dt) / a⌉ = ⌈r / a⌉ − dt` for integer `dt`.
//!
//! Consequently the total delivered work equals the job's work exactly; the
//! completion *event* may hold the allocation for the final fractional
//! microsecond (strictly less than one rate-unit-µs of accounted busy
//! time), which is the one documented rounding of the engine. Because the
//! guarantees are properties of the integer `(work, rate)` pair and never
//! mention CPUs, they survive sub-linear speedup unchanged — the property
//! tests in `tests/progress_exact.rs` exercise both regimes.

use drom_metrics::TimeUs;

/// Exact progress state of one running job: remaining work, the current
/// integer delivery rate (work units per µs) and the virtual instant the two
/// were last reconciled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobProgress {
    work_remaining: u128,
    rate: u64,
    updated_us: TimeUs,
}

impl JobProgress {
    /// Starts a **linear-speedup** job of `duration_us` at full
    /// `requested_cpus`, granted `allocated_cpus`, at virtual time `now_us`:
    /// work is CPU-µs, the rate is the allocated CPU count. Widths are
    /// clamped to at least one CPU (the engine never allocates zero).
    pub fn start(
        duration_us: TimeUs,
        requested_cpus: usize,
        allocated_cpus: usize,
        now_us: TimeUs,
    ) -> Self {
        Self::start_scaled(
            duration_us as u128 * requested_cpus.max(1) as u128,
            allocated_cpus.max(1) as u64,
            now_us,
        )
    }

    /// Starts a job of `work` integer units delivered at `rate` units per
    /// microsecond — the general constructor the model-aware path uses (the
    /// unit scale is the caller's; only ratios matter). `rate` is clamped to
    /// at least 1 so the completion instant always exists.
    pub fn start_scaled(work: u128, rate: u64, now_us: TimeUs) -> Self {
        JobProgress {
            work_remaining: work,
            rate: rate.max(1),
            updated_us: now_us,
        }
    }

    /// Accounts the work delivered since the last update and switches the
    /// delivery rate to `allocated_cpus` (linear-speedup flavour of
    /// [`set_rate`](Self::set_rate)).
    pub fn resize(&mut self, now_us: TimeUs, allocated_cpus: usize) {
        self.set_rate(now_us, allocated_cpus.max(1) as u64);
    }

    /// Accounts the work delivered since the last update and switches the
    /// delivery rate to `rate` units per µs. Exact: no rounding happens
    /// here, so a change to the *same* rate (or any no-op sequence) leaves
    /// the completion instant untouched.
    pub fn set_rate(&mut self, now_us: TimeUs, rate: u64) {
        let elapsed = now_us.saturating_sub(self.updated_us) as u128;
        self.work_remaining = self
            .work_remaining
            .saturating_sub(self.rate as u128 * elapsed);
        self.updated_us = now_us;
        self.rate = rate.max(1);
    }

    /// The instant the remaining work runs out at the current rate, rounded
    /// up to the next whole microsecond — the engine's single rounding.
    pub fn completion_us(&self) -> TimeUs {
        let ticks = self.work_remaining.div_ceil(self.rate as u128);
        self.updated_us
            .saturating_add(TimeUs::try_from(ticks).unwrap_or(TimeUs::MAX))
    }

    /// Work not yet delivered (as of the last update), in the unit scale the
    /// job was started with (CPU-µs for linear jobs).
    pub fn work_remaining(&self) -> u128 {
        self.work_remaining
    }

    /// The current delivery rate in work units per µs (the allocated CPU
    /// count for linear jobs).
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// CPUs currently delivering work — only meaningful for linear-speedup
    /// jobs, where the rate *is* the allocated CPU count.
    pub fn allocated_cpus(&self) -> usize {
        self.rate as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_is_exact_for_divisible_rates() {
        let p = JobProgress::start(100, 16, 8, 0);
        assert_eq!(p.completion_us(), 200);
        let q = JobProgress::start(100, 16, 16, 50);
        assert_eq!(q.completion_us(), 150);
    }

    #[test]
    fn one_third_rate_does_not_drift() {
        // The f64 path computed 100 / (1/3) = 300.0000…06 → ceil 301. The
        // exact path: 100 µs × 3 CPUs = 300 CPU-µs at 1 CPU → 300 µs.
        let p = JobProgress::start(100, 3, 1, 0);
        assert_eq!(p.completion_us(), 300);
    }

    #[test]
    fn noop_resizes_leave_completion_unchanged() {
        let mut p = JobProgress::start(100, 3, 1, 0);
        let expected = p.completion_us();
        for t in [1, 7, 13, 100, 299] {
            p.resize(t, 1);
            assert_eq!(p.completion_us(), expected, "drifted at t={t}");
        }
    }

    #[test]
    fn shrink_then_restore_conserves_work() {
        // 100 µs at 4/4 CPUs = 400 CPU-µs. Run 50 µs at 4 (200 done), 100 µs
        // at 1 (100 done), back to 4: 100 left → 25 µs.
        let mut p = JobProgress::start(100, 4, 4, 0);
        p.resize(50, 1);
        assert_eq!(p.work_remaining(), 200);
        p.resize(150, 4);
        assert_eq!(p.work_remaining(), 100);
        assert_eq!(p.completion_us(), 175);
    }

    #[test]
    fn scaled_rates_follow_the_same_exact_arithmetic() {
        // A model-aware job: 100 µs of work at fixed-point scale 1<<20,
        // delivered at 3/8 of the full rate → ⌈100·8/3⌉ = 267 µs.
        let fp: u64 = 1 << 20;
        let mut p = JobProgress::start_scaled(100_u128 * fp as u128, fp * 3 / 8, 0);
        assert_eq!(p.completion_us(), 267);
        // No-op rate changes never move the completion.
        for t in [1, 50, 200] {
            p.set_rate(t, fp * 3 / 8);
            assert_eq!(p.completion_us(), 267);
        }
        // Restoring the full rate at t=200: delivered 200·(3FP/8) exactly;
        // remaining 100·FP − 200·393216 = 26214400 at FP/µs → 25 µs.
        p.set_rate(200, fp);
        assert_eq!(p.completion_us(), 225);
        assert_eq!(p.rate(), fp);
    }

    #[test]
    fn zero_duration_completes_immediately() {
        let p = JobProgress::start(0, 8, 8, 42);
        assert_eq!(p.completion_us(), 42);
        assert_eq!(p.work_remaining(), 0);
    }

    #[test]
    fn overdue_update_saturates_at_zero_work() {
        // A resize arriving after the work ran out (the completion event is
        // still in flight) leaves zero work, completing "now".
        let mut p = JobProgress::start(10, 2, 2, 0);
        p.resize(500, 1);
        assert_eq!(p.work_remaining(), 0);
        assert_eq!(p.completion_us(), 500);
    }
}
