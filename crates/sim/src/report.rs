//! Derived series and comparison rows for the figure harnesses.

use drom_apps::perfmodel::NOMINAL_CYCLES_PER_US;
use drom_metrics::workload::percent_improvement;

use crate::engine::SimulationResult;

/// One Serial-vs-DROM comparison row (the unit every figure table is built of).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Row label (e.g. `"NEST Conf. 1 + Pils Conf. 2"`).
    pub label: String,
    /// The Serial-scenario value.
    pub serial: f64,
    /// The DROM-scenario value.
    pub drom: f64,
    /// Improvement of DROM over Serial in percent (positive = DROM better,
    /// for metrics where lower is better).
    pub improvement_pct: f64,
}

/// Builds a comparison row for a lower-is-better metric.
pub fn comparison_row(label: impl Into<String>, serial: f64, drom: f64) -> ComparisonRow {
    ComparisonRow {
        label: label.into(),
        serial,
        drom,
        improvement_pct: percent_improvement(serial, drom),
    }
}

/// Cycles-per-µs time series of one job, binned over the workload duration —
/// the quantity Figure 13's colour scale encodes (0 … ~3300 cycles/µs).
///
/// Bins where the job is not running report 0.
pub fn job_cycles_series(result: &SimulationResult, job_id: u64, bin_s: f64) -> Vec<f64> {
    let horizon = result.makespan_s();
    if horizon <= 0.0 || bin_s <= 0.0 {
        return Vec::new();
    }
    let nbins = (horizon / bin_s).ceil() as usize;
    let mut series = vec![0.0f64; nbins];
    for seg in result.segments_of(job_id) {
        let cycles = NOMINAL_CYCLES_PER_US * seg.utilization;
        let first_bin = (seg.start_s / bin_s).floor().max(0.0) as usize;
        let last_bin = ((seg.end_s / bin_s).ceil() as usize).min(nbins);
        for (bin, slot) in series.iter_mut().enumerate().take(last_bin).skip(first_bin) {
            let bin_start = bin as f64 * bin_s;
            let bin_end = bin_start + bin_s;
            let overlap = (seg.end_s.min(bin_end) - seg.start_s.max(bin_start)).max(0.0);
            *slot += cycles * overlap / bin_s;
        }
    }
    series
}

/// Per-thread IPC samples of one job, weighted by segment duration — the data
/// behind the Figure 14 histograms. One sample is emitted per active thread
/// per `sample_every_s` seconds of virtual time.
pub fn ipc_samples(result: &SimulationResult, job_id: u64, sample_every_s: f64) -> Vec<f64> {
    let mut samples = Vec::new();
    if sample_every_s <= 0.0 {
        return samples;
    }
    for seg in result.segments_of(job_id) {
        let threads = seg.tasks * seg.cpus_per_task;
        let count = (seg.duration_s() / sample_every_s).ceil() as usize;
        for _ in 0..count {
            for _ in 0..threads {
                // Idle-ish threads (low utilization) drag the observed IPC down
                // a little, which is what the paper's histograms show for the
                // threads that lose work.
                samples.push(seg.ipc * (0.85 + 0.15 * seg.utilization));
            }
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorkloadSimulator;
    use crate::scenario::{high_priority_workload, in_situ_workload};
    use drom_apps::Table1;
    use drom_metrics::Scenario;

    #[test]
    fn comparison_row_improvement_sign() {
        let row = comparison_row("x", 100.0, 90.0);
        assert!((row.improvement_pct - 10.0).abs() < 1e-9);
        let regression = comparison_row("y", 100.0, 110.0);
        assert!(regression.improvement_pct < 0.0);
    }

    #[test]
    fn cycles_series_covers_the_run_and_shows_the_shrink() {
        let workload = in_situ_workload(Table1::NEST_CONF1, Table1::PILS_CONF1, 100.0);
        let result = WorkloadSimulator::new(Scenario::Drom).run(&workload);
        let series = job_cycles_series(&result, 1, 10.0);
        assert!(!series.is_empty());
        // The NEST job is active from t=0, so the first bins are non-zero.
        assert!(series[0] > 0.0);
        // Every value is within the physical range.
        assert!(series
            .iter()
            .all(|&v| (0.0..=NOMINAL_CYCLES_PER_US + 1e-9).contains(&v)));
        // Degenerate bin sizes.
        assert!(job_cycles_series(&result, 1, 0.0).is_empty());
    }

    #[test]
    fn ipc_samples_follow_thread_counts() {
        let workload = high_priority_workload(100.0);
        let result = WorkloadSimulator::new(Scenario::Serial).run(&workload);
        let samples = ipc_samples(&result, 1, 50.0);
        assert!(!samples.is_empty());
        assert!(samples.iter().all(|&s| s > 0.0 && s < 3.0));
        assert!(ipc_samples(&result, 1, 0.0).is_empty());
        // The DROM scenario produces samples at a different (higher) IPC for
        // the shrunk phase because fewer threads per task run there.
        let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);
        let drom_samples = ipc_samples(&drom, 2, 50.0);
        let serial_samples = ipc_samples(&result, 2, 50.0);
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&drom_samples) >= avg(&serial_samples) * 0.99);
    }
}
