//! Event-driven replay of a synthetic job trace against a scheduling policy.
//!
//! Where [`engine`](crate::engine) replays the paper's fixed two-job figure
//! workloads with calibrated application models, this module asks the
//! cluster-scale question the paper leaves open: *what does DROM buy a
//! scheduler under a realistic job stream?* A [`ClusterSim`] replays a
//! [`trace`](crate::trace) — hundreds of nodes, thousands of jobs — against
//! any [`SchedulerPolicy`], driving the same validated [`PolicyScheduler`]
//! state machine the real execution path uses, and reports makespan,
//! mean/P95 response time and node utilization through `drom-metrics`.
//!
//! # Progress model
//!
//! A trace job carries its duration *at full request width*. A job without
//! an application model progresses at `allocated / requested` of full speed
//! (linear speedup — the paper's LeWI measurements show near-linear scaling
//! for its applications; `docs/scheduling.md` discusses the limits of this
//! assumption), so a shrink slows a job down exactly as much as it frees
//! CPUs for someone else and the comparison between policies is purely
//! about *scheduling*. A job carrying a
//! [`SpeedupCurve`](drom_slurm::SpeedupCurve) (the model-aware traces, see
//! [`crate::rate`]) instead progresses at the calibrated per-width rate of
//! its application — static data partitions make shrinking cost more than
//! linear, memory-bound saturation makes expansion worthless — through
//! exactly the same integer accounting, and the scheduler's duration
//! estimates read the same curve, so estimates and simulated completions
//! agree by construction. Resize overhead is not modelled: the paper
//! measures DROM reconfiguration in microseconds against jobs that run for
//! minutes.
//!
//! Progress is accounted **exactly**, in integer work units
//! ([`JobProgress`]; CPU-microseconds for linear jobs, fixed-point units for
//! model jobs): the one rounding in the
//! engine is the completion event's wall-clock instant (rounded up to the
//! next whole microsecond), so arbitrary resize sequences can never drift a
//! job's completion away from the work actually delivered.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use drom_metrics::{JobRecord, Scenario, TimeUs, UtilizationStat, WorkloadReport};
use drom_slurm::policy::{SchedulerAction, SchedulerPolicy};
use drom_slurm::{PolicyScheduler, SchedulerStats, SlurmError};

use crate::progress::JobProgress;
use crate::rate::JobRate;
use crate::trace::TraceJob;

/// Hard cap on processed events per trace job: a scheduling policy that
/// resizes without converging would otherwise spin the virtual clock forever.
const EVENTS_PER_JOB_GUARD: u64 = 1000;

/// What happens at one instant of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A trace job (by index) is submitted.
    Arrival(usize),
    /// A running job finishes — valid only if `gen` still matches the job's
    /// run model (a resize reschedules completion under a fresh generation).
    Completion { job_id: u64, gen: u64 },
}

/// Progress state of one running job: exact work accounting plus the
/// generation of the currently valid completion event.
struct RunModel {
    /// Exact integer progress (work remaining, delivery rate).
    progress: JobProgress,
    /// Generation of the currently valid completion event.
    gen: u64,
}

/// The outcome of replaying one trace under one policy.
#[derive(Debug, Clone)]
pub struct ClusterRunReport {
    /// Name of the policy that ran.
    pub policy: &'static str,
    /// The run as a paper-style [`WorkloadReport`] (per-job submit / start /
    /// end records in completion order, plus every derived metric from the
    /// one `drom-metrics` implementation). The scenario is labelled
    /// [`Scenario::Drom`] regardless of policy — the trace engine always
    /// runs on the DROM-enabled stack; the policy name lives in
    /// [`policy`](Self::policy).
    pub report: WorkloadReport,
    /// CPU-time accounting over the whole run.
    pub utilization: UtilizationStat,
    /// What the scheduler did (starts, shrinks, expands, races).
    pub stats: SchedulerStats,
    /// Events the engine processed (arrivals, completions, stale completions).
    pub events_processed: u64,
}

impl ClusterRunReport {
    /// Per-job timing records, in completion order.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.report.jobs
    }

    /// Makespan in seconds: last job end minus first job submission.
    pub fn makespan_s(&self) -> f64 {
        self.report.total_run_time() as f64 / 1e6
    }

    /// Mean response time in seconds.
    pub fn mean_response_s(&self) -> f64 {
        self.report.average_response_time() / 1e6
    }

    /// 95th-percentile response time in seconds.
    pub fn p95_response_s(&self) -> f64 {
        self.report.p95_response_time() / 1e6
    }

    /// Mean wait (queue) time in seconds.
    pub fn mean_wait_s(&self) -> f64 {
        self.report.average_wait_time() / 1e6
    }

    /// Node utilization over the run as a fraction in `[0, 1]`.
    pub fn utilization_fraction(&self) -> f64 {
        self.utilization.fraction()
    }
}

/// A homogeneous cluster on which traces are replayed.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSim {
    num_nodes: usize,
    node_cpus: usize,
}

impl ClusterSim {
    /// Creates a cluster of `num_nodes` nodes with `node_cpus` CPUs each.
    pub fn new(num_nodes: usize, node_cpus: usize) -> Self {
        ClusterSim {
            num_nodes: num_nodes.max(1),
            node_cpus: node_cpus.max(1),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// CPUs per node.
    pub fn node_cpus(&self) -> usize {
        self.node_cpus
    }

    /// Replays `trace` to completion under `policy`.
    ///
    /// # Errors
    ///
    /// * [`SlurmError::Unschedulable`] as soon as a trace job arrives that no
    ///   node can ever host — the engine refuses to livelock on it.
    /// * [`SlurmError::InvalidAction`] if the policy emits an action the
    ///   cluster state cannot honour.
    // PANIC: the rate/duration maps are keyed by every traced job id, and the
    // convergence guard flags a policy that stopped making progress — failing
    // fast on a broken engine invariant is the error contract here.
    pub fn run(
        &self,
        policy: Box<dyn SchedulerPolicy>,
        trace: &[TraceJob],
    ) -> Result<ClusterRunReport, SlurmError> {
        let mut sched = PolicyScheduler::new(self.num_nodes, self.node_cpus, policy);
        let policy_name = sched.policy_name();
        let durations: HashMap<u64, TimeUs> =
            trace.iter().map(|t| (t.job.id, t.duration_us)).collect();
        // One rate definition per job: linear CPU-µs for model-less jobs
        // (the PR 3/4 arithmetic, bit for bit), the job's speedup curve
        // otherwise — the same curve the scheduler's estimates consult.
        let rates: HashMap<u64, JobRate> = trace
            .iter()
            .map(|t| (t.job.id, JobRate::for_job(&t.job)))
            .collect();

        // Min-heap of (time, sequence, event); the sequence keeps same-instant
        // events in insertion order (completions before the arrivals they
        // unblock were pushed before them only if submitted earlier — ties are
        // resolved deterministically either way because the scheduler is
        // re-ticked after every event).
        let mut events: BinaryHeap<Reverse<(TimeUs, u64, Event)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        for (idx, tj) in trace.iter().enumerate() {
            events.push(Reverse((tj.job.submit_us, seq, Event::Arrival(idx))));
            seq += 1;
        }

        let mut models: HashMap<u64, RunModel> = HashMap::new();
        let mut gen_counter: u64 = 0;
        let mut records: Vec<JobRecord> = Vec::new();
        let mut busy_cpu_us: u128 = 0;
        // The utilization interval is [first submission, last completion] —
        // a trace sliced out of a longer log may start far from t = 0, and
        // the cluster offered no schedulable capacity before its first job.
        let run_start: TimeUs = trace.iter().map(|t| t.job.submit_us).min().unwrap_or(0);
        let mut last_t: TimeUs = run_start;
        let mut processed: u64 = 0;
        let guard = (trace.len() as u64 + 1) * EVENTS_PER_JOB_GUARD;

        while let Some(Reverse((now, _, event))) = events.pop() {
            processed += 1;
            assert!(
                processed <= guard,
                "cluster simulation failed to converge under policy {policy_name}"
            );
            // A completion superseded by a resize changes nothing — and must
            // not advance the accounting clock either: a stale event can sit
            // *past* the real end of the run (an expand moves a completion
            // earlier), and letting it stretch `last_t` would inflate the
            // capacity denominator of exactly the policies that resize.
            if let Event::Completion { job_id, gen } = event {
                if !models.get(&job_id).is_some_and(|m| m.gen == gen) {
                    continue;
                }
            }
            // Account the CPU time of the interval that just elapsed.
            busy_cpu_us += sched.allocated_cpus() as u128 * (now.saturating_sub(last_t)) as u128;
            last_t = now;

            match event {
                Event::Arrival(idx) => {
                    sched.submit(trace[idx].job.clone())?;
                }
                Event::Completion { job_id, gen: _ } => {
                    models.remove(&job_id);
                    let done = sched.job_finished(job_id)?;
                    records.push(JobRecord::new(
                        format!("job{job_id}"),
                        done.job.submit_us,
                        done.start_us,
                        now,
                    ));
                }
            }

            for action in sched.tick(now)? {
                match action {
                    SchedulerAction::Start {
                        job_id,
                        node_indices,
                        cpus_per_node,
                    } => {
                        let spec: &JobRate = &rates[&job_id];
                        let progress = JobProgress::start_scaled(
                            spec.work(durations[&job_id]),
                            spec.rate(node_indices.len(), cpus_per_node),
                            now,
                        );
                        gen_counter += 1;
                        let finish = progress.completion_us();
                        models.insert(
                            job_id,
                            RunModel {
                                progress,
                                gen: gen_counter,
                            },
                        );
                        sched.set_expected_end(job_id, Some(finish));
                        events.push(Reverse((
                            finish,
                            seq,
                            Event::Completion {
                                job_id,
                                gen: gen_counter,
                            },
                        )));
                        seq += 1;
                    }
                    SchedulerAction::Resize { job_id, .. } => {
                        let (nodes, width) = sched
                            .running()
                            .iter()
                            .find(|r| r.alloc.job_id == job_id)
                            .map(|r| (r.alloc.node_indices.len(), r.alloc.cpus_per_node))
                            .expect("an applied resize names a running job");
                        let model = models
                            .get_mut(&job_id)
                            .expect("a running job has a run model");
                        let spec: &JobRate = &rates[&job_id];
                        model.progress.set_rate(now, spec.rate(nodes, width));
                        gen_counter += 1;
                        model.gen = gen_counter;
                        let finish = model.progress.completion_us();
                        sched.set_expected_end(job_id, Some(finish));
                        events.push(Reverse((
                            finish,
                            seq,
                            Event::Completion {
                                job_id,
                                gen: gen_counter,
                            },
                        )));
                        seq += 1;
                    }
                }
            }
        }

        Ok(ClusterRunReport {
            policy: policy_name,
            report: WorkloadReport::new(Scenario::Drom, records),
            utilization: UtilizationStat {
                busy_cpu_us,
                capacity_cpu_us: (self.num_nodes * self.node_cpus) as u128
                    * last_t.saturating_sub(run_start) as u128,
            },
            stats: sched.stats(),
            events_processed: processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::speedup_curve;
    use crate::trace::{
        mixed_hpc_trace, model_aware_trace, queue_churn_trace, reservation_heavy_trace,
    };
    use drom_apps::AppKind;
    use drom_slurm::policy::QueuedJob;
    use drom_slurm::{
        BackfillPolicy, FirstFitPolicy, MalleablePolicy, MalleableScanPolicy, SpeedupCurve,
    };

    fn tiny_trace() -> Vec<TraceJob> {
        mixed_hpc_trace(11, 60, 8, 16, 1.2).generate()
    }

    #[test]
    fn every_policy_completes_the_trace() {
        let sim = ClusterSim::new(8, 16);
        let trace = tiny_trace();
        for policy in [
            Box::new(FirstFitPolicy::default()) as Box<dyn SchedulerPolicy>,
            Box::new(BackfillPolicy::default()),
            Box::new(MalleablePolicy::default()),
        ] {
            let report = sim.run(policy, &trace).unwrap();
            assert_eq!(report.jobs().len(), trace.len(), "{}", report.policy);
            assert_eq!(report.stats.started as usize, trace.len());
            assert_eq!(report.stats.completed as usize, trace.len());
            assert!(report.makespan_s() > 0.0);
            assert!(report.mean_response_s() > 0.0);
            assert!(report.p95_response_s() >= report.mean_response_s() * 0.5);
            let util = report.utilization_fraction();
            assert!(util > 0.0 && util <= 1.0, "{}: util {util}", report.policy);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let sim = ClusterSim::new(8, 16);
        let trace = tiny_trace();
        let a = sim
            .run(Box::new(MalleablePolicy::default()), &trace)
            .unwrap();
        let b = sim
            .run(Box::new(MalleablePolicy::default()), &trace)
            .unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn malleable_beats_first_fit_on_a_loaded_cluster() {
        let sim = ClusterSim::new(16, 16);
        let trace = mixed_hpc_trace(3, 150, 16, 16, 1.2).generate();
        let ff = sim
            .run(Box::new(FirstFitPolicy::default()), &trace)
            .unwrap();
        let mall = sim
            .run(Box::new(MalleablePolicy::default()), &trace)
            .unwrap();
        assert!(
            mall.makespan_s() < ff.makespan_s(),
            "malleable {} vs first-fit {}",
            mall.makespan_s(),
            ff.makespan_s()
        );
        assert!(mall.mean_response_s() < ff.mean_response_s());
        assert!(
            mall.stats.shrinks > 0,
            "the win must come from malleability"
        );
        assert!(mall.stats.expands > 0, "shrunk jobs must re-expand");
    }

    #[test]
    fn zero_duration_jobs_complete_instantly() {
        let jobs = vec![
            TraceJob {
                job: QueuedJob::new(1, 1, 8)
                    .with_submit_us(10)
                    .with_expected_duration_us(0),
                duration_us: 0,
            },
            TraceJob {
                job: QueuedJob::new(2, 1, 8)
                    .with_submit_us(10)
                    .with_expected_duration_us(100),
                duration_us: 100,
            },
        ];
        let report = ClusterSim::new(1, 16)
            .run(Box::new(FirstFitPolicy::default()), &jobs)
            .unwrap();
        assert_eq!(report.jobs().len(), 2);
        let zero = report.jobs().iter().find(|j| j.name == "job1").unwrap();
        assert_eq!(zero.start, 10);
        assert_eq!(zero.end, 10);
        assert_eq!(zero.response_time(), 0);
    }

    #[test]
    fn impossible_job_errors_instead_of_livelocking() {
        let jobs = vec![TraceJob {
            job: QueuedJob::new(1, 1, 32), // 32 CPUs per node on 16-CPU nodes
            duration_us: 100,
        }];
        for policy in [
            Box::new(FirstFitPolicy::default()) as Box<dyn SchedulerPolicy>,
            Box::new(BackfillPolicy::default()),
            Box::new(MalleablePolicy::default()),
        ] {
            let err = ClusterSim::new(4, 16).run(policy, &jobs).unwrap_err();
            assert!(matches!(err, SlurmError::Unschedulable { job_id: 1, .. }));
        }
    }

    #[test]
    fn shrink_to_admit_races_a_same_instant_completion() {
        // Job 1 owns the whole (single-node) cluster and completes at exactly
        // t = 1000 — the same instant job 3 arrives wanting the full node.
        // Job 2 (malleable, full width) starts at t=1000 too; the policy's
        // shrink/start decisions interleave with the completion at one
        // timestamp and must still converge with job 1's CPUs reused.
        let jobs = vec![
            TraceJob {
                job: QueuedJob::new(1, 1, 16)
                    .with_submit_us(0)
                    .with_expected_duration_us(1000),
                duration_us: 1000,
            },
            TraceJob {
                job: QueuedJob::new(2, 1, 16)
                    .malleable(4)
                    .with_submit_us(1000)
                    .with_expected_duration_us(4000),
                duration_us: 4000,
            },
            TraceJob {
                job: QueuedJob::new(3, 1, 8)
                    .with_submit_us(1000)
                    .with_expected_duration_us(1000),
                duration_us: 1000,
            },
        ];
        let report = ClusterSim::new(1, 16)
            .run(Box::new(MalleablePolicy::default()), &jobs)
            .unwrap();
        assert_eq!(report.jobs().len(), 3);
        // Jobs 2 and 3 start in the same pass, so job 2's shrink folds into a
        // narrower admission width rather than a separate resize; what must
        // remain is the re-expansion once job 3 completes.
        assert!(report.stats.expands >= 1);
        // Job 3 never waited for job 2 to finish.
        let j3 = report.jobs().iter().find(|j| j.name == "job3").unwrap();
        assert_eq!(j3.start, 1000);
        // Job 2 ran shrunk for a while, so it finished later than its full
        // width duration but the accounting still adds up.
        let j2 = report.jobs().iter().find(|j| j.name == "job2").unwrap();
        assert!(j2.run_time() > 4000);
        assert_eq!(report.stats.resize_races, 0);
    }

    /// Regression (shrunk-duration rounding, end to end): job 6 is admitted
    /// shrunk (13 CPUs requested, 7 granted → ends at 10 + ⌈101·13/7⌉ = 198),
    /// job 7 gets a drain reservation at exactly that instant, and job 8
    /// (duration 188, ending exactly at 198) is entitled to backfill the
    /// free CPUs at t = 10. With the old truncating estimate the reservation
    /// sat at 197 — one microsecond before the shrunk job actually releases
    /// its CPUs (a promise job 6 itself violates) — and job 8 was refused,
    /// waiting until t = 198 to start.
    #[test]
    fn truncated_shrunk_estimate_no_longer_blocks_boundary_backfill() {
        let rigid = |id, nodes, width, submit, dur| TraceJob {
            job: QueuedJob::new(id, nodes, width)
                .with_submit_us(submit)
                .with_expected_duration_us(dur),
            duration_us: dur,
        };
        let jobs = vec![
            rigid(1, 1, 16, 0, 50_000), // node 0, blocks it for good
            rigid(2, 3, 2, 0, 10),      // nodes 1–3: releases 2 CPUs each at t=10
            TraceJob {
                // node 1 donor: full width 13, floor 9 → 4 reclaimable
                job: QueuedJob::new(3, 1, 13)
                    .malleable(9)
                    .with_submit_us(0)
                    .with_expected_duration_us(40_000),
                duration_us: 40_000,
            },
            rigid(4, 1, 13, 0, 50_000), // node 2 filler
            rigid(5, 1, 13, 0, 50_000), // node 3 filler
            TraceJob {
                // Admitted shrunk at t=10: avail on node 1 = 3 free + 4
                // reclaimable = 7 ≥ its shrink floor ⌈13/2⌉ = 7.
                job: QueuedJob::new(6, 1, 13)
                    .malleable(1)
                    .with_submit_us(1)
                    .with_expected_duration_us(101),
                duration_us: 101,
            },
            rigid(7, 3, 3, 2, 1_000), // reserved at job 6's end
            rigid(8, 1, 2, 3, 188),   // ends exactly at the reservation
        ];
        let report = ClusterSim::new(4, 16)
            .run(Box::new(MalleablePolicy::default()), &jobs)
            .unwrap();
        let j6 = report.jobs().iter().find(|j| j.name == "job6").unwrap();
        assert_eq!(j6.start, 10, "job 6 is admitted (shrunk) at the release");
        assert_eq!(j6.end, 198, "exact engine completion: 10 + ⌈101·13/7⌉");
        let j8 = report.jobs().iter().find(|j| j.name == "job8").unwrap();
        assert_eq!(
            j8.start, 10,
            "job 8 ends exactly at the (rounded-up) reservation instant and \
             must backfill immediately"
        );
        assert_eq!(j8.end, 198);
    }

    /// The indexed malleable policy and the pre-index reference scan replay
    /// whole traces to byte-identical reports, stats and event counts —
    /// linear traces *and* model-aware ones, so the curve-driven donor
    /// ranking, shrink economics and expansion targeting are exercised by
    /// the differential too.
    #[test]
    fn indexed_policy_matches_reference_scan_on_traces() {
        for (seed, nodes, jobs, load) in
            [(11, 8, 60, 1.2), (3, 16, 150, 1.2), (2018, 32, 300, 1.15)]
        {
            let sim = ClusterSim::new(nodes, 16);
            for trace in [
                mixed_hpc_trace(seed, jobs, nodes, 16, load).generate(),
                model_aware_trace(seed, jobs, nodes, 16, load).generate(),
                // The reservation-dense stream: wide rigid jobs force a
                // drain reservation in most passes, so the timeline walk and
                // the replay reference disagree loudly if either drifts.
                reservation_heavy_trace(seed, jobs, nodes, 16, load).generate(),
                // The queue-churn stream: short jobs over-subscribe the
                // cluster so the waiting queue stays deep and every pass is
                // admission-bound — the surface where the incremental
                // admission order and the probe memo do their work. The scan
                // reference keeps the full re-sort and re-probes everything,
                // so a tie-break slip or an unsound skip diverges here first.
                queue_churn_trace(seed, jobs, nodes, 16, load + 0.1).generate(),
            ] {
                let indexed = sim
                    .run(Box::new(MalleablePolicy::default()), &trace)
                    .unwrap();
                let scanned = sim
                    .run(Box::new(MalleableScanPolicy::default()), &trace)
                    .unwrap();
                assert_eq!(indexed.report, scanned.report, "seed {seed}");
                assert_eq!(indexed.stats, scanned.stats, "seed {seed}");
                assert_eq!(
                    indexed.events_processed, scanned.events_processed,
                    "seed {seed}"
                );
            }
        }
    }

    /// Linear (curve-less) traces replay **byte-identically to PR 5** under
    /// the curve-aware policy: these integer digests were captured from the
    /// committed pre-curve implementation (the one behind the PR 5 sweep
    /// tables in `BENCH_sched.json`), and the curve-driven donor ranking,
    /// shrink economics and expansion targeting must all collapse to the old
    /// rules when no job carries a curve. Any drift in a sum, stat or event
    /// count here means model-blind behaviour changed.
    #[test]
    fn linear_replay_is_pinned_to_the_pr5_committed_digests() {
        for (seed, nodes, jobs, load, digest) in [
            (
                2018u64,
                32usize,
                300usize,
                1.15f64,
                (
                    1_464_106_261_953u128,
                    1_740_934_542_902u128,
                    12_105_439_265u64,
                    87u64,
                    57u64,
                    744u64,
                ),
            ),
            (
                11,
                8,
                60,
                1.2,
                (214_581_415_225, 263_920_502_372, 7_774_986_649, 20, 13, 153),
            ),
        ] {
            let sim = ClusterSim::new(nodes, 16);
            let trace = mixed_hpc_trace(seed, jobs, nodes, 16, load).generate();
            let r = sim
                .run(Box::new(MalleablePolicy::default()), &trace)
                .unwrap();
            let sum_start: u128 = r.jobs().iter().map(|j| j.start as u128).sum();
            let sum_end: u128 = r.jobs().iter().map(|j| j.end as u128).sum();
            let got = (
                sum_start,
                sum_end,
                r.report.total_run_time(),
                r.stats.shrinks,
                r.stats.expands,
                r.events_processed,
            );
            assert_eq!(got, digest, "seed {seed}: linear replay drifted from PR 5");
        }

        // The reservation-dense stream, pinned the same way *before* the
        // release-timeline rewrite of `earliest_release_fit`: every pass on
        // this trace forecasts a drain reservation, so these digests are the
        // strongest byte-identity witness the timeline walk must reproduce.
        let sim = ClusterSim::new(32, 16);
        let trace = reservation_heavy_trace(2018, 300, 32, 16, 1.15).generate();
        let r = sim
            .run(Box::new(MalleablePolicy::default()), &trace)
            .unwrap();
        let sum_start: u128 = r.jobs().iter().map(|j| j.start as u128).sum();
        let sum_end: u128 = r.jobs().iter().map(|j| j.end as u128).sum();
        let got = (
            sum_start,
            sum_end,
            r.report.total_run_time(),
            r.stats.shrinks,
            r.stats.expands,
            r.events_processed,
        );
        assert_eq!(
            got,
            (
                1_051_586_406_371u128,
                1_187_645_406_137u128,
                8_044_835_231u64,
                119u64,
                96u64,
                815u64
            ),
            "reservation-dense replay drifted from the pre-timeline digests"
        );
    }

    /// Integer digest of a whole replay: start/end sums, total run time,
    /// shrink/expand counts and the event count. Two replays with equal
    /// digests on these traces are byte-identical for every purpose the
    /// sweep tables report.
    fn replay_digest(r: &ClusterRunReport) -> (u128, u128, u64, u64, u64, u64) {
        (
            r.jobs().iter().map(|j| j.start as u128).sum(),
            r.jobs().iter().map(|j| j.end as u128).sum(),
            r.report.total_run_time(),
            r.stats.shrinks,
            r.stats.expands,
            r.events_processed,
        )
    }

    /// The queue-churn stream replays byte-identically to the **pre-PR-8**
    /// full-re-sort / always-probe implementation under all three policies.
    /// These digests were captured from the committed code *before* the
    /// incremental admission order and the dirty-tracked probe memo existed,
    /// so any skip the memo takes that an always-probe pass would not have
    /// taken — or any ordering slip in the incremental index — breaks a sum
    /// here. This trace keeps the queue deep on purpose: it is the
    /// admission-bound surface the machinery was built for.
    #[test]
    fn queue_churn_replay_is_pinned_for_all_policies() {
        let sim = ClusterSim::new(32, 16);
        let trace = queue_churn_trace(2018, 300, 32, 16, 1.3).generate();
        for (policy, digest) in [
            (
                Box::new(FirstFitPolicy::default()) as Box<dyn SchedulerPolicy>,
                (
                    126_393_560_709u128,
                    140_234_781_524u128,
                    988_475_237u64,
                    0u64,
                    0u64,
                    600u64,
                ),
            ),
            (
                Box::new(BackfillPolicy::default()),
                (115_757_635_249, 129_598_856_064, 970_711_602, 0, 0, 600),
            ),
            (
                Box::new(MalleablePolicy::default()),
                (105_120_910_445, 124_091_405_167, 934_436_021, 81, 87, 768),
            ),
        ] {
            let name = policy.name();
            let r = sim.run(policy, &trace).unwrap();
            assert_eq!(
                replay_digest(&r),
                digest,
                "{name}: queue-churn replay drifted from the pre-admission-index digests"
            );
        }
    }

    /// Mega-tier smoke: the 10 000-node cluster replaying a 2 000-job slice
    /// of the mega trace, pinned to pre-PR-8 digests for all three policies.
    /// Release-only — the debug-mode `debug_assert` oracles re-sort and
    /// rebuild on every pass, which is exactly the O(cluster) work this tier
    /// exists to avoid paying.
    #[cfg(not(debug_assertions))]
    #[test]
    fn mega_replay_smoke_is_pinned_for_all_policies() {
        let sim = ClusterSim::new(10_000, 16);
        let trace = crate::trace::mega_trace(2018, 2_000).generate();
        for (policy, digest) in [
            (
                Box::new(FirstFitPolicy::default()) as Box<dyn SchedulerPolicy>,
                (
                    8_079_087_724_395u128,
                    9_222_464_302_415u128,
                    10_038_384_031u64,
                    0u64,
                    0u64,
                    4_000u64,
                ),
            ),
            (
                Box::new(BackfillPolicy::default()),
                (
                    8_036_766_279_801,
                    9_180_142_857_821,
                    10_038_384_031,
                    0,
                    0,
                    4_000,
                ),
            ),
            (
                Box::new(MalleablePolicy::default()),
                (
                    7_316_703_157_087,
                    9_031_261_469_692,
                    9_549_445_946,
                    956,
                    888,
                    5_844,
                ),
            ),
        ] {
            let name = policy.name();
            let r = sim.run(policy, &trace).unwrap();
            assert_eq!(
                replay_digest(&r),
                digest,
                "{name}: mega replay drifted from the pre-admission-index digests"
            );
        }
    }

    /// Differential: attaching an explicitly **linear** curve to every job
    /// replays byte-identically to attaching no curve at all — the
    /// model-aware path is purely additive over the PR 4 engine.
    #[test]
    fn linear_curves_replay_byte_identically_to_no_curves() {
        let sim = ClusterSim::new(8, 16);
        let base = tiny_trace();
        let with_curves: Vec<TraceJob> = base
            .iter()
            .cloned()
            .map(|mut t| {
                t.job.speedup = Some(SpeedupCurve::linear(t.job.cpus_per_node));
                t
            })
            .collect();
        for policy in [
            Box::new(FirstFitPolicy::default()) as Box<dyn SchedulerPolicy>,
            Box::new(BackfillPolicy::default()),
            Box::new(MalleablePolicy::default()),
        ] {
            let name = policy.name();
            let plain = sim.run(policy, &base).unwrap();
            let curved = match name {
                "first-fit" => sim.run(Box::new(FirstFitPolicy::default()), &with_curves),
                "backfill" => sim.run(Box::new(BackfillPolicy::default()), &with_curves),
                _ => sim.run(Box::new(MalleablePolicy::default()), &with_curves),
            }
            .unwrap();
            assert_eq!(plain.report, curved.report, "{name}");
            assert_eq!(plain.stats, curved.stats, "{name}");
            assert_eq!(plain.events_processed, curved.events_processed, "{name}");
        }
    }

    /// A policy that never resizes (first-fit) replays a model-aware trace
    /// identically to its linear twin: at full width every curve delivers
    /// exactly the declared duration, so the models only matter where
    /// malleability does.
    #[test]
    fn first_fit_is_blind_to_the_app_models() {
        let sim = ClusterSim::new(8, 16);
        let linear = mixed_hpc_trace(11, 60, 8, 16, 1.2).generate();
        let model = model_aware_trace(11, 60, 8, 16, 1.2).generate();
        let a = sim
            .run(Box::new(FirstFitPolicy::default()), &linear)
            .unwrap();
        let b = sim
            .run(Box::new(FirstFitPolicy::default()), &model)
            .unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.events_processed, b.events_processed);
    }

    /// Whole-scenario regression for the static-partition expansion
    /// over-speedup: a NEST-like job *launched* with 8 threads per node
    /// whose allocation request is 16 wide gains nothing from the extra
    /// CPUs, so shrinking it back to its launch width is free — its
    /// completion stays exactly at its full-width duration. Pre-fix,
    /// `effective_parallelism` treated width 16 as twice width 8, so the
    /// same shrink stretched the job's completion by ~50%.
    #[test]
    fn static_partition_job_shrinks_to_launch_width_for_free() {
        let curve = speedup_curve(AppKind::Nest, 8, 16);
        assert_eq!(
            curve.rate(8),
            curve.rate(16),
            "the launch width is the whole-curve plateau post-fix"
        );
        let jobs = vec![
            TraceJob {
                job: QueuedJob::new(1, 1, 16)
                    .malleable(8)
                    .with_submit_us(0)
                    .with_expected_duration_us(1_000)
                    .with_speedup(curve),
                duration_us: 1_000,
            },
            TraceJob {
                job: QueuedJob::new(2, 1, 8)
                    .with_submit_us(10)
                    .with_expected_duration_us(500),
                duration_us: 500,
            },
        ];
        let report = ClusterSim::new(1, 16)
            .run(Box::new(MalleablePolicy::default()), &jobs)
            .unwrap();
        assert!(report.stats.shrinks >= 1, "job 1 is shrunk to admit job 2");
        let j2 = report.jobs().iter().find(|j| j.name == "job2").unwrap();
        assert_eq!(j2.start, 10, "job 2 is admitted by the shrink");
        let j1 = report.jobs().iter().find(|j| j.name == "job1").unwrap();
        assert_eq!(
            j1.end, 1_000,
            "shrinking to the launch width must not slow the job at all"
        );
    }

    /// Model-aware estimate honesty, end to end: a static-partition job
    /// admitted shrunk gets a curve-scaled completion estimate from the
    /// controller, and the engine completes it at **exactly** that instant —
    /// the estimate and the progress accounting read the same curve.
    #[test]
    fn model_estimates_match_engine_completions_exactly() {
        let curve = speedup_curve(AppKind::Nest, 16, 16);
        let jobs = vec![
            TraceJob {
                // Rigid 7-wide blocker that outlives everything: 9 CPUs
                // stay free — an *uneven* share of the 16-chunk partition.
                job: QueuedJob::new(1, 1, 7)
                    .with_submit_us(0)
                    .with_expected_duration_us(1_000_000),
                duration_us: 1_000_000,
            },
            TraceJob {
                // NEST-like: request 16, admitted shrunk at the 9 free CPUs
                // and stuck there for its whole life.
                job: QueuedJob::new(2, 1, 16)
                    .malleable(8)
                    .with_submit_us(10)
                    .with_expected_duration_us(1_000)
                    .with_speedup(curve.clone()),
                duration_us: 1_000,
            },
        ];
        let report = ClusterSim::new(1, 16)
            .run(Box::new(MalleablePolicy::default()), &jobs)
            .unwrap();
        let j2 = report.jobs().iter().find(|j| j.name == "job2").unwrap();
        assert_eq!(j2.start, 10);
        let predicted = 10 + curve.scaled_duration_us(1_000, 9);
        assert_eq!(
            j2.end, predicted,
            "engine completion must equal the curve-scaled estimate"
        );
        // And the curve says the uneven 16→9 shrink costs *more* than the
        // linear ⌈1000·16/9⌉ = 1778: nine threads carry sixteen chunks no
        // faster than eight would, so the sub-linear penalty is visible end
        // to end.
        assert!(
            curve.scaled_duration_us(1_000, 9) > 1_778,
            "an uneven static shrink must cost more than linear, got {}",
            curve.scaled_duration_us(1_000, 9)
        );
    }

    /// The committed model-aware tier claim: under the calibrated app mix
    /// the malleable policy's shrinks are no longer free (and its honest
    /// estimates move every reservation), so the replay differs measurably
    /// from its linear twin — same arrivals, same durations, same policy,
    /// only the speedup curves differ. The *direction* of the shift is an
    /// empirical result recorded in EXPERIMENTS.md, not a theorem: costlier
    /// shrinks hurt, but the longer (honest) estimates also reshape
    /// reservations and backfill.
    #[test]
    fn model_coupling_measurably_shifts_malleable_outcomes() {
        let sim = ClusterSim::new(16, 16);
        let linear = mixed_hpc_trace(3, 150, 16, 16, 1.2).generate();
        let model = model_aware_trace(3, 150, 16, 16, 1.2).generate();
        let lin = sim
            .run(Box::new(MalleablePolicy::default()), &linear)
            .unwrap();
        let modl = sim
            .run(Box::new(MalleablePolicy::default()), &model)
            .unwrap();
        assert!(modl.stats.shrinks > 0, "malleability must still engage");
        let delta = (modl.mean_response_s() - lin.mean_response_s()).abs() / lin.mean_response_s();
        assert!(
            delta > 0.02,
            "the model coupling must move mean response by a measurable \
             amount: model {} vs linear {}",
            modl.mean_response_s(),
            lin.mean_response_s()
        );
    }

    #[test]
    fn backfill_beats_first_fit_on_response_time() {
        let sim = ClusterSim::new(16, 16);
        let trace = mixed_hpc_trace(3, 150, 16, 16, 1.2).generate();
        let ff = sim
            .run(Box::new(FirstFitPolicy::default()), &trace)
            .unwrap();
        let bf = sim
            .run(Box::new(BackfillPolicy::default()), &trace)
            .unwrap();
        assert!(
            bf.mean_response_s() <= ff.mean_response_s(),
            "backfill {} vs first-fit {}",
            bf.mean_response_s(),
            ff.mean_response_s()
        );
    }
}
