//! CPU distribution algorithms used by the DROM-enabled `task/affinity` plugin.
//!
//! Section 5 of the paper describes what the modified SLURM plugin does when a
//! new job is launched on a node that already runs a DROM-enabled job:
//!
//! * "CPUs distribution is done to maintain running and new processes balanced
//!   in the number of CPUs for each task" — per-task masks differ by at most
//!   one CPU ([`balanced_sizes`]).
//! * "The algorithm also distributes CPUs trying to keep applications in
//!   separate sockets in order to improve data locality" —
//!   [`DistributionPolicy::SocketAware`].
//! * "for fairness, computational resources are equally partitioned among
//!   running jobs" — [`co_allocate`] gives every job (running or new) an equal
//!   share of the node.
//! * When a job finishes, `release_resources` "redistributes free CPUs to still
//!   running tasks" — [`redistribute_freed`].
//!
//! The same functions are used by the real-execution path (`drom-slurm`) and by
//! the discrete-event simulator (`drom-sim`), so both modes place tasks
//! identically.

use serde::{Deserialize, Serialize};

use crate::cpuset::CpuSet;
use crate::topology::Topology;

/// How CPUs are laid out when a mask is split into parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DistributionPolicy {
    /// Contiguous assignment in CPU-id order, ignoring sockets.
    Packed,
    /// Interleave CPUs across sockets (worst locality; used as an ablation
    /// baseline for the socket-aware policy).
    RoundRobinSockets,
    /// Align parts to socket boundaries whenever a part fits entirely in the
    /// free space of one socket. This is the policy described in the paper.
    #[default]
    SocketAware,
}

/// A task already running on the node, identified by job and task index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunningTask {
    /// Job the task belongs to.
    pub job_id: u64,
    /// Task index within the job (the MPI rank on this node).
    pub task_id: usize,
    /// The mask the task currently owns.
    pub mask: CpuSet,
}

/// The placement decision computed by [`co_allocate`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DistributionPlan {
    /// New (shrunk) masks for the tasks that were already running. Every mask
    /// is a subset of the task's previous mask unless the node had to be
    /// re-balanced from scratch.
    pub updated_running: Vec<RunningTask>,
    /// Masks for the tasks of the newly launched job, in task order.
    pub new_tasks: Vec<CpuSet>,
}

impl DistributionPlan {
    /// Union of every mask in the plan.
    pub fn total_mask(&self) -> CpuSet {
        let mut total = CpuSet::new();
        for t in &self.updated_running {
            total = total.union(&t.mask);
        }
        for m in &self.new_tasks {
            total = total.union(m);
        }
        total
    }

    /// Returns `true` if no two masks in the plan overlap (no
    /// oversubscription), which is the invariant DROM placement guarantees.
    pub fn is_disjoint(&self) -> bool {
        let mut seen = CpuSet::new();
        for mask in self
            .updated_running
            .iter()
            .map(|t| &t.mask)
            .chain(self.new_tasks.iter())
        {
            if !seen.is_disjoint(mask) {
                return false;
            }
            seen = seen.union(mask);
        }
        true
    }
}

/// Splits `total` units into `parts` sizes that differ by at most one,
/// with the larger sizes first.
///
/// `balanced_sizes(16, 3)` is `[6, 5, 5]`; `balanced_sizes(3, 5)` is
/// `[1, 1, 1, 0, 0]`.
pub fn balanced_sizes(total: usize, parts: usize) -> Vec<usize> {
    if parts == 0 {
        return Vec::new();
    }
    let base = total / parts;
    let extra = total % parts;
    (0..parts)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

/// Partitions the CPUs of `available` into `parts` disjoint masks of balanced
/// size, following `policy`.
///
/// The union of the returned masks is exactly `available`; sizes follow
/// [`balanced_sizes`]. With more parts than CPUs the trailing parts are empty.
pub fn equipartition(
    available: &CpuSet,
    parts: usize,
    topo: &Topology,
    policy: DistributionPolicy,
) -> Vec<CpuSet> {
    let sizes = balanced_sizes(available.count(), parts);
    split_with_sizes(available, &sizes, topo, policy)
}

/// Partitions `available` into parts of the given `sizes` (which must sum to at
/// most `available.count()`), following `policy`.
pub fn split_with_sizes(
    available: &CpuSet,
    sizes: &[usize],
    topo: &Topology,
    policy: DistributionPolicy,
) -> Vec<CpuSet> {
    match policy {
        DistributionPolicy::Packed => split_packed(available, sizes),
        DistributionPolicy::RoundRobinSockets => split_round_robin(available, sizes, topo),
        DistributionPolicy::SocketAware => split_socket_aware(available, sizes, topo),
    }
}

fn split_packed(available: &CpuSet, sizes: &[usize]) -> Vec<CpuSet> {
    let cpus = available.to_vec();
    let mut out = Vec::with_capacity(sizes.len());
    let mut cursor = 0usize;
    for &size in sizes {
        let take = size.min(cpus.len().saturating_sub(cursor));
        let mask: CpuSet = cpus[cursor..cursor + take].iter().copied().collect();
        cursor += take;
        out.push(mask);
    }
    out
}

fn split_round_robin(available: &CpuSet, sizes: &[usize], topo: &Topology) -> Vec<CpuSet> {
    // Build a CPU order that alternates between sockets: s0c0, s1c0, s0c1, ...
    let mut per_socket: Vec<Vec<usize>> = topo
        .sockets()
        .iter()
        .map(|s| s.cpus.intersection(available).to_vec())
        .collect();
    // CPUs that are in `available` but outside the topology (defensive).
    let known: CpuSet = per_socket.iter().flatten().copied().collect();
    let mut leftover = available.difference(&known).to_vec();
    let mut order = Vec::with_capacity(available.count());
    let mut idx = 0usize;
    while order.len() < available.count() - leftover.len() {
        let socket = idx % per_socket.len().max(1);
        if let Some(cpu) = per_socket.get_mut(socket).and_then(|v| {
            if v.is_empty() {
                None
            } else {
                Some(v.remove(0))
            }
        }) {
            order.push(cpu);
        }
        idx += 1;
        // Guard against an infinite loop if some sockets are exhausted.
        if idx > 4 * crate::MAX_CPUS {
            break;
        }
    }
    order.append(&mut leftover);
    let interleaved: CpuSet = order.iter().copied().collect();
    debug_assert_eq!(interleaved.count(), available.count());
    // Now deal the interleaved order out in contiguous chunks per part.
    let mut out = Vec::with_capacity(sizes.len());
    let mut cursor = 0usize;
    for &size in sizes {
        let take = size.min(order.len().saturating_sub(cursor));
        let mask: CpuSet = order[cursor..cursor + take].iter().copied().collect();
        cursor += take;
        out.push(mask);
    }
    out
}

fn split_socket_aware(available: &CpuSet, sizes: &[usize], topo: &Topology) -> Vec<CpuSet> {
    // Free CPUs per socket, in socket order; CPUs unknown to the topology are
    // treated as an extra pseudo-socket at the end.
    let mut free: Vec<Vec<usize>> = topo
        .sockets()
        .iter()
        .map(|s| s.cpus.intersection(available).to_vec())
        .collect();
    let known: CpuSet = free.iter().flatten().copied().collect();
    let outside = available.difference(&known).to_vec();
    if !outside.is_empty() {
        free.push(outside);
    }

    let mut out: Vec<CpuSet> = vec![CpuSet::new(); sizes.len()];
    // Process the largest parts first so that whole-socket parts get aligned
    // before the small ones fragment the sockets.
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));

    for part in order {
        let mut need = sizes[part];
        if need == 0 {
            continue;
        }
        let mut mask = CpuSet::new();
        // 1. Prefer the socket with the *smallest* free count that still fits
        //    the whole part (best fit keeps big sockets available for big
        //    parts and minimises fragmentation).
        while need > 0 {
            let fitting = free
                .iter()
                .enumerate()
                .filter(|(_, cpus)| cpus.len() >= need)
                .min_by_key(|(_, cpus)| cpus.len())
                .map(|(i, _)| i);
            let source = match fitting {
                Some(i) => i,
                // 2. Otherwise drain the socket with the most free CPUs.
                None => match free
                    .iter()
                    .enumerate()
                    .filter(|(_, cpus)| !cpus.is_empty())
                    .max_by_key(|(_, cpus)| cpus.len())
                    .map(|(i, _)| i)
                {
                    Some(i) => i,
                    None => break,
                },
            };
            let take = need.min(free[source].len());
            for cpu in free[source].drain(..take) {
                // The CPU came from `available`, so it is in range.
                let _ = mask.set(cpu);
            }
            need -= take;
        }
        out[part] = mask;
    }
    out
}

/// Computes the placement for co-allocating a new job of `new_job_tasks` tasks
/// on a node whose CPUs are `node_mask` and where `running` tasks already
/// execute.
///
/// Resources are equally partitioned among the distinct jobs (running jobs plus
/// the new one); within a job the share is balanced across its tasks. Running
/// tasks keep a subset of their current mask whenever their new share allows
/// it, so applying the plan never migrates a surviving thread.
pub fn co_allocate(
    node_mask: &CpuSet,
    running: &[RunningTask],
    new_job_tasks: usize,
    topo: &Topology,
    policy: DistributionPolicy,
) -> DistributionPlan {
    let mut jobs: Vec<u64> = running.iter().map(|t| t.job_id).collect();
    jobs.sort_unstable();
    jobs.dedup();
    let num_jobs = jobs.len() + 1;
    // Fair shares (the paper's equipartition among jobs), repaired so that no
    // job receives fewer CPUs than it has tasks whenever the node is large
    // enough: fairness must never starve a running task.
    let minimums: Vec<usize> = jobs
        .iter()
        .map(|id| running.iter().filter(|t| t.job_id == *id).count())
        .chain(std::iter::once(new_job_tasks))
        .collect();
    let mut job_shares = balanced_sizes(node_mask.count(), num_jobs);
    if minimums.iter().sum::<usize>() <= node_mask.count() {
        while let Some(deficient) = (0..num_jobs).find(|&i| job_shares[i] < minimums[i]) {
            let donor = (0..num_jobs)
                .filter(|&j| job_shares[j] > minimums[j])
                .max_by_key(|&j| job_shares[j] - minimums[j]);
            let Some(donor) = donor else { break };
            job_shares[donor] -= 1;
            job_shares[deficient] += 1;
        }
    }

    // The new job takes the *last* share so running jobs keep the larger
    // remainder shares (they were there first).
    let new_job_share = *job_shares.last().unwrap_or(&0);

    let mut plan = DistributionPlan::default();
    let mut taken = CpuSet::new();

    // Shrink every running job into its share, preferring CPUs it already owns.
    for (job_idx, job_id) in jobs.iter().enumerate() {
        let share = job_shares[job_idx];
        let tasks: Vec<&RunningTask> = running.iter().filter(|t| t.job_id == *job_id).collect();
        let task_sizes = balanced_sizes(share, tasks.len());
        for (task, &size) in tasks.iter().zip(task_sizes.iter()) {
            // Keep a prefix of the CPUs the task already owns (minimises
            // migration), but never CPUs already handed to another task.
            let own = task.mask.difference(&taken);
            let mut mask = own.truncated(size);
            if mask.count() < size {
                // The task's current mask cannot provide its full share (it was
                // running on fewer CPUs than its fair share); top it up from
                // whatever is still free on the node.
                let free = node_mask.difference(&taken).difference(&mask);
                let extra = size - mask.count();
                let top_up = split_with_sizes(&free, &[extra], topo, policy)
                    .pop()
                    .unwrap_or_default();
                mask = mask.union(&top_up);
            }
            taken = taken.union(&mask);
            plan.updated_running.push(RunningTask {
                job_id: *job_id,
                task_id: task.task_id,
                mask,
            });
        }
    }

    // The new job receives its share out of the remaining CPUs.
    let free = node_mask.difference(&taken);
    let new_share = new_job_share.min(free.count());
    let task_sizes = balanced_sizes(new_share, new_job_tasks);
    plan.new_tasks = split_with_sizes(&free, &task_sizes, topo, policy);
    plan
}

/// Redistributes the CPUs freed by a finished job among the tasks that keep
/// running, expanding their masks while keeping per-task counts balanced.
///
/// Returns the updated masks (every returned mask is a superset of the task's
/// previous mask). Tasks with the fewest CPUs are topped up first.
pub fn redistribute_freed(
    running: &[RunningTask],
    freed: &CpuSet,
    topo: &Topology,
    policy: DistributionPolicy,
) -> Vec<RunningTask> {
    if running.is_empty() {
        return Vec::new();
    }
    let mut updated: Vec<RunningTask> = running.to_vec();
    // Hand the freed CPUs out one socket-aware chunk at a time: compute how
    // many extra CPUs each task should receive so the final counts are as
    // balanced as possible.
    let current: Vec<usize> = updated.iter().map(|t| t.mask.count()).collect();
    let total_after: usize = current.iter().sum::<usize>() + freed.count();
    let target = balanced_targets(&current, total_after);
    let extras: Vec<usize> = target
        .iter()
        .zip(current.iter())
        .map(|(t, c)| t.saturating_sub(*c))
        .collect();
    let chunks = split_with_sizes(freed, &extras, topo, policy);
    for (task, chunk) in updated.iter_mut().zip(chunks) {
        task.mask = task.mask.union(&chunk);
    }
    updated
}

/// Computes per-task target sizes that sum to `total_after`, are each at least
/// the task's current size, and are as equal as possible.
fn balanced_targets(current: &[usize], total_after: usize) -> Vec<usize> {
    let n = current.len();
    if n == 0 {
        return Vec::new();
    }
    let mut target = current.to_vec();
    let mut remaining = total_after.saturating_sub(current.iter().sum::<usize>());
    // Repeatedly give one CPU to the smallest task.
    while remaining > 0 {
        let (idx, _) = target
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v)
            .expect("non-empty");
        target[idx] += 1;
        remaining -= 1;
    }
    target
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mn3() -> Topology {
        Topology::marenostrum3_node()
    }

    #[test]
    fn balanced_sizes_basic() {
        assert_eq!(balanced_sizes(16, 2), vec![8, 8]);
        assert_eq!(balanced_sizes(16, 3), vec![6, 5, 5]);
        assert_eq!(balanced_sizes(3, 5), vec![1, 1, 1, 0, 0]);
        assert_eq!(balanced_sizes(0, 3), vec![0, 0, 0]);
        assert!(balanced_sizes(5, 0).is_empty());
    }

    #[test]
    fn equipartition_two_tasks_socket_aware() {
        let topo = mn3();
        let parts = equipartition(&topo.node_mask(), 2, &topo, DistributionPolicy::SocketAware);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].count(), 8);
        assert_eq!(parts[1].count(), 8);
        assert!(parts[0].is_disjoint(&parts[1]));
        // Each task should live entirely in one socket.
        assert_eq!(topo.sockets_spanned(&parts[0]), 1);
        assert_eq!(topo.sockets_spanned(&parts[1]), 1);
    }

    #[test]
    fn equipartition_four_tasks_covers_node() {
        let topo = mn3();
        for policy in [
            DistributionPolicy::Packed,
            DistributionPolicy::RoundRobinSockets,
            DistributionPolicy::SocketAware,
        ] {
            let parts = equipartition(&topo.node_mask(), 4, &topo, policy);
            let mut union = CpuSet::new();
            for p in &parts {
                assert_eq!(p.count(), 4, "policy {policy:?}");
                assert!(union.is_disjoint(p), "policy {policy:?}");
                union = union.union(p);
            }
            assert_eq!(union, topo.node_mask(), "policy {policy:?}");
        }
    }

    #[test]
    fn socket_aware_keeps_parts_within_sockets_when_possible() {
        let topo = mn3();
        // Four parts of four CPUs each: each fits in half a socket, so none
        // should span two sockets.
        let parts = equipartition(&topo.node_mask(), 4, &topo, DistributionPolicy::SocketAware);
        for p in &parts {
            assert_eq!(topo.sockets_spanned(p), 1, "part {p} spans sockets");
        }
    }

    #[test]
    fn round_robin_spreads_across_sockets() {
        let topo = mn3();
        let parts = equipartition(
            &topo.node_mask(),
            2,
            &topo,
            DistributionPolicy::RoundRobinSockets,
        );
        // With interleaving, each part touches both sockets.
        assert_eq!(topo.sockets_spanned(&parts[0]), 2);
        assert_eq!(topo.sockets_spanned(&parts[1]), 2);
    }

    #[test]
    fn packed_is_contiguous() {
        let topo = mn3();
        let parts = equipartition(&topo.node_mask(), 2, &topo, DistributionPolicy::Packed);
        assert_eq!(parts[0].to_vec(), (0..8).collect::<Vec<_>>());
        assert_eq!(parts[1].to_vec(), (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn equipartition_more_parts_than_cpus() {
        let topo = Topology::small_node();
        let parts = equipartition(&topo.node_mask(), 6, &topo, DistributionPolicy::SocketAware);
        assert_eq!(parts.len(), 6);
        let non_empty = parts.iter().filter(|p| !p.is_empty()).count();
        assert_eq!(non_empty, 4);
        let total: usize = parts.iter().map(|p| p.count()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn co_allocate_shares_node_fairly() {
        let topo = mn3();
        // Job 1: one task owning the whole node (the paper's Figure 2 scenario).
        let running = vec![RunningTask {
            job_id: 1,
            task_id: 0,
            mask: topo.node_mask(),
        }];
        let plan = co_allocate(
            &topo.node_mask(),
            &running,
            2,
            &topo,
            DistributionPolicy::SocketAware,
        );
        assert_eq!(plan.updated_running.len(), 1);
        assert_eq!(plan.new_tasks.len(), 2);
        // Equipartition among two jobs: 8 CPUs each.
        assert_eq!(plan.updated_running[0].mask.count(), 8);
        assert_eq!(plan.new_tasks[0].count(), 4);
        assert_eq!(plan.new_tasks[1].count(), 4);
        assert!(plan.is_disjoint());
        assert_eq!(plan.total_mask(), topo.node_mask());
        // The running job keeps a subset of what it had.
        assert!(plan.updated_running[0].mask.is_subset_of(&running[0].mask));
    }

    #[test]
    fn co_allocate_running_tasks_keep_subset_of_mask() {
        let topo = mn3();
        // Job 7 has two tasks of 8 CPUs each.
        let running = vec![
            RunningTask {
                job_id: 7,
                task_id: 0,
                mask: CpuSet::from_range(0..8).unwrap(),
            },
            RunningTask {
                job_id: 7,
                task_id: 1,
                mask: CpuSet::from_range(8..16).unwrap(),
            },
        ];
        let plan = co_allocate(
            &topo.node_mask(),
            &running,
            2,
            &topo,
            DistributionPolicy::SocketAware,
        );
        for (before, after) in running.iter().zip(plan.updated_running.iter()) {
            assert_eq!(after.mask.count(), 4);
            assert!(after.mask.is_subset_of(&before.mask));
        }
        assert!(plan.is_disjoint());
        assert_eq!(plan.total_mask().count(), 16);
    }

    #[test]
    fn co_allocate_three_jobs() {
        let topo = mn3();
        let running = vec![
            RunningTask {
                job_id: 1,
                task_id: 0,
                mask: CpuSet::from_range(0..8).unwrap(),
            },
            RunningTask {
                job_id: 2,
                task_id: 0,
                mask: CpuSet::from_range(8..16).unwrap(),
            },
        ];
        let plan = co_allocate(
            &topo.node_mask(),
            &running,
            1,
            &topo,
            DistributionPolicy::SocketAware,
        );
        // 16 CPUs among 3 jobs: 6, 5, 5 (new job gets the last share of 5).
        let mut counts: Vec<usize> = plan
            .updated_running
            .iter()
            .map(|t| t.mask.count())
            .collect();
        counts.push(plan.new_tasks[0].count());
        assert_eq!(counts.iter().sum::<usize>(), 16);
        assert_eq!(*counts.iter().max().unwrap(), 6);
        assert_eq!(*counts.iter().min().unwrap(), 5);
        assert!(plan.is_disjoint());
    }

    #[test]
    fn redistribute_freed_balances_counts() {
        let topo = mn3();
        let running = vec![
            RunningTask {
                job_id: 2,
                task_id: 0,
                mask: CpuSet::from_range(0..4).unwrap(),
            },
            RunningTask {
                job_id: 2,
                task_id: 1,
                mask: CpuSet::from_range(4..8).unwrap(),
            },
        ];
        let freed = CpuSet::from_range(8..16).unwrap();
        let updated = redistribute_freed(&running, &freed, &topo, DistributionPolicy::SocketAware);
        assert_eq!(updated.len(), 2);
        for (before, after) in running.iter().zip(updated.iter()) {
            assert!(before.mask.is_subset_of(&after.mask));
            assert_eq!(after.mask.count(), 8);
        }
        let union = updated[0].mask.union(&updated[1].mask);
        assert_eq!(union, topo.node_mask());
        assert!(updated[0].mask.is_disjoint(&updated[1].mask));
    }

    #[test]
    fn redistribute_freed_uneven_start() {
        let topo = mn3();
        let running = vec![
            RunningTask {
                job_id: 3,
                task_id: 0,
                mask: CpuSet::from_range(0..2).unwrap(),
            },
            RunningTask {
                job_id: 3,
                task_id: 1,
                mask: CpuSet::from_range(2..8).unwrap(),
            },
        ];
        let freed = CpuSet::from_range(8..12).unwrap();
        let updated = redistribute_freed(&running, &freed, &topo, DistributionPolicy::SocketAware);
        // 12 CPUs total; the smaller task is topped up first: counts 6 and 6.
        assert_eq!(updated[0].mask.count(), 6);
        assert_eq!(updated[1].mask.count(), 6);
    }

    #[test]
    fn redistribute_with_no_running_tasks() {
        let topo = mn3();
        let freed = topo.node_mask();
        assert!(redistribute_freed(&[], &freed, &topo, DistributionPolicy::SocketAware).is_empty());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Equipartition always returns disjoint parts whose union is the input.
            #[test]
            fn prop_equipartition_is_partition(
                ncpus in 1usize..64,
                parts in 1usize..10,
                policy_idx in 0usize..3,
            ) {
                let policy = [
                    DistributionPolicy::Packed,
                    DistributionPolicy::RoundRobinSockets,
                    DistributionPolicy::SocketAware,
                ][policy_idx];
                let topo = Topology::homogeneous(2, 32, 64).unwrap();
                let avail = CpuSet::first_n(ncpus);
                let result = equipartition(&avail, parts, &topo, policy);
                prop_assert_eq!(result.len(), parts);
                let mut union = CpuSet::new();
                for p in &result {
                    prop_assert!(union.is_disjoint(p));
                    union = union.union(p);
                }
                prop_assert_eq!(union, avail);
                // Sizes differ by at most one.
                let counts: Vec<usize> = result.iter().map(|p| p.count()).collect();
                let max = *counts.iter().max().unwrap();
                let min = *counts.iter().min().unwrap();
                prop_assert!(max - min <= 1);
            }

            /// Co-allocation never oversubscribes and never exceeds the node.
            #[test]
            fn prop_co_allocate_disjoint(
                running_jobs in 1usize..4,
                tasks_per_job in 1usize..4,
                new_tasks in 1usize..5,
            ) {
                let topo = Topology::marenostrum3_node();
                let node = topo.node_mask();
                // Build running tasks by equipartitioning the node among the
                // running jobs and their tasks.
                let job_masks = equipartition(&node, running_jobs, &topo, DistributionPolicy::SocketAware);
                let mut running = Vec::new();
                for (j, jm) in job_masks.iter().enumerate() {
                    let task_masks = equipartition(jm, tasks_per_job, &topo, DistributionPolicy::SocketAware);
                    for (t, tm) in task_masks.into_iter().enumerate() {
                        running.push(RunningTask { job_id: j as u64 + 1, task_id: t, mask: tm });
                    }
                }
                let plan = co_allocate(&node, &running, new_tasks, &topo, DistributionPolicy::SocketAware);
                prop_assert!(plan.is_disjoint());
                prop_assert!(plan.total_mask().is_subset_of(&node));
                // Every running task's new mask is a subset of its old one.
                for after in &plan.updated_running {
                    let before = running.iter()
                        .find(|t| t.job_id == after.job_id && t.task_id == after.task_id)
                        .unwrap();
                    prop_assert!(after.mask.is_subset_of(&before.mask));
                }
            }

            /// Redistribution only ever grows masks and consumes all freed CPUs
            /// that are needed to reach balance.
            #[test]
            fn prop_redistribute_grows(
                ntasks in 1usize..5,
                freed_cpus in 0usize..8,
            ) {
                let topo = Topology::marenostrum3_node();
                let initial = equipartition(
                    &CpuSet::from_range(0..8).unwrap(),
                    ntasks,
                    &topo,
                    DistributionPolicy::SocketAware,
                );
                let running: Vec<RunningTask> = initial.iter().enumerate()
                    .map(|(i, m)| RunningTask { job_id: 1, task_id: i, mask: m.clone() })
                    .collect();
                let freed = CpuSet::from_range(8..8 + freed_cpus).unwrap();
                let updated = redistribute_freed(&running, &freed, &topo, DistributionPolicy::SocketAware);
                prop_assert_eq!(updated.len(), running.len());
                let mut total_after = 0usize;
                for (b, a) in running.iter().zip(updated.iter()) {
                    prop_assert!(b.mask.is_subset_of(&a.mask));
                    total_after += a.mask.count();
                }
                let total_before: usize = running.iter().map(|t| t.mask.count()).sum();
                prop_assert_eq!(total_after, total_before + freed.count());
            }
        }
    }
}
