//! Textual representation of CPU lists (`"0-3,8,10-11"`).
//!
//! SLURM, taskset and the DLB command-line tools all exchange CPU masks in this
//! compact "cpu list" syntax. The parser accepts single CPUs (`"4"`), inclusive
//! ranges (`"0-7"`), comma-separated combinations of both, and the empty string
//! (the empty mask). Whitespace around items is ignored.

use crate::cpuset::{CpuSet, CpuSetError};

/// Parses a CPU-list string such as `"0-3,8,10-11"` into a [`CpuSet`].
///
/// # Errors
///
/// Returns [`CpuSetError::Parse`] on malformed input (empty range bounds,
/// non-numeric items, inverted ranges) and [`CpuSetError::CpuOutOfRange`] when
/// a CPU id exceeds the capacity of [`CpuSet`].
///
/// # Example
///
/// ```
/// use drom_cpuset::parse_cpu_list;
/// let set = parse_cpu_list("0-2, 5").unwrap();
/// assert_eq!(set.to_vec(), vec![0, 1, 2, 5]);
/// assert!(parse_cpu_list("").unwrap().is_empty());
/// ```
pub fn parse_cpu_list(input: &str) -> Result<CpuSet, CpuSetError> {
    let mut set = CpuSet::new();
    let trimmed = input.trim();
    if trimmed.is_empty() {
        return Ok(set);
    }
    for item in trimmed.split(',') {
        let item = item.trim();
        if item.is_empty() {
            return Err(CpuSetError::Parse {
                message: format!("empty item in cpu list {input:?}"),
            });
        }
        if let Some((lo, hi)) = item.split_once('-') {
            let lo: usize = lo.trim().parse().map_err(|_| CpuSetError::Parse {
                message: format!("invalid range start {lo:?}"),
            })?;
            let hi: usize = hi.trim().parse().map_err(|_| CpuSetError::Parse {
                message: format!("invalid range end {hi:?}"),
            })?;
            if hi < lo {
                return Err(CpuSetError::Parse {
                    message: format!("inverted range {item:?}"),
                });
            }
            for cpu in lo..=hi {
                set.set(cpu)?;
            }
        } else {
            let cpu: usize = item.parse().map_err(|_| CpuSetError::Parse {
                message: format!("invalid cpu id {item:?}"),
            })?;
            set.set(cpu)?;
        }
    }
    Ok(set)
}

/// Formats a [`CpuSet`] as a compact CPU-list string.
///
/// Consecutive CPUs are collapsed into ranges; the empty set formats as `""`.
///
/// # Example
///
/// ```
/// use drom_cpuset::{CpuSet, format_cpu_list};
/// let set = CpuSet::from_cpus([0, 1, 2, 3, 8, 10, 11]).unwrap();
/// assert_eq!(format_cpu_list(&set), "0-3,8,10-11");
/// ```
pub fn format_cpu_list(set: &CpuSet) -> String {
    let mut out = String::new();
    let cpus = set.to_vec();
    let mut i = 0;
    while i < cpus.len() {
        let start = cpus[i];
        let mut end = start;
        while i + 1 < cpus.len() && cpus[i + 1] == end + 1 {
            end = cpus[i + 1];
            i += 1;
        }
        if !out.is_empty() {
            out.push(',');
        }
        if start == end {
            out.push_str(&start.to_string());
        } else {
            out.push_str(&format!("{start}-{end}"));
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_single_cpus() {
        assert_eq!(parse_cpu_list("3").unwrap().to_vec(), vec![3]);
        assert_eq!(parse_cpu_list("0,2,4").unwrap().to_vec(), vec![0, 2, 4]);
    }

    #[test]
    fn parse_ranges() {
        assert_eq!(parse_cpu_list("0-3").unwrap().to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(
            parse_cpu_list("0-1,4-5").unwrap().to_vec(),
            vec![0, 1, 4, 5]
        );
    }

    #[test]
    fn parse_with_whitespace() {
        assert_eq!(
            parse_cpu_list("  0 - 2 , 5 ").unwrap().to_vec(),
            vec![0, 1, 2, 5]
        );
    }

    #[test]
    fn parse_empty_is_empty_set() {
        assert!(parse_cpu_list("").unwrap().is_empty());
        assert!(parse_cpu_list("   ").unwrap().is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_cpu_list("a").is_err());
        assert!(parse_cpu_list("1,,2").is_err());
        assert!(parse_cpu_list("5-2").is_err());
        assert!(parse_cpu_list("0-99999").is_err());
        assert!(parse_cpu_list("-3").is_err());
    }

    #[test]
    fn format_collapses_ranges() {
        let set = CpuSet::from_cpus([0, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert_eq!(format_cpu_list(&set), "0-7");
        let set = CpuSet::from_cpus([0, 2, 4]).unwrap();
        assert_eq!(format_cpu_list(&set), "0,2,4");
        assert_eq!(format_cpu_list(&CpuSet::new()), "");
    }

    proptest! {
        /// Formatting then re-parsing any set of small CPU ids is the identity.
        #[test]
        fn prop_format_parse_roundtrip(cpus in proptest::collection::btree_set(0usize..256, 0..64)) {
            let set = CpuSet::from_cpus(cpus.iter().copied()).unwrap();
            let text = format_cpu_list(&set);
            let reparsed = parse_cpu_list(&text).unwrap();
            prop_assert_eq!(reparsed, set);
        }

        /// The formatted representation never contains adjacent CPUs written
        /// as separate items (ranges are always collapsed).
        #[test]
        fn prop_format_is_canonical(cpus in proptest::collection::btree_set(0usize..128, 0..32)) {
            let set = CpuSet::from_cpus(cpus.iter().copied()).unwrap();
            let text = format_cpu_list(&set);
            // Parse the items back and check no two consecutive singletons are adjacent.
            let items: Vec<&str> = text.split(',').filter(|s| !s.is_empty()).collect();
            for window in items.windows(2) {
                let end_of_first: usize = match window[0].split_once('-') {
                    Some((_, hi)) => hi.parse().unwrap(),
                    None => window[0].parse().unwrap(),
                };
                let start_of_second: usize = match window[1].split_once('-') {
                    Some((lo, _)) => lo.parse().unwrap(),
                    None => window[1].parse().unwrap(),
                };
                prop_assert!(start_of_second > end_of_first + 1,
                    "items {:?} and {:?} should have been merged", window[0], window[1]);
            }
        }
    }
}
