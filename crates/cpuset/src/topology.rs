//! Node hardware topology: sockets and cores.
//!
//! The paper's evaluation machine is MareNostrum III: each node has two Intel
//! Sandy Bridge sockets with eight cores each (16 CPUs per node, no SMT) and
//! 128 GB of memory. The SLURM `task/affinity` plugin described in Section 5
//! distributes CPUs "trying to keep applications in separate sockets in order
//! to improve data locality", so the distribution algorithms need to know which
//! CPUs share a socket. [`Topology`] captures exactly that information.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cpuset::CpuSet;

/// Errors produced when constructing or querying a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The topology would contain zero CPUs.
    EmptyTopology,
    /// The topology would exceed [`crate::MAX_CPUS`] CPUs.
    TooManyCpus {
        /// Requested number of CPUs.
        requested: usize,
    },
    /// A CPU id was queried that does not belong to the topology.
    UnknownCpu {
        /// The offending CPU id.
        cpu: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyTopology => write!(f, "topology has no CPUs"),
            TopologyError::TooManyCpus { requested } => {
                write!(f, "topology with {requested} CPUs exceeds capacity")
            }
            TopologyError::UnknownCpu { cpu } => write!(f, "cpu {cpu} not in topology"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A physical socket (package) within a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Socket {
    /// Socket index within the node, starting at 0.
    pub id: usize,
    /// CPUs belonging to this socket.
    pub cpus: CpuSet,
}

impl Socket {
    /// Number of CPUs in this socket.
    pub fn num_cpus(&self) -> usize {
        self.cpus.count()
    }
}

/// The CPU topology of a single compute node.
///
/// CPUs are numbered consecutively: socket 0 holds CPUs
/// `0..cores_per_socket`, socket 1 the next `cores_per_socket`, and so on —
/// the same compact numbering SLURM uses for its node abstraction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    sockets: Vec<Socket>,
    cores_per_socket: usize,
    memory_gib: usize,
}

impl Topology {
    /// Builds a homogeneous topology of `num_sockets` sockets with
    /// `cores_per_socket` cores each and `memory_gib` GiB of node memory.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyTopology`] when either dimension is zero
    /// and [`TopologyError::TooManyCpus`] when the total exceeds the `CpuSet`
    /// capacity.
    pub fn homogeneous(
        num_sockets: usize,
        cores_per_socket: usize,
        memory_gib: usize,
    ) -> Result<Self, TopologyError> {
        if num_sockets == 0 || cores_per_socket == 0 {
            return Err(TopologyError::EmptyTopology);
        }
        let total = num_sockets * cores_per_socket;
        if total > crate::MAX_CPUS {
            return Err(TopologyError::TooManyCpus { requested: total });
        }
        let mut sockets = Vec::with_capacity(num_sockets);
        for s in 0..num_sockets {
            let lo = s * cores_per_socket;
            let hi = lo + cores_per_socket;
            sockets.push(Socket {
                id: s,
                cpus: CpuSet::from_range(lo..hi).expect("range checked above"),
            });
        }
        Ok(Topology {
            sockets,
            cores_per_socket,
            memory_gib,
        })
    }

    /// The MareNostrum III node used in the paper's evaluation: two Sandy
    /// Bridge sockets of eight cores and 128 GB DDR3.
    pub fn marenostrum3_node() -> Self {
        Topology::homogeneous(2, 8, 128).expect("static MN3 topology is valid")
    }

    /// A small topology convenient for tests: one socket of four cores.
    pub fn small_node() -> Self {
        Topology::homogeneous(1, 4, 16).expect("static small topology is valid")
    }

    /// Total number of CPUs in the node.
    pub fn num_cpus(&self) -> usize {
        self.sockets.len() * self.cores_per_socket
    }

    /// Number of sockets in the node.
    pub fn num_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// Number of cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Node memory in GiB (informational; DROM never partitions memory).
    pub fn memory_gib(&self) -> usize {
        self.memory_gib
    }

    /// The sockets of the node.
    pub fn sockets(&self) -> &[Socket] {
        &self.sockets
    }

    /// A mask containing every CPU of the node.
    pub fn node_mask(&self) -> CpuSet {
        CpuSet::first_n(self.num_cpus())
    }

    /// Returns the socket index owning `cpu`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownCpu`] for CPUs outside the node.
    pub fn socket_of(&self, cpu: usize) -> Result<usize, TopologyError> {
        if cpu >= self.num_cpus() {
            return Err(TopologyError::UnknownCpu { cpu });
        }
        Ok(cpu / self.cores_per_socket)
    }

    /// The CPUs of socket `socket`, or an empty set for unknown sockets.
    pub fn socket_mask(&self, socket: usize) -> CpuSet {
        self.sockets
            .get(socket)
            .map(|s| s.cpus.clone())
            .unwrap_or_default()
    }

    /// Counts, per socket, how many CPUs of `mask` fall in that socket.
    ///
    /// Used by the distribution algorithms and by locality metrics ("how many
    /// sockets does this task span?").
    pub fn cpus_per_socket(&self, mask: &CpuSet) -> Vec<usize> {
        self.sockets
            .iter()
            .map(|s| s.cpus.intersection(mask).count())
            .collect()
    }

    /// Number of distinct sockets touched by `mask`.
    pub fn sockets_spanned(&self, mask: &CpuSet) -> usize {
        self.cpus_per_socket(mask)
            .into_iter()
            .filter(|&n| n > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mn3_topology_shape() {
        let topo = Topology::marenostrum3_node();
        assert_eq!(topo.num_cpus(), 16);
        assert_eq!(topo.num_sockets(), 2);
        assert_eq!(topo.cores_per_socket(), 8);
        assert_eq!(topo.memory_gib(), 128);
        assert_eq!(topo.node_mask().count(), 16);
    }

    #[test]
    fn socket_membership() {
        let topo = Topology::marenostrum3_node();
        assert_eq!(topo.socket_of(0).unwrap(), 0);
        assert_eq!(topo.socket_of(7).unwrap(), 0);
        assert_eq!(topo.socket_of(8).unwrap(), 1);
        assert_eq!(topo.socket_of(15).unwrap(), 1);
        assert!(topo.socket_of(16).is_err());
    }

    #[test]
    fn socket_masks_partition_node() {
        let topo = Topology::marenostrum3_node();
        let s0 = topo.socket_mask(0);
        let s1 = topo.socket_mask(1);
        assert_eq!(s0.count(), 8);
        assert_eq!(s1.count(), 8);
        assert!(s0.is_disjoint(&s1));
        assert_eq!(s0.union(&s1), topo.node_mask());
        assert!(topo.socket_mask(2).is_empty());
    }

    #[test]
    fn cpus_per_socket_counts() {
        let topo = Topology::marenostrum3_node();
        let mask = CpuSet::from_cpus([0, 1, 2, 8, 9]).unwrap();
        assert_eq!(topo.cpus_per_socket(&mask), vec![3, 2]);
        assert_eq!(topo.sockets_spanned(&mask), 2);
        let one_socket = CpuSet::from_range(0..4).unwrap();
        assert_eq!(topo.sockets_spanned(&one_socket), 1);
        assert_eq!(topo.sockets_spanned(&CpuSet::new()), 0);
    }

    #[test]
    fn invalid_topologies_rejected() {
        assert_eq!(
            Topology::homogeneous(0, 8, 1),
            Err(TopologyError::EmptyTopology)
        );
        assert_eq!(
            Topology::homogeneous(2, 0, 1),
            Err(TopologyError::EmptyTopology)
        );
        assert!(matches!(
            Topology::homogeneous(64, 64, 1),
            Err(TopologyError::TooManyCpus { .. })
        ));
    }

    #[test]
    fn homogeneous_numbering_is_contiguous() {
        let topo = Topology::homogeneous(4, 4, 64).unwrap();
        assert_eq!(topo.num_cpus(), 16);
        assert_eq!(topo.socket_mask(2).to_vec(), vec![8, 9, 10, 11]);
        for cpu in 0..16 {
            assert_eq!(topo.socket_of(cpu).unwrap(), cpu / 4);
        }
    }
}
