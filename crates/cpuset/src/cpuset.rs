//! A fixed-capacity CPU bitmask, the analogue of `cpu_set_t`.
//!
//! The original DROM interface passes process masks around as opaque
//! `dlb_cpu_set_t` values that are cast back to the glibc `cpu_set_t` bitset.
//! [`CpuSet`] reproduces that data structure in safe Rust: a bitset over CPU
//! identifiers `0..MAX_CPUS`, with the usual set algebra (union, intersection,
//! difference), iteration in ascending CPU order and a compact textual form
//! (`"0-3,8,10-11"`).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of CPUs representable in a [`CpuSet`].
///
/// The glibc default for `cpu_set_t` is 1024 bits; we keep the same capacity so
/// that every mask the original implementation could express is expressible
/// here.
pub const MAX_CPUS: usize = 1024;

const WORD_BITS: usize = 64;
const NUM_WORDS: usize = MAX_CPUS / WORD_BITS;

/// Errors produced by [`CpuSet`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuSetError {
    /// A CPU identifier was out of the representable range `0..MAX_CPUS`.
    CpuOutOfRange {
        /// The offending CPU id.
        cpu: usize,
    },
    /// A textual mask could not be parsed.
    Parse {
        /// Human readable description of the parse failure.
        message: String,
    },
}

impl fmt::Display for CpuSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuSetError::CpuOutOfRange { cpu } => {
                write!(f, "cpu {cpu} out of range (max {MAX_CPUS})")
            }
            CpuSetError::Parse { message } => write!(f, "cpu list parse error: {message}"),
        }
    }
}

impl std::error::Error for CpuSetError {}

/// A set of CPU identifiers, stored as a fixed-size bitmask.
///
/// `CpuSet` is `Copy`-free but cheap to clone (128 bytes). All operations are
/// O(`MAX_CPUS`/64) at worst; membership tests are O(1).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuSet {
    words: [u64; NUM_WORDS],
}

impl Default for CpuSet {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuSet {
    /// Creates an empty CPU set.
    pub fn new() -> Self {
        CpuSet {
            words: [0; NUM_WORDS],
        }
    }

    /// Creates a set containing exactly the CPUs `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_CPUS`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_CPUS, "first_n({n}) exceeds MAX_CPUS ({MAX_CPUS})");
        let mut set = CpuSet::new();
        for cpu in 0..n {
            set.words[cpu / WORD_BITS] |= 1u64 << (cpu % WORD_BITS);
        }
        set
    }

    /// Creates a set from an inclusive-exclusive range of CPU ids.
    ///
    /// # Errors
    ///
    /// Returns [`CpuSetError::CpuOutOfRange`] if the range exceeds `MAX_CPUS`.
    pub fn from_range(range: std::ops::Range<usize>) -> Result<Self, CpuSetError> {
        if range.end > MAX_CPUS {
            return Err(CpuSetError::CpuOutOfRange { cpu: range.end - 1 });
        }
        let mut set = CpuSet::new();
        for cpu in range {
            set.words[cpu / WORD_BITS] |= 1u64 << (cpu % WORD_BITS);
        }
        Ok(set)
    }

    /// Creates a set from an iterator of CPU ids.
    ///
    /// # Errors
    ///
    /// Returns [`CpuSetError::CpuOutOfRange`] on the first out-of-range id.
    pub fn from_cpus<I: IntoIterator<Item = usize>>(cpus: I) -> Result<Self, CpuSetError> {
        let mut set = CpuSet::new();
        for cpu in cpus {
            set.set(cpu)?;
        }
        Ok(set)
    }

    /// Adds `cpu` to the set.
    ///
    /// # Errors
    ///
    /// Returns [`CpuSetError::CpuOutOfRange`] if `cpu >= MAX_CPUS`.
    pub fn set(&mut self, cpu: usize) -> Result<(), CpuSetError> {
        if cpu >= MAX_CPUS {
            return Err(CpuSetError::CpuOutOfRange { cpu });
        }
        self.words[cpu / WORD_BITS] |= 1u64 << (cpu % WORD_BITS);
        Ok(())
    }

    /// Removes `cpu` from the set.
    ///
    /// # Errors
    ///
    /// Returns [`CpuSetError::CpuOutOfRange`] if `cpu >= MAX_CPUS`.
    pub fn clear(&mut self, cpu: usize) -> Result<(), CpuSetError> {
        if cpu >= MAX_CPUS {
            return Err(CpuSetError::CpuOutOfRange { cpu });
        }
        self.words[cpu / WORD_BITS] &= !(1u64 << (cpu % WORD_BITS));
        Ok(())
    }

    /// Removes every CPU from the set.
    pub fn clear_all(&mut self) {
        self.words = [0; NUM_WORDS];
    }

    /// Returns `true` if `cpu` belongs to the set.
    ///
    /// Out-of-range CPUs are reported as not present.
    pub fn is_set(&self, cpu: usize) -> bool {
        if cpu >= MAX_CPUS {
            return false;
        }
        self.words[cpu / WORD_BITS] & (1u64 << (cpu % WORD_BITS)) != 0
    }

    /// Number of CPUs in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no CPUs.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Lowest CPU id in the set, if any.
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Highest CPU id in the set, if any.
    pub fn last(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(i * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Returns the `n`-th lowest CPU in the set (0-based), if present.
    pub fn nth(&self, n: usize) -> Option<usize> {
        self.iter().nth(n)
    }

    /// Set union (`self | other`).
    pub fn union(&self, other: &CpuSet) -> CpuSet {
        let mut out = CpuSet::new();
        for i in 0..NUM_WORDS {
            out.words[i] = self.words[i] | other.words[i];
        }
        out
    }

    /// Set intersection (`self & other`).
    pub fn intersection(&self, other: &CpuSet) -> CpuSet {
        let mut out = CpuSet::new();
        for i in 0..NUM_WORDS {
            out.words[i] = self.words[i] & other.words[i];
        }
        out
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: &CpuSet) -> CpuSet {
        let mut out = CpuSet::new();
        for i in 0..NUM_WORDS {
            out.words[i] = self.words[i] & !other.words[i];
        }
        out
    }

    /// Symmetric difference (`self ^ other`).
    pub fn symmetric_difference(&self, other: &CpuSet) -> CpuSet {
        let mut out = CpuSet::new();
        for i in 0..NUM_WORDS {
            out.words[i] = self.words[i] ^ other.words[i];
        }
        out
    }

    /// Returns `true` if every CPU in `self` also belongs to `other`.
    pub fn is_subset_of(&self, other: &CpuSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the two sets have no CPU in common.
    pub fn is_disjoint(&self, other: &CpuSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Iterates over the CPU ids in ascending order.
    // PANIC: the word array has a fixed nonzero length, so words[0] exists.
    pub fn iter(&self) -> CpuSetIter<'_> {
        CpuSetIter {
            set: self,
            word: 0,
            bits: self.words[0],
        }
    }

    /// Collects the CPU ids into a vector, in ascending order.
    // ALLOC(pass): snapshots the mask into a vector for plan output.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Keeps only the lowest `n` CPUs of the set, dropping the rest.
    ///
    /// This mirrors how the task/affinity plugin shrinks a running job's mask:
    /// the kept CPUs are a prefix of the previous mask so the surviving threads
    /// do not migrate.
    pub fn truncated(&self, n: usize) -> CpuSet {
        let mut out = CpuSet::new();
        for cpu in self.iter().take(n) {
            // cpu < MAX_CPUS because it came out of a valid set.
            out.words[cpu / WORD_BITS] |= 1u64 << (cpu % WORD_BITS);
        }
        out
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuSet[{}]", crate::parse::format_cpu_list(self))
    }
}

impl fmt::Display for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::parse::format_cpu_list(self))
    }
}

impl FromIterator<usize> for CpuSet {
    /// Builds a set from CPU ids, silently ignoring out-of-range values.
    ///
    /// Prefer [`CpuSet::from_cpus`] when out-of-range ids should be an error.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = CpuSet::new();
        for cpu in iter {
            if cpu < MAX_CPUS {
                set.words[cpu / WORD_BITS] |= 1u64 << (cpu % WORD_BITS);
            }
        }
        set
    }
}

/// Iterator over the CPUs of a [`CpuSet`], in ascending order.
pub struct CpuSetIter<'a> {
    set: &'a CpuSet,
    word: usize,
    bits: u64,
}

impl<'a> Iterator for CpuSetIter<'a> {
    type Item = usize;

    // PANIC: `word` stays below NUM_WORDS by the loop guard above the access.
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * WORD_BITS + bit);
            }
            self.word += 1;
            if self.word >= NUM_WORDS {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a CpuSet {
    type Item = usize;
    type IntoIter = CpuSetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_set_is_empty() {
        let set = CpuSet::new();
        assert!(set.is_empty());
        assert_eq!(set.count(), 0);
        assert_eq!(set.first(), None);
        assert_eq!(set.last(), None);
    }

    #[test]
    fn set_and_test_single_cpu() {
        let mut set = CpuSet::new();
        set.set(5).unwrap();
        assert!(set.is_set(5));
        assert!(!set.is_set(4));
        assert_eq!(set.count(), 1);
        assert_eq!(set.first(), Some(5));
        assert_eq!(set.last(), Some(5));
    }

    #[test]
    fn clear_removes_cpu() {
        let mut set = CpuSet::first_n(8);
        set.clear(3).unwrap();
        assert!(!set.is_set(3));
        assert_eq!(set.count(), 7);
    }

    #[test]
    fn out_of_range_set_is_error() {
        let mut set = CpuSet::new();
        assert_eq!(
            set.set(MAX_CPUS),
            Err(CpuSetError::CpuOutOfRange { cpu: MAX_CPUS })
        );
        assert_eq!(
            set.clear(MAX_CPUS + 10),
            Err(CpuSetError::CpuOutOfRange { cpu: MAX_CPUS + 10 })
        );
        assert!(!set.is_set(MAX_CPUS + 1));
    }

    #[test]
    fn first_n_builds_prefix() {
        let set = CpuSet::first_n(16);
        assert_eq!(set.count(), 16);
        assert_eq!(set.first(), Some(0));
        assert_eq!(set.last(), Some(15));
        assert!(set.is_set(15));
        assert!(!set.is_set(16));
    }

    #[test]
    fn from_range_matches_manual() {
        let set = CpuSet::from_range(8..16).unwrap();
        assert_eq!(set.count(), 8);
        assert_eq!(set.first(), Some(8));
        assert_eq!(set.last(), Some(15));
        assert!(CpuSet::from_range(0..MAX_CPUS + 1).is_err());
    }

    #[test]
    fn union_intersection_difference() {
        let a = CpuSet::from_range(0..8).unwrap();
        let b = CpuSet::from_range(4..12).unwrap();
        assert_eq!(a.union(&b).count(), 12);
        assert_eq!(a.intersection(&b).to_vec(), vec![4, 5, 6, 7]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(
            a.symmetric_difference(&b).to_vec(),
            vec![0, 1, 2, 3, 8, 9, 10, 11]
        );
    }

    #[test]
    fn subset_and_disjoint() {
        let a = CpuSet::from_range(0..4).unwrap();
        let b = CpuSet::from_range(0..8).unwrap();
        let c = CpuSet::from_range(8..16).unwrap();
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(CpuSet::new().is_subset_of(&a));
        assert!(CpuSet::new().is_disjoint(&a));
    }

    #[test]
    fn iteration_is_ascending() {
        let set = CpuSet::from_cpus([63, 0, 64, 127, 5]).unwrap();
        assert_eq!(set.to_vec(), vec![0, 5, 63, 64, 127]);
    }

    #[test]
    fn nth_cpu() {
        let set = CpuSet::from_cpus([2, 4, 8, 16]).unwrap();
        assert_eq!(set.nth(0), Some(2));
        assert_eq!(set.nth(2), Some(8));
        assert_eq!(set.nth(4), None);
    }

    #[test]
    fn truncated_keeps_lowest_prefix() {
        let set = CpuSet::from_cpus([1, 3, 5, 7, 9]).unwrap();
        let t = set.truncated(3);
        assert_eq!(t.to_vec(), vec![1, 3, 5]);
        // Truncating beyond the size keeps everything.
        assert_eq!(set.truncated(100), set);
        // Truncating to zero empties the set.
        assert!(set.truncated(0).is_empty());
    }

    #[test]
    fn from_iter_ignores_out_of_range() {
        let set: CpuSet = [1usize, 2, MAX_CPUS + 5].into_iter().collect();
        assert_eq!(set.to_vec(), vec![1, 2]);
    }

    #[test]
    fn display_roundtrip() {
        let set = CpuSet::from_cpus([0, 1, 2, 3, 8, 10, 11]).unwrap();
        assert_eq!(set.to_string(), "0-3,8,10-11");
    }

    #[test]
    fn word_boundary_cpus() {
        // CPUs around the 64-bit word boundary must behave like any other.
        let set = CpuSet::from_cpus([62, 63, 64, 65]).unwrap();
        assert_eq!(set.count(), 4);
        assert_eq!(set.to_vec(), vec![62, 63, 64, 65]);
        let hi = CpuSet::from_cpus([MAX_CPUS - 1]).unwrap();
        assert_eq!(hi.last(), Some(MAX_CPUS - 1));
    }
}
