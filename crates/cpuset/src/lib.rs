//! CPU sets, hardware topology and mask-distribution algorithms.
//!
//! This crate is the lowest layer of the DROM reproduction. It provides the
//! analogue of the GNU C library `cpu_set_t` used by the original DLB/DROM
//! implementation ([`CpuSet`]), a model of the node hardware the paper runs on
//! ([`Topology`], including a MareNostrum III preset of two 8-core sockets per
//! node), and the CPU-distribution algorithms that the paper's SLURM
//! `task/affinity` plugin uses to place co-allocated jobs inside a node
//! ([`distribution`]).
//!
//! # Example
//!
//! ```
//! use drom_cpuset::{CpuSet, Topology};
//! use drom_cpuset::distribution::{equipartition, DistributionPolicy};
//!
//! // A MareNostrum III node: 2 sockets x 8 cores.
//! let topo = Topology::marenostrum3_node();
//! assert_eq!(topo.num_cpus(), 16);
//!
//! // Partition the node between two tasks, socket-aware.
//! let parts = equipartition(&topo.node_mask(), 2, &topo, DistributionPolicy::SocketAware);
//! assert_eq!(parts.len(), 2);
//! assert_eq!(parts[0].count(), 8);
//! assert_eq!(parts[1].count(), 8);
//! // The two halves are disjoint and cover the node.
//! assert!(parts[0].intersection(&parts[1]).is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod cpuset;
pub mod distribution;
pub mod parse;
pub mod topology;

pub use cpuset::{CpuSet, CpuSetError, MAX_CPUS};
pub use distribution::{DistributionPlan, DistributionPolicy};
pub use parse::{format_cpu_list, parse_cpu_list};
pub use topology::{Socket, Topology, TopologyError};
