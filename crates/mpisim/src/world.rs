//! The MPI world: spawning ranks and mapping them to nodes.

use std::sync::Arc;

use crate::comm::{MpiComm, WorldShared};

/// Describes a fixed-size MPI world and runs rank bodies on it.
///
/// The number of ranks is immutable, mirroring the paper's explicit choice not
/// to implement process-level malleability.
#[derive(Debug, Clone)]
pub struct MpiWorld {
    size: usize,
    rank_nodes: Vec<String>,
}

impl MpiWorld {
    /// Creates a world of `size` ranks, all mapped to `"node0"`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "an MPI world needs at least one rank");
        MpiWorld {
            size,
            rank_nodes: vec!["node0".to_string(); size],
        }
    }

    /// Maps ranks to nodes round-robin over `nodes` — the usual block/cyclic
    /// `srun` distribution is not needed by the evaluation, which always
    /// distributes ranks evenly across its two nodes.
    ///
    /// With 4 ranks and nodes `["node0", "node1"]`, ranks 0 and 1 land on
    /// `node0`, ranks 2 and 3 on `node1` (block distribution).
    pub fn with_nodes(mut self, nodes: &[&str]) -> Self {
        assert!(!nodes.is_empty(), "node list must not be empty");
        let per_node = self.size.div_ceil(nodes.len());
        self.rank_nodes = (0..self.size)
            .map(|rank| nodes[(rank / per_node).min(nodes.len() - 1)].to_string())
            .collect();
        self
    }

    /// Explicit per-rank node mapping.
    ///
    /// # Panics
    ///
    /// Panics if the mapping length differs from the world size.
    pub fn with_rank_nodes(mut self, mapping: Vec<String>) -> Self {
        assert_eq!(mapping.len(), self.size, "one node name per rank required");
        self.rank_nodes = mapping;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The node each rank is mapped to.
    pub fn rank_nodes(&self) -> &[String] {
        &self.rank_nodes
    }

    /// Runs `body` once per rank, each on its own OS thread, and returns the
    /// per-rank results indexed by rank.
    ///
    /// The closure may borrow from the caller's stack (the world uses scoped
    /// threads). A panic in any rank is propagated to the caller with its
    /// original payload.
    pub fn run<T, F>(&self, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&MpiComm) -> T + Send + Sync,
    {
        let shared = WorldShared::new(self.size);
        let body = &body;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.size);
            for rank in 0..self.size {
                let shared = Arc::clone(&shared);
                let node = self.rank_nodes[rank].clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("mpi-rank-{rank}"))
                        .spawn_scoped(scope, move || {
                            let comm = MpiComm::new(rank, node, shared);
                            body(&comm)
                        })
                        .expect("spawning an MPI rank thread"),
                );
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(value) => value,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids_and_sizes() {
        let world = MpiWorld::new(3);
        assert_eq!(world.size(), 3);
        let ranks = world.run(|comm| {
            assert_eq!(comm.size(), 3);
            comm.rank()
        });
        assert_eq!(ranks, vec![0, 1, 2]);
    }

    #[test]
    fn block_distribution_over_nodes() {
        let world = MpiWorld::new(4).with_nodes(&["node0", "node1"]);
        assert_eq!(world.rank_nodes(), &["node0", "node0", "node1", "node1"]);
        let nodes = world.run(|comm| comm.node().to_string());
        assert_eq!(nodes, vec!["node0", "node0", "node1", "node1"]);
    }

    #[test]
    fn uneven_distribution_assigns_every_rank() {
        let world = MpiWorld::new(5).with_nodes(&["a", "b"]);
        assert_eq!(world.rank_nodes(), &["a", "a", "a", "b", "b"]);
    }

    #[test]
    fn explicit_mapping() {
        let world = MpiWorld::new(2).with_rank_nodes(vec!["x".to_string(), "y".to_string()]);
        assert_eq!(world.rank_nodes(), &["x", "y"]);
    }

    #[test]
    fn run_can_borrow_caller_data() {
        let data = [10u64, 20, 30, 40];
        let world = MpiWorld::new(4);
        let out = world.run(|comm| data[comm.rank()] * 2);
        assert_eq!(out, vec![20, 40, 60, 80]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = MpiWorld::new(0);
    }

    #[test]
    #[should_panic(expected = "one node name per rank")]
    fn wrong_mapping_length_panics() {
        let _ = MpiWorld::new(3).with_rank_nodes(vec!["a".to_string()]);
    }

    #[test]
    #[should_panic(expected = "rank failure")]
    fn rank_panics_propagate() {
        MpiWorld::new(2).run(|comm| {
            if comm.rank() == 1 {
                panic!("rank failure");
            }
        });
    }
}
