//! Per-rank communicator: typed point-to-point messages and collectives.
//!
//! All user-visible operations run the rank's registered [`PmpiHook`]s before
//! and after the call; the point-to-point traffic that *implements* the
//! collectives does not, so a profiler sees one event per MPI call, exactly
//! like the real PMPI interface.
//!
//! Collectives must be invoked by every rank of the world in the same order
//! (the usual MPI requirement); user message tags must be non-negative —
//! negative tags are reserved for the collective implementation.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::pmpi::{MpiCall, PmpiHook};

/// Tag used by the internal gather phase of collectives.
const TAG_COLLECT: i32 = -1;
/// Tag used by the internal release/broadcast phase of collectives.
const TAG_RELEASE: i32 = -2;

struct Envelope {
    src: usize,
    tag: i32,
    payload: Box<dyn Any + Send>,
}

#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    available: Condvar,
}

/// State shared by every rank of a world.
pub(crate) struct WorldShared {
    size: usize,
    mailboxes: Vec<Mailbox>,
}

impl WorldShared {
    pub(crate) fn new(size: usize) -> Arc<Self> {
        Arc::new(WorldShared {
            size,
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
        })
    }
}

/// The communicator handed to each rank's body.
pub struct MpiComm {
    rank: usize,
    node: String,
    shared: Arc<WorldShared>,
    hooks: Mutex<Vec<Arc<dyn PmpiHook>>>,
}

impl MpiComm {
    pub(crate) fn new(rank: usize, node: String, shared: Arc<WorldShared>) -> Self {
        MpiComm {
            rank,
            node,
            shared,
            hooks: Mutex::new(Vec::new()),
        }
    }

    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// The name of the node this rank is mapped to (set by the world builder;
    /// defaults to `"node0"`).
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Installs a PMPI hook on this rank (the preloaded-profiler analogue).
    pub fn add_hook(&self, hook: Arc<dyn PmpiHook>) {
        self.hooks.lock().push(hook);
    }

    /// Removes every installed hook.
    pub fn clear_hooks(&self) {
        self.hooks.lock().clear();
    }

    fn hooks_before(&self, call: MpiCall) {
        for hook in self.hooks.lock().iter() {
            hook.before(self.rank, call);
        }
    }

    fn hooks_after(&self, call: MpiCall) {
        for hook in self.hooks.lock().iter() {
            hook.after(self.rank, call);
        }
    }

    /// Runs `body` wrapped in the hooks of `call`; used for Init/Finalize
    /// notifications and internally by every public operation.
    pub fn intercepted<R>(&self, call: MpiCall, body: impl FnOnce() -> R) -> R {
        self.hooks_before(call);
        let result = body();
        self.hooks_after(call);
        result
    }

    // ------------------------------------------------------------------
    // Raw point-to-point (no hooks): the transport under the public API.
    // ------------------------------------------------------------------

    fn send_raw<T: Send + 'static>(&self, dest: usize, tag: i32, value: T) {
        assert!(
            dest < self.shared.size,
            "destination rank {dest} out of range"
        );
        let mailbox = &self.shared.mailboxes[dest];
        mailbox.queue.lock().push_back(Envelope {
            src: self.rank,
            tag,
            payload: Box::new(value),
        });
        mailbox.available.notify_all();
    }

    fn recv_raw<T: Send + 'static>(&self, src: usize, tag: i32) -> T {
        assert!(src < self.shared.size, "source rank {src} out of range");
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut queue = mailbox.queue.lock();
        loop {
            if let Some(pos) = queue.iter().position(|e| e.src == src && e.tag == tag) {
                let envelope = queue.remove(pos).expect("position found above");
                return *envelope.payload.downcast::<T>().unwrap_or_else(|_| {
                    panic!("type mismatch receiving message from rank {src} tag {tag}")
                });
            }
            mailbox.available.wait(&mut queue);
        }
    }

    // ------------------------------------------------------------------
    // Public point-to-point
    // ------------------------------------------------------------------

    /// Sends `value` to `dest` with a user `tag` (must be non-negative).
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: i32, value: T) {
        assert!(tag >= 0, "negative tags are reserved for collectives");
        self.intercepted(MpiCall::Send, || self.send_raw(dest, tag, value));
    }

    /// Receives a message of type `T` from `src` with the given `tag`,
    /// blocking until it arrives.
    ///
    /// # Panics
    ///
    /// Panics if the matching message has a different payload type.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: i32) -> T {
        assert!(tag >= 0, "negative tags are reserved for collectives");
        self.intercepted(MpiCall::Recv, || self.recv_raw(src, tag))
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Barrier across all ranks.
    pub fn barrier(&self) {
        self.intercepted(MpiCall::Barrier, || {
            self.collect_release(|| (), |_| ());
        });
    }

    /// Broadcast from `root`: the root passes `Some(value)`, every rank
    /// (including the root) returns the value.
    ///
    /// # Panics
    ///
    /// Panics if the root passes `None`.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        self.intercepted(MpiCall::Bcast, || {
            if self.rank == root {
                let value = value.expect("the broadcast root must provide a value");
                for dest in 0..self.shared.size {
                    if dest != root {
                        self.send_raw(dest, TAG_RELEASE, value.clone());
                    }
                }
                value
            } else {
                self.recv_raw::<T>(root, TAG_RELEASE)
            }
        })
    }

    /// Gather to `root`: returns `Some(values)` (indexed by rank) on the root
    /// and `None` elsewhere.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        self.intercepted(MpiCall::Gather, || {
            if self.rank == root {
                let mut slots: Vec<Option<T>> = (0..self.shared.size).map(|_| None).collect();
                slots[root] = Some(value);
                for (src, slot) in slots.iter_mut().enumerate() {
                    if src != root {
                        *slot = Some(self.recv_raw::<T>(src, TAG_COLLECT));
                    }
                }
                Some(
                    slots
                        .into_iter()
                        .map(|v| v.expect("all ranks gathered"))
                        .collect(),
                )
            } else {
                self.send_raw(root, TAG_COLLECT, value);
                None
            }
        })
    }

    /// All-reduce with an arbitrary associative operation: every rank returns
    /// the reduction of every rank's `value`.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.intercepted(MpiCall::Allreduce, || {
            self.collect_release(
                || value.clone(),
                |values| {
                    let mut iter = values.into_iter();
                    let first = iter.next().expect("world has at least one rank");
                    iter.fold(first, &op)
                },
            )
        })
    }

    /// All-reduce summation of `f64` contributions.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// All-reduce maximum of `f64` contributions.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        self.allreduce(value, f64::max)
    }

    /// Reduce to `root` (summation): `Some(total)` on root, `None` elsewhere.
    pub fn reduce_sum(&self, root: usize, value: f64) -> Option<f64> {
        self.intercepted(MpiCall::Allreduce, || {
            if self.rank == root {
                let mut total = value;
                for src in 0..self.shared.size {
                    if src != root {
                        total += self.recv_raw::<f64>(src, TAG_COLLECT);
                    }
                }
                Some(total)
            } else {
                self.send_raw(root, TAG_COLLECT, value);
                None
            }
        })
    }

    /// Generic collect-to-zero + release pattern used by barrier and
    /// allreduce: every rank contributes `contribution()`, rank 0 combines the
    /// ordered contributions with `combine` and the result is released to all.
    fn collect_release<T, C, F>(&self, contribution: C, combine: F) -> T
    where
        T: Clone + Send + 'static,
        C: FnOnce() -> T,
        F: FnOnce(Vec<T>) -> T,
    {
        if self.rank == 0 {
            let mut values: Vec<T> = Vec::with_capacity(self.shared.size);
            values.push(contribution());
            for src in 1..self.shared.size {
                values.push(self.recv_raw::<T>(src, TAG_COLLECT));
            }
            let result = combine(values);
            for dest in 1..self.shared.size {
                self.send_raw(dest, TAG_RELEASE, result.clone());
            }
            result
        } else {
            self.send_raw(0, TAG_COLLECT, contribution());
            self.recv_raw::<T>(0, TAG_RELEASE)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmpi::PmpiRecorder;
    use crate::world::MpiWorld;

    #[test]
    fn point_to_point_roundtrip() {
        let results = MpiWorld::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                0.0
            } else {
                let data: Vec<f64> = comm.recv(0, 7);
                data.iter().sum()
            }
        });
        assert_eq!(results, vec![0.0, 6.0]);
    }

    #[test]
    fn messages_match_on_tag() {
        let results = MpiWorld::new(2).run(|comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; the receiver asks for tag 1 first.
                comm.send(1, 2, 20u64);
                comm.send(1, 1, 10u64);
                0
            } else {
                let first: u64 = comm.recv(0, 1);
                let second: u64 = comm.recv(0, 2);
                assert_eq!((first, second), (10, 20));
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn barrier_and_collectives() {
        let results = MpiWorld::new(4).run(|comm| {
            comm.barrier();
            let b = comm.bcast(2, if comm.rank() == 2 { Some(41u32) } else { None });
            assert_eq!(b, 41);
            let gathered = comm.gather(0, comm.rank() as u32);
            if comm.rank() == 0 {
                assert_eq!(gathered.unwrap(), vec![0, 1, 2, 3]);
            } else {
                assert!(gathered.is_none());
            }
            let total = comm.allreduce_sum(1.0);
            assert_eq!(total, 4.0);
            let max = comm.allreduce_max(comm.rank() as f64);
            assert_eq!(max, 3.0);
            let reduced = comm.reduce_sum(1, comm.rank() as f64);
            if comm.rank() == 1 {
                assert_eq!(reduced, Some(6.0));
            }
            comm.allreduce(comm.rank(), usize::max)
        });
        assert_eq!(results, vec![3, 3, 3, 3]);
    }

    #[test]
    fn hooks_fire_once_per_call() {
        let recorders: Vec<_> = MpiWorld::new(2).run(|comm| {
            let recorder = PmpiRecorder::new();
            comm.add_hook(recorder.clone());
            comm.barrier();
            comm.barrier();
            if comm.rank() == 0 {
                comm.send(1, 0, 1u8);
            } else {
                let _: u8 = comm.recv(0, 0);
            }
            comm.clear_hooks();
            comm.barrier(); // not recorded
            recorder
        });
        assert_eq!(recorders[0].count(MpiCall::Barrier), 2);
        assert_eq!(recorders[1].count(MpiCall::Barrier), 2);
        assert_eq!(recorders[0].count(MpiCall::Send), 1);
        assert_eq!(recorders[1].count(MpiCall::Recv), 1);
        assert_eq!(recorders[0].count(MpiCall::Recv), 0);
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        let results = MpiWorld::new(1).run(|comm| {
            comm.barrier();
            assert_eq!(comm.size(), 1);
            assert_eq!(comm.bcast(0, Some(5u8)), 5);
            assert_eq!(comm.gather(0, 9u8), Some(vec![9]));
            comm.allreduce_sum(2.5)
        });
        assert_eq!(results, vec![2.5]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn recv_wrong_type_panics() {
        MpiWorld::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1u8);
            } else {
                let _: u64 = comm.recv(0, 0);
            }
        });
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn negative_user_tags_rejected() {
        MpiWorld::new(1).run(|comm| comm.send(0, -5, 1u8));
    }
}
