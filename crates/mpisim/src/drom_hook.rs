//! The DROM ↔ MPI integration: a PMPI hook that polls DROM around MPI calls.
//!
//! "For DROM purposes, MPI interception is only used to poll DLB and check if
//! there are some pending actions to be taken" (Section 4.3). The hook
//! therefore does two things, both optional and both per process:
//!
//! * invoke a *poller* before and after every intercepted call — typically
//!   `DromOmptTool::poll_and_apply` when the process also runs the
//!   OpenMP-like runtime, or `DromProcess::poll_drom` for a plain MPI process;
//! * drive LeWI around blocking calls: lend CPUs on entry, reclaim on exit,
//!   which is the original purpose DLB's MPI interception was built for.
//!
//! Polling before *and* after every MPI call is affordable because the
//! `DromProcess::poll_drom` no-update path is lock-free (one atomic load of
//! the process's slot stamp), so even communication-heavy ranks never
//! serialize against node administrators.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use drom_core::{DromProcess, Lewi};

use crate::pmpi::{MpiCall, PmpiHook};

/// PMPI hook implementing the DROM (and optionally LeWI) behaviour.
pub struct DromPmpiHook {
    poller: Box<dyn Fn() + Send + Sync>,
    lewi: Option<Arc<Lewi>>,
    polls: AtomicU64,
}

impl DromPmpiHook {
    /// Creates a hook that invokes `poller` before and after every MPI call.
    ///
    /// The poller is whatever applies pending DROM actions for this process —
    /// usually a clone of the OMPT tool's `poll_and_apply`.
    pub fn new<F>(poller: F) -> Arc<Self>
    where
        F: Fn() + Send + Sync + 'static,
    {
        Arc::new(DromPmpiHook {
            poller: Box::new(poller),
            lewi: None,
            polls: AtomicU64::new(0),
        })
    }

    /// Creates a hook for a plain MPI process (no shared-memory runtime): the
    /// poller simply consumes pending masks so the process's view stays
    /// current.
    pub fn for_process(process: Arc<DromProcess>) -> Arc<Self> {
        Self::new(move || {
            let _ = process.poll_drom();
        })
    }

    /// Adds LeWI behaviour: CPUs are lent on entry to blocking calls and
    /// reclaimed on exit.
    pub fn with_lewi(self: Arc<Self>, lewi: Arc<Lewi>) -> Arc<Self> {
        // Arc::try_unwrap would fail if the hook is already shared; build a new
        // value instead, reusing the poll counter.
        Arc::new(DromPmpiHook {
            poller: Box::new({
                let inner = Arc::clone(&self);
                move || (inner.poller)()
            }),
            lewi: Some(lewi),
            // SAFETY(ordering): statistics counter carried over; approximate
            // totals suffice and nothing orders against them.
            polls: AtomicU64::new(self.polls.load(Ordering::Relaxed)),
        })
    }

    /// Number of polls performed through this hook.
    pub fn polls(&self) -> u64 {
        // SAFETY(ordering): statistics read; approximate totals suffice.
        self.polls.load(Ordering::Relaxed)
    }
}

impl PmpiHook for DromPmpiHook {
    fn before(&self, _rank: usize, call: MpiCall) {
        if call.is_blocking() {
            if let Some(lewi) = &self.lewi {
                let _ = lewi.enter_blocking(1);
            }
        }
        (self.poller)();
        // SAFETY(ordering): statistics counter; nothing synchronizes on it.
        self.polls.fetch_add(1, Ordering::Relaxed);
    }

    fn after(&self, _rank: usize, call: MpiCall) {
        if call.is_blocking() {
            if let Some(lewi) = &self.lewi {
                let _ = lewi.exit_blocking();
            }
        }
        (self.poller)();
        // SAFETY(ordering): statistics counter; nothing synchronizes on it.
        self.polls.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::MpiWorld;
    use drom_core::{DromAdmin, DromFlags};
    use drom_cpuset::CpuSet;
    use drom_shmem::{NodeShmem, ShmemManager};

    #[test]
    fn polls_happen_around_every_call() {
        let shmem = Arc::new(NodeShmem::new("node0", 16));
        let shmem_for_ranks = Arc::clone(&shmem);
        let hooks = MpiWorld::new(2).run(move |comm| {
            let pid = 100 + comm.rank() as u32;
            let mask = CpuSet::from_range(comm.rank() * 8..(comm.rank() + 1) * 8).unwrap();
            let process =
                Arc::new(DromProcess::init(pid, mask, Arc::clone(&shmem_for_ranks)).unwrap());
            let hook = DromPmpiHook::for_process(Arc::clone(&process));
            comm.add_hook(hook.clone());
            comm.barrier();
            comm.barrier();
            (hook, process)
        });
        for (hook, _process) in &hooks {
            // before+after for two barriers = 4 polls.
            assert_eq!(hook.polls(), 4);
        }
    }

    #[test]
    fn pending_mask_is_consumed_at_an_mpi_call() {
        let manager = ShmemManager::new();
        let shmem = manager.get_or_create("node0", 16);
        let running =
            Arc::new(DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap());
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        admin
            .set_process_mask(1, &CpuSet::from_range(0..4).unwrap(), DromFlags::default())
            .unwrap();

        // A single-rank world whose hook polls on behalf of `running`.
        MpiWorld::new(1).run(|comm| {
            comm.add_hook(DromPmpiHook::for_process(Arc::clone(&running)));
            comm.barrier();
        });
        assert_eq!(
            running.num_cpus(),
            4,
            "the MPI interception applied the new mask"
        );
    }

    #[test]
    fn lewi_lends_and_reclaims_around_blocking_calls() {
        let shmem = Arc::new(NodeShmem::new("node0", 16));
        let a = Arc::new(
            DromProcess::init(1, CpuSet::from_range(0..8).unwrap(), Arc::clone(&shmem)).unwrap(),
        );
        let lewi = Arc::new(Lewi::new(Arc::clone(&a)));
        let hook = DromPmpiHook::for_process(Arc::clone(&a)).with_lewi(Arc::clone(&lewi));

        MpiWorld::new(1).run(|comm| {
            comm.add_hook(hook.clone());
            comm.barrier();
        });
        // After the barrier the CPUs are back and LeWI recorded one cycle.
        assert_eq!(a.num_cpus(), 8);
        let stats = lewi.stats();
        assert_eq!(stats.lend_events, 1);
        assert_eq!(stats.reclaim_events, 1);
        assert_eq!(stats.cpus_lent, 7);
    }
}
