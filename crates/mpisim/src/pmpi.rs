//! The PMPI-style interception layer.
//!
//! PMPI lets a profiler wrap every MPI call and "run custom code before and
//! after the real MPI call". DLB uses those wrappers as extra malleability
//! points. [`PmpiHook`] is the trait a profiler implements; hooks are installed
//! per rank (per process, exactly like a preloaded PMPI library) through
//! [`MpiComm::add_hook`](crate::comm::MpiComm::add_hook).

use std::sync::Arc;

use parking_lot::Mutex;

/// The MPI operations the interception layer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiCall {
    /// `MPI_Init` (the rank entered the world).
    Init,
    /// `MPI_Finalize` (the rank is about to leave the world).
    Finalize,
    /// `MPI_Send` and friends.
    Send,
    /// `MPI_Recv` and friends.
    Recv,
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Bcast`.
    Bcast,
    /// `MPI_Gather`.
    Gather,
    /// `MPI_Allreduce` / `MPI_Reduce`.
    Allreduce,
}

impl MpiCall {
    /// `true` for operations that may block waiting for other ranks — the
    /// calls around which LeWI lends and reclaims CPUs.
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            MpiCall::Recv
                | MpiCall::Barrier
                | MpiCall::Bcast
                | MpiCall::Gather
                | MpiCall::Allreduce
        )
    }
}

/// A PMPI interceptor: invoked on the calling rank's thread before and after
/// every MPI operation.
pub trait PmpiHook: Send + Sync {
    /// Runs before the MPI call executes.
    fn before(&self, rank: usize, call: MpiCall);
    /// Runs after the MPI call completed.
    fn after(&self, rank: usize, call: MpiCall);
}

/// A hook that records every interception, for tests and overhead benchmarks.
#[derive(Default)]
pub struct PmpiRecorder {
    events: Mutex<Vec<(usize, MpiCall, bool)>>,
}

impl PmpiRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Recorded events as `(rank, call, is_before)` triples, in order.
    pub fn events(&self) -> Vec<(usize, MpiCall, bool)> {
        self.events.lock().clone()
    }

    /// Number of recorded `before` events for a given call type.
    pub fn count(&self, call: MpiCall) -> usize {
        self.events
            .lock()
            .iter()
            .filter(|(_, c, before)| *c == call && *before)
            .count()
    }
}

impl PmpiHook for PmpiRecorder {
    fn before(&self, rank: usize, call: MpiCall) {
        self.events.lock().push((rank, call, true));
    }

    fn after(&self, rank: usize, call: MpiCall) {
        self.events.lock().push((rank, call, false));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_classification() {
        assert!(MpiCall::Barrier.is_blocking());
        assert!(MpiCall::Recv.is_blocking());
        assert!(MpiCall::Allreduce.is_blocking());
        assert!(!MpiCall::Send.is_blocking());
        assert!(!MpiCall::Init.is_blocking());
        assert!(!MpiCall::Finalize.is_blocking());
    }

    #[test]
    fn recorder_counts_before_events() {
        let rec = PmpiRecorder::new();
        rec.before(0, MpiCall::Barrier);
        rec.after(0, MpiCall::Barrier);
        rec.before(1, MpiCall::Barrier);
        rec.after(1, MpiCall::Barrier);
        rec.before(0, MpiCall::Send);
        assert_eq!(rec.count(MpiCall::Barrier), 2);
        assert_eq!(rec.count(MpiCall::Send), 1);
        assert_eq!(rec.count(MpiCall::Recv), 0);
        assert_eq!(rec.events().len(), 5);
    }
}
