//! An MPI-like message-passing layer with PMPI-style interception.
//!
//! The paper integrates DROM with MPI only as an *interception* mechanism:
//! "DLB supports MPI interception and acts as an application profiler but it
//! does not implement malleability at process level, i.e., MPI processes are
//! never decreased or increased, nor any program data is ever moved between
//! processes. For DROM purposes, MPI interception is only used to poll DLB and
//! check if there are some pending actions" (Section 4.3).
//!
//! This crate provides the substrate needed to reproduce that behaviour
//! without an MPI installation:
//!
//! * [`MpiWorld`] runs a fixed number of ranks, each on its own OS thread,
//!   exchanging typed messages through per-rank mailboxes;
//! * [`MpiComm`] offers the point-to-point and collective operations the
//!   evaluation applications need (`send`/`recv`, `barrier`, `bcast`,
//!   `gather`, `allreduce`);
//! * every operation runs the registered [`PmpiHook`]s before and after the
//!   call — the PMPI profiling interface — which is where the DROM polling
//!   ([`DromPmpiHook`]) and the LeWI lend/reclaim around blocking calls live.
//!
//! The number of ranks is fixed for the lifetime of a world: process-level
//! malleability is intentionally *not* provided, mirroring the paper.
//!
//! # Example
//!
//! ```
//! use drom_mpisim::MpiWorld;
//!
//! let sums = MpiWorld::new(4).run(|comm| {
//!     // Every rank contributes its rank id; all ranks see the total.
//!     comm.allreduce_sum(comm.rank() as f64)
//! });
//! assert_eq!(sums, vec![6.0, 6.0, 6.0, 6.0]);
//! ```

#![forbid(unsafe_code)]

pub mod comm;
pub mod drom_hook;
pub mod pmpi;
pub mod world;

pub use comm::MpiComm;
pub use drom_hook::DromPmpiHook;
pub use pmpi::{MpiCall, PmpiHook, PmpiRecorder};
pub use world::MpiWorld;
