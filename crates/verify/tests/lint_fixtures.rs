//! The lint rules exercised against known-bad fixture sources, plus the
//! clean-tree gate CI relies on: the real workspace must lint clean.

use std::path::Path;

use drom_verify::lint::{lint_file, lint_workspace};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs a fixture under an arbitrary (non-exempt) crate path.
fn lint_fixture(name: &str) -> Vec<(String, usize)> {
    let source = fixture(name);
    lint_file(Path::new("crates/fixture/src/lib.rs"), &source)
        .into_iter()
        .map(|v| (v.rule.to_string(), v.line))
        .collect()
}

#[test]
fn relaxed_without_justification_trips() {
    let violations = lint_fixture("relaxed_unjustified.rs");
    assert_eq!(
        violations,
        vec![("relaxed-ordering-justification".to_string(), 14)],
        "exactly the unjustified load must trip, not the justified fetch_add"
    );
}

#[test]
fn partial_cmp_fallback_trips() {
    let violations = lint_fixture("partial_cmp_fallback.rs");
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].0, "partial-cmp-fallback");
}

#[test]
fn unsafe_without_safety_comment_trips() {
    let violations = lint_fixture("unsafe_uncommented.rs");
    assert_eq!(
        violations,
        vec![("unsafe-needs-safety-comment".to_string(), 12)],
        "exactly the undocumented unsafe must trip"
    );
}

#[test]
fn workspace_tree_is_clean() {
    // CARGO_MANIFEST_DIR = crates/verify; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let violations = lint_workspace(&root).unwrap();
    assert!(
        violations.is_empty(),
        "the workspace must lint clean:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
