//! The graph rules (determinism taint, hot-path allocation, panic-freedom)
//! exercised against the seeded-violation fixture tree, mutation-style
//! tests that flip verdicts and extend closures, and the clean-tree gates
//! CI relies on: the real workspace must analyze clean and its findings
//! must match the committed baseline byte for byte.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use drom_verify::items::SourceFile;
use drom_verify::rules::{self, Analysis};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/verify; the workspace root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn ratchet_tree() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ratchet_tree")
}

fn seeded_source() -> String {
    let path = ratchet_tree().join("crates/seeded/src/lib.rs");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Analyzes one in-memory source as the whole workspace of crate `seeded`.
fn analyze_source(source: &str) -> Analysis {
    let files = vec![SourceFile::new(
        "crates/seeded/src/lib.rs",
        "seeded",
        false,
        source,
    )];
    rules::analyze_files(files, &BTreeMap::new())
}

/// Finding keys as (rule, function, construct, justified) for assertions.
fn keys(a: &Analysis) -> BTreeSet<(String, String, String, bool)> {
    a.findings
        .iter()
        .map(|f| {
            (
                f.rule.name().to_string(),
                f.func.clone(),
                f.construct.clone(),
                f.justified,
            )
        })
        .collect()
}

#[test]
fn seeded_tree_catches_every_rule() {
    let a = rules::analyze_workspace(&ratchet_tree()).unwrap();
    assert!(
        a.registry_drift.is_empty(),
        "the fixture tree carries all five entry shapes: {:?}",
        a.registry_drift
    );

    let got = keys(&a);
    // Every seeded violation, by rule / function / construct / verdict.
    let expected = [
        // Determinism taint, all five construct families.
        ("determinism", "SeededPolicy::schedule", "float", false),
        ("determinism", "SeededPolicy::schedule", "hash-iter", false),
        (
            "determinism",
            "PolicyScheduler::apply_start",
            "wall-clock",
            false,
        ),
        ("determinism", "PolicyScheduler::tick", "env-read", false),
        (
            "determinism",
            "PolicyScheduler::helper",
            "random-hash",
            false,
        ),
        // Hot-path allocation (pass closure only).
        ("alloc", "SeededPolicy::schedule", "Vec::new", false),
        ("alloc", "SeededPolicy::schedule", "format!", false),
        // Panic-freedom.
        ("panic", "SeededPolicy::schedule", "index[]", false),
        ("panic", "PolicyScheduler::apply_start", "index[]", false),
        ("panic", "PolicyScheduler::tick", "unwrap()", false),
        // The one deliberately justified site.
        ("panic", "SchedIndex::on_start", "expect()", true),
    ];
    for (rule, func, construct, justified) in expected {
        assert!(
            got.contains(&(
                rule.to_string(),
                func.to_string(),
                construct.to_string(),
                justified
            )),
            "missing seeded finding {rule}/{func}/{construct}/justified={justified}; got {got:#?}"
        );
    }

    // Unjustified determinism taint is fatal regardless of any baseline.
    assert!(
        !a.hard_violations().is_empty(),
        "seeded determinism taint must be a hard violation"
    );

    // apply_start is a decision entry but not a pass entry: its wall-clock
    // read and raw index are findings, but the alloc rule must not reach it.
    assert!(
        !got.iter()
            .any(|(r, f, ..)| r == "alloc" && f == "PolicyScheduler::apply_start"),
        "alloc rule leaked outside the pass closure: {got:#?}"
    );

    // The off-path float helper is unreachable: no closure, no finding.
    assert!(
        !a.list_closure("decision")
            .iter()
            .chain(a.list_closure("pass").iter())
            .any(|n| n.contains("off_path_float")),
        "off_path_float must stay out of both closures"
    );
    assert!(
        !got.iter().any(|(_, f, ..)| f.contains("off_path_float")),
        "off_path_float must produce no finding in the base tree"
    );
}

#[test]
fn mutation_removing_justification_flips_verdict() {
    let base = seeded_source();
    let a = analyze_source(&base);
    let justified_key = (
        "panic".to_string(),
        "SchedIndex::on_start".to_string(),
        "expect()".to_string(),
        true,
    );
    assert!(keys(&a).contains(&justified_key), "{:#?}", keys(&a));

    // Strip the `// PANIC:` justification block above the expect() site.
    let mutated: String = base
        .lines()
        .filter(|l| !l.trim_start().starts_with("// PANIC:") && !l.contains("verdict to flip"))
        .map(|l| format!("{l}\n"))
        .collect();
    let a = analyze_source(&mutated);
    let got = keys(&a);
    assert!(
        !got.contains(&justified_key),
        "stripped justification must not stay justified"
    );
    assert!(
        got.contains(&(
            "panic".to_string(),
            "SchedIndex::on_start".to_string(),
            "expect()".to_string(),
            false,
        )),
        "verdict must flip to unjustified: {got:#?}"
    );
}

#[test]
fn mutation_adding_call_extends_closure() {
    let base = seeded_source();
    let a = analyze_source(&base);
    assert!(
        a.why("off_path_float").is_none(),
        "off_path_float must start outside every closure"
    );

    let mutated = base.replace("let _ = self;", "off_path_float();");
    assert_ne!(mutated, base, "mutation splice point missing from fixture");
    let a = analyze_source(&mutated);
    let chain = a
        .why("off_path_float")
        .expect("ClusterSim::run -> off_path_float must join the decision closure");
    assert!(
        chain.iter().any(|s| s.contains("ClusterSim::run")),
        "chain must pass through the run entry: {chain:?}"
    );
    // The newly reachable float is an unjustified determinism finding.
    assert!(
        a.hard_violations()
            .iter()
            .any(|f| f.func == "off_path_float" && f.construct == "float"),
        "{:#?}",
        a.findings
    );
}

#[test]
fn ratchet_fails_seeded_tree_against_committed_empty_baseline() {
    let a = rules::analyze_workspace(&ratchet_tree()).unwrap();
    let baseline_text = std::fs::read_to_string(ratchet_tree().join("lint_baseline.tsv")).unwrap();
    let baseline = rules::parse_baseline(&baseline_text);
    assert!(baseline.is_empty(), "the fixture baseline is header-only");
    let regressions = rules::ratchet(&a.findings, &baseline);
    assert_eq!(
        regressions.len(),
        a.findings.len(),
        "every seeded finding is a ratchet regression: {regressions:#?}"
    );
}

#[test]
fn workspace_analyzes_clean() {
    let a = rules::analyze_workspace(&workspace_root()).unwrap();
    assert!(a.registry_drift.is_empty(), "{:?}", a.registry_drift);
    assert!(
        a.hard_violations().is_empty(),
        "unjustified determinism taint in the workspace:\n{}",
        a.hard_violations()
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The acceptance floor: the decision closure must cover the scheduler
    // decision path end to end.
    let decision = a.list_closure("decision").join("\n");
    for file in [
        "crates/slurm/src/policy.rs",
        "crates/sim/src/cluster.rs",
        "crates/sim/src/progress.rs",
        "crates/sim/src/rate.rs",
    ] {
        assert!(
            decision.contains(file),
            "decision closure must reach {file}:\n{decision}"
        );
    }
}

#[test]
fn workspace_findings_match_committed_baseline() {
    let root = workspace_root();
    let a = rules::analyze_workspace(&root).unwrap();
    let committed = std::fs::read_to_string(root.join(rules::BASELINE_PATH)).unwrap();
    let rendered = rules::render_baseline(&a.findings);
    assert_eq!(
        rendered, committed,
        "baseline drift — rerun `cargo run -q --release -p drom-verify --bin drom_lint -- --update-baseline`"
    );
    // Everything in the committed inventory carries a justification.
    assert!(
        a.findings.iter().all(|f| f.justified),
        "the committed inventory must be fully justified"
    );
}
