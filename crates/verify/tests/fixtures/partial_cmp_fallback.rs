// Lint fixture: NaN-swallowing sort comparator.
// Never compiled; fed to `lint_file` by tests/lint_fixtures.rs.

pub fn sort_by_score(items: &mut [(f64, u64)]) {
    items.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal) // line 7: NaN compares Equal to everything
    });
}

pub fn sort_total(items: &mut [(f64, u64)]) {
    items.sort_by(|a, b| a.0.total_cmp(&b.0)); // fine: total order
}
