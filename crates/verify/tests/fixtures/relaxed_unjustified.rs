// Lint fixture: one justified and one unjustified Relaxed access.
// Never compiled; fed to `lint_file` by tests/lint_fixtures.rs.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn justified(a: &AtomicU64) {
    // SAFETY(ordering): statistics counter; nothing synchronizes on it.
    a.fetch_add(1, Ordering::Relaxed);
}

pub fn padding() {}

pub fn unjustified(b: &AtomicU64) -> u64 {
    b.load(Ordering::Relaxed) // line 14: unjustified
}
