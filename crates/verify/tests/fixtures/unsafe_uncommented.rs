// Lint fixture: one documented and one undocumented unsafe block.
// Never compiled; fed to `lint_file` by tests/lint_fixtures.rs.

pub fn documented(ptr: *const u64) -> u64 {
    // SAFETY: the caller guarantees `ptr` is valid and aligned.
    unsafe { *ptr }
}

pub fn padding() {}

pub fn undocumented(ptr: *const u64) -> u64 {
    unsafe { *ptr } // line 12: no SAFETY comment
}
