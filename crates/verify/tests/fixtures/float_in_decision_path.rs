// Lint fixture: float arithmetic in a scheduler decision path. The test
// feeds this source to `lint_file` under a decision-path file name.
// Never compiled.

pub fn pick(widths: &[usize]) -> Option<usize> {
    let score = |w: usize| w as f64 * 1.5; // line 6: f64 in a decision path
    widths
        .iter()
        .copied()
        .max_by(|a, b| score(*a).total_cmp(&score(*b)))
}
