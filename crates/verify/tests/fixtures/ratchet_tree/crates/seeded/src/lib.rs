//! Seeded-violation workspace for the graph-rule fixture tests and the CI
//! fail-path check. Every graph rule must fire at least once here:
//! determinism taint (float, hash-iter, random-hash, wall-clock, env-read),
//! hot-path allocation, and panic-freedom. All five entry-registry shapes
//! are present so analysis reports no registry drift — failures come from
//! the seeded findings alone. This file is never compiled; it only has to
//! lex.

use std::collections::HashMap;

pub struct View {
    pub free: Vec<usize>,
    pub widths: HashMap<u64, usize>,
}

pub enum Action {
    Start(u64),
}

pub trait SchedulerPolicy {
    fn schedule(&mut self, view: &View) -> Vec<Action>;
}

pub struct SeededPolicy {
    pub table: HashMap<u64, usize>,
}

impl SchedulerPolicy for SeededPolicy {
    fn schedule(&mut self, view: &View) -> Vec<Action> {
        // Seed: hash-iter through a HashMap-typed field (non-deterministic
        // visit order).
        for width in self.table.values() {
            let _ = width;
        }
        // Seed: float arithmetic inside the decision closure.
        let score = view.free.len() as f64 * 0.5;
        let _ = score;
        // Seed: per-pass allocations (vector + formatted label).
        let mut out = Vec::new();
        let label = format!("pass-{}", view.free.len());
        let _ = label;
        // Seed: raw index into the free list.
        let first = view.free[0];
        out.push(Action::Start(first as u64));
        out
    }
}

pub struct PolicyScheduler {
    pub free: Vec<usize>,
}

impl PolicyScheduler {
    pub fn apply_start(&mut self, node: usize) {
        // Seed: wall-clock read while applying an action.
        let stamp = std::time::Instant::now();
        let _ = stamp;
        // Seed: raw index in the decision closure.
        self.free[node] = 0;
    }

    pub fn tick(&mut self) {
        // Seed: environment read steering a decision.
        let knob = std::env::var("SEEDED_KNOB");
        // Seed: unwrap in the decision closure.
        let _ = knob.unwrap();
        self.helper();
    }

    fn helper(&self) {
        // Seed: RandomState reached transitively (tick -> helper).
        let state = std::collections::hash_map::RandomState::new();
        let _ = state;
    }
}

pub struct SchedIndex;

impl SchedIndex {
    pub fn on_start(&mut self, job: u64) {
        // PANIC: seeded *justified* finding — the mutation test strips this
        // line and expects the verdict to flip to unjustified.
        let _ = checked(job).expect("seeded justification");
    }
}

fn checked(job: u64) -> Option<u64> {
    Some(job)
}

pub struct ClusterSim;

impl ClusterSim {
    pub fn run(&self) {
        // MUTATION: the closure-extension test splices a call to
        // off_path_float() over the next line.
        let _ = self;
    }
}

/// Unreachable from every entry until the mutation test splices in a call;
/// its float must produce no finding in the base tree.
fn off_path_float() -> f64 {
    1.5
}
