//! Self-tests for the model checker: toy programs with known-good and
//! known-broken synchronization, checking that the explorer (a) accepts
//! correct protocols, (b) reports a concrete interleaving for broken ones,
//! and (c) actually explores the schedules/read-values it claims to.

use drom_verify::sync::{AtomicU64, Condvar, Mutex};
use drom_verify::{thread, Builder};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Message passing with Release/Acquire: the reader either sees the flag
/// unset, or sees it set AND observes the data written before the release
/// store. Must hold in every interleaving.
#[test]
fn release_acquire_message_passing_passes() {
    let report = Builder::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join();
        })
        .expect("release/acquire message passing must verify");
    // Sanity: more than one interleaving actually explored.
    assert!(report.executions > 1, "explored {}", report.executions);
}

/// Same program with the publish weakened to Relaxed: under the model's
/// memory model the reader may see the flag set but stale data. The checker
/// must report a concrete interleaving.
#[test]
fn relaxed_publish_is_caught() {
    let failure = Builder::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed); // BUG: publish must be Release
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join();
        })
        .expect_err("relaxed publish must be flagged");
    assert!(
        failure.cause.contains("panicked"),
        "cause: {}",
        failure.cause
    );
    assert!(!failure.trace.is_empty());
    // The printed trace names the stale read.
    let rendered = failure.to_string();
    assert!(rendered.contains("interleaving"), "{rendered}");
}

/// A Relaxed flag with an Acquire *load* is equally broken — the store
/// carries no message to acquire.
#[test]
fn relaxed_store_acquire_load_is_caught() {
    Builder::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(7, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Acquire), 7);
            }
            t.join();
        })
        .expect_err("no release store to synchronize with");
}

/// Exhaustiveness of stale reads: a Relaxed-published value may be observed
/// as either old or new; both observations must occur across the
/// exploration. (The collector atomic is std — checker-external state.)
#[test]
fn explores_both_stale_and_fresh_reads() {
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    let seen = Arc::new(StdAtomicU64::new(0));
    let seen2 = seen.clone();
    Builder::new()
        .check(move || {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = x.clone();
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
            });
            let v = x.load(Ordering::Relaxed);
            seen2.fetch_or(1 << v, Ordering::SeqCst);
            t.join();
        })
        .expect("no assertions to violate");
    assert_eq!(
        seen.load(Ordering::SeqCst),
        0b11,
        "both the stale (0) and fresh (1) value must be observed"
    );
}

/// Lost update: two Relaxed load-then-store increments can interleave; the
/// final count may be 1. The checker must find it.
#[test]
fn lost_update_is_found() {
    Builder::new()
        .check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed);
            });
            let v = c.load(Ordering::Relaxed);
            c.store(v + 1, Ordering::Relaxed);
            t.join();
            assert_eq!(c.load(Ordering::Relaxed), 2);
        })
        .expect_err("non-atomic increment must lose an update in some schedule");
}

/// The same increments as atomic RMWs always sum correctly.
#[test]
fn rmw_increments_pass() {
    Builder::new()
        .check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            c.fetch_add(1, Ordering::Relaxed);
            t.join();
            assert_eq!(c.load(Ordering::Acquire), 2);
        })
        .expect("atomic RMWs never lose updates");
}

/// Mutexes order their critical sections: a counter incremented under a lock
/// never loses updates, and the lock hand-off publishes plain (model-atomic
/// but Relaxed) data.
#[test]
fn mutex_protects_counter() {
    Builder::new()
        .check(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = m.clone();
            let t = thread::spawn(move || {
                *m2.lock() += 1;
            });
            *m.lock() += 1;
            t.join();
            assert_eq!(*m.lock(), 2);
        })
        .expect("mutex-protected increments must verify");
}

/// Classic missed wakeup: the waiter checks the predicate, the notifier sets
/// it and notifies *before* the waiter starts waiting — with the check
/// outside the lock, the notification is lost and the waiter sleeps forever.
/// The checker must report this as a deadlock with a trace.
#[test]
fn missed_wakeup_is_reported_as_deadlock() {
    let failure = Builder::new()
        .check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = pair.clone();
            let t = thread::spawn(move || {
                let (m, cv) = &*pair2;
                *m.lock() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            // BUG: predicate checked once outside the wait loop.
            if !*m.lock() {
                let mut g = m.lock();
                cv.wait(&mut g);
                assert!(*g);
            }
            t.join();
        })
        .expect_err("missed wakeup must be reported");
    assert!(
        failure.cause.contains("deadlock"),
        "cause: {}",
        failure.cause
    );
    assert!(!failure.trace.is_empty());
}

/// The correct predicate-loop version of the same handshake verifies.
#[test]
fn predicate_loop_wakeup_passes() {
    Builder::new()
        .check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = pair.clone();
            let t = thread::spawn(move || {
                let (m, cv) = &*pair2;
                *m.lock() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            drop(g);
            t.join();
        })
        .expect("predicate-loop wait must verify");
}

/// Spin loops with `yield_now` terminate under the yield reduction: the
/// consumer spins until the producer's Release store lands.
#[test]
fn yielding_spin_loop_terminates() {
    let report = Builder::new()
        .check(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let f2 = flag.clone();
            let t = thread::spawn(move || {
                f2.store(1, Ordering::Release);
            });
            let mut spins = 0;
            while flag.load(Ordering::Acquire) == 0 {
                thread::yield_now();
                spins += 1;
                assert!(spins < 1000, "spin loop did not converge");
            }
            t.join();
        })
        .expect("yielding spin loop must verify");
    assert!(report.executions >= 1);
}

/// Three threads, preemption bound 2: the checker stays exhaustive within
/// budget and join edges publish every thread's writes.
#[test]
fn three_thread_joins_publish() {
    let report = Builder::new()
        .check(|| {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::new(AtomicU64::new(0));
            let (a2, b2) = (a.clone(), b.clone());
            let t1 = thread::spawn(move || a2.store(1, Ordering::Relaxed));
            let t2 = thread::spawn(move || b2.store(2, Ordering::Relaxed));
            t1.join();
            t2.join();
            // Join edges alone (no Release stores) must make these visible.
            assert_eq!(a.load(Ordering::Relaxed), 1);
            assert_eq!(b.load(Ordering::Relaxed), 2);
        })
        .expect("join edges must publish");
    assert!(report.executions > 1);
}
