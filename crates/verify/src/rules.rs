//! Graph rules: determinism taint, hot-path allocation, panic freedom.
//!
//! The engine lexes every workspace source ([`crate::lex`]), extracts
//! functions ([`crate::items`]), builds an approximate call graph
//! ([`crate::callgraph`]), and computes two reachability closures from an
//! entry-point registry:
//!
//! * **decision closure** — everything reachable from a scheduler decision
//!   entry point. Decisions must replay byte-identically, so this closure
//!   must be free of *determinism taint* (floats, hash-order iteration,
//!   random hashing, wall-clock reads, environment reads) and — because a
//!   panicking controller cannot replay at all — free of unjustified
//!   panic sites.
//! * **pass closure** — everything reachable from a per-pass entry point
//!   (`SchedulerPolicy::schedule` impls). Allocations here run once per
//!   scheduling pass; each needs an `// ALLOC(pass):` justification, and
//!   the aggregate is the committed allocation inventory
//!   (`crates/verify/lint_baseline.tsv`) that quantifies the O(nodes)
//!   pass-seeding cost named in ROADMAP.md.
//!
//! Findings carry a justification bit (marker comment within
//! [`JUSTIFICATION_WINDOW`] lines above the site, or above the `fn` line to
//! cover a whole function). Unjustified determinism findings are hard
//! violations; everything else ratchets against the committed baseline:
//! `--ratchet` fails on any new or grown finding, `--update-baseline`
//! regenerates the file.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::Path;

use crate::callgraph::{extract_calls, Call, CallGraph};
use crate::items::{extract_items, FileItems, FnItem, SourceFile};
use crate::lex::Tok;

/// Lines above a site (or a `fn` declaration) searched for a justification
/// marker. Matches the line-rule window in [`crate::lint`].
pub const JUSTIFICATION_WINDOW: usize = 5;

/// Relative path of the committed baseline / allocation inventory.
pub const BASELINE_PATH: &str = "crates/verify/lint_baseline.tsv";

/// Crate name -> transitive dependency closure, bounding call resolution.
pub type CrateDeps = BTreeMap<String, BTreeSet<String>>;

/// Which closure a rule inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Determinism taint in the decision closure.
    Determinism,
    /// Allocating constructs in the per-pass closure.
    Alloc,
    /// Panic sites in the decision closure.
    Panic,
}

impl Rule {
    /// Stable name used in baselines and messages.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Alloc => "alloc",
            Rule::Panic => "panic",
        }
    }

    /// The justification marker this rule accepts.
    pub fn marker(self) -> &'static str {
        match self {
            Rule::Determinism => "DETERMINISM:",
            Rule::Alloc => "ALLOC(pass):",
            Rule::Panic => "PANIC:",
        }
    }
}

/// One aggregated finding: a construct kind inside one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that produced the finding.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// Qualified function name (`Type::fn` or `fn`).
    pub func: String,
    /// Construct label (`float`, `hash-iter`, `Vec::new`, `unwrap()`, …).
    pub construct: String,
    /// First site line (1-based), for messages; not part of the baseline key.
    pub line: usize,
    /// Whether a justification marker covers the site.
    pub justified: bool,
    /// Number of sites aggregated into this finding.
    pub count: usize,
}

impl Finding {
    /// The baseline key: everything except `line` and `count`.
    pub fn key(&self) -> (String, String, String, String, String) {
        (
            self.rule.name().to_string(),
            self.file.clone(),
            self.func.clone(),
            self.construct.clone(),
            if self.justified {
                "justified"
            } else {
                "unjustified"
            }
            .to_string(),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} in {} ({} site{}, {})",
            self.file,
            self.line,
            self.rule.name(),
            self.construct,
            self.func,
            self.count,
            if self.count == 1 { "" } else { "s" },
            if self.justified {
                "justified"
            } else {
                "UNJUSTIFIED"
            },
        )
    }
}

/// The five fixed entry-point specs. Each must match at least one non-test
/// function or the analysis reports *registry drift* — a rename silently
/// emptying a closure is exactly the failure mode this lint exists to stop.
const REGISTRY: &[(&str, &str)] = &[
    ("SchedulerPolicy::schedule impls", "pass"),
    ("PolicyScheduler::apply_*", "decision"),
    (
        "PolicyScheduler::{tick,submit,requeue,job_finished,set_expected_end}",
        "decision",
    ),
    ("SchedIndex::on_*", "decision"),
    ("ClusterSim::run", "decision"),
];

const POLICY_SCHEDULER_EXACT: &[&str] = &[
    "tick",
    "submit",
    "requeue",
    "job_finished",
    "set_expected_end",
];

/// Classifies one function against the registry: returns
/// `(is_decision_entry, is_pass_entry, matched_spec_index)`.
fn match_registry(f: &FnItem) -> (bool, bool, Option<usize>) {
    if f.is_test || f.body.is_none() {
        return (false, false, None);
    }
    if f.trait_name.as_deref() == Some("SchedulerPolicy") && f.name == "schedule" {
        return (true, true, Some(0));
    }
    match f.self_ty.as_deref() {
        Some("PolicyScheduler") if f.name.starts_with("apply_") => (true, false, Some(1)),
        Some("PolicyScheduler") if POLICY_SCHEDULER_EXACT.contains(&f.name.as_str()) => {
            (true, false, Some(2))
        }
        Some("SchedIndex") if f.name.starts_with("on_") => (true, false, Some(3)),
        Some("ClusterSim") if f.name == "run" => (true, false, Some(4)),
        _ => (false, false, None),
    }
}

/// Scans the comment channel above `fn_line` for a `LINT-ENTRY(kind)`
/// annotation; returns the kind (`decision` / `pass`) if present.
fn lint_entry_annotation(file: &SourceFile, fn_line: usize) -> Option<&'static str> {
    let lo = fn_line.saturating_sub(JUSTIFICATION_WINDOW + 1);
    for line in (lo..fn_line).rev() {
        let Some(sl) = file.lines.get(line) else {
            continue;
        };
        if sl.comment.contains("LINT-ENTRY(pass)") {
            return Some("pass");
        }
        if sl.comment.contains("LINT-ENTRY(decision)") {
            return Some("decision");
        }
    }
    None
}

/// True when `marker` appears in the comment channel within the window
/// ending at (and including) 1-based `line`.
fn marker_above(file: &SourceFile, line: usize, marker: &str) -> bool {
    let hi = line.min(file.lines.len());
    let lo = hi.saturating_sub(JUSTIFICATION_WINDOW + 1);
    file.lines[lo..hi]
        .iter()
        .any(|sl| sl.comment.contains(marker))
}

/// Site-level justification: marker above the site, or above the `fn`
/// declaration (function-level justification covers every site inside).
fn justified(file: &SourceFile, f: &FnItem, site_line: usize, rule: Rule) -> bool {
    marker_above(file, site_line, rule.marker()) || marker_above(file, f.line, rule.marker())
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "Rc",
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
];

const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "with_hasher", "from", "from_iter"];

const ALLOC_METHODS: &[&str] = &[
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "concat",
    "join",
    "repeat",
    "into_vec",
];

const PANIC_METHODS: &[&str] = &["unwrap", "unwrap_err", "expect", "expect_err"];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// The full analysis result.
pub struct Analysis {
    /// Lexed sources, indexable by [`FnItem::file`].
    pub files: Vec<SourceFile>,
    /// All extracted functions.
    pub fns: Vec<FnItem>,
    /// The resolved call graph.
    pub graph: CallGraph,
    /// Function indices in the decision closure.
    pub decision: BTreeSet<usize>,
    /// Function indices in the pass closure.
    pub pass: BTreeSet<usize>,
    /// Decision-closure BFS parents (reached → reached-from), for `--why`.
    pub decision_parent: BTreeMap<usize, usize>,
    /// Pass-closure BFS parents.
    pub pass_parent: BTreeMap<usize, usize>,
    /// Aggregated rule findings, sorted by baseline key.
    pub findings: Vec<Finding>,
    /// Registry specs that matched no function (hard error on the real tree).
    pub registry_drift: Vec<String>,
}

impl Analysis {
    /// Findings that fail the run regardless of the baseline.
    pub fn hard_violations(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.rule == Rule::Determinism && !f.justified)
            .collect()
    }

    /// Resolves a `--why` query: the call chain from an entry point to the
    /// first function whose qualified name equals (or ends with) `query`.
    pub fn why(&self, query: &str) -> Option<Vec<String>> {
        let target = self
            .fns
            .iter()
            .position(|f| f.qualified() == query)
            .or_else(|| self.fns.iter().position(|f| f.qualified().ends_with(query)))?;
        for (closure, parent, label) in [
            (&self.decision, &self.decision_parent, "decision"),
            (&self.pass, &self.pass_parent, "pass"),
        ] {
            if closure.contains(&target) {
                let mut chain = vec![target];
                while let Some(&p) = parent.get(chain.last().expect("non-empty")) {
                    chain.push(p);
                }
                chain.reverse();
                let mut out: Vec<String> = chain
                    .iter()
                    .map(|&i| {
                        format!(
                            "{} ({})",
                            self.fns[i].qualified(),
                            self.files[self.fns[i].file].rel
                        )
                    })
                    .collect();
                out.insert(0, format!("[{label} closure]"));
                return Some(out);
            }
        }
        None
    }

    /// Sorted qualified names of one closure, for `--list-closure`.
    pub fn list_closure(&self, which: &str) -> Vec<String> {
        let set = if which == "pass" {
            &self.pass
        } else {
            &self.decision
        };
        set.iter()
            .map(|&i| {
                format!(
                    "{} ({})",
                    self.fns[i].qualified(),
                    self.files[self.fns[i].file].rel
                )
            })
            .collect()
    }
}

/// Scans one function for determinism-taint constructs.
fn scan_determinism(
    file: &SourceFile,
    f: &FnItem,
    graph: &CallGraph,
    fn_idx: usize,
) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let tokens = &file.tokens;
    let ranges = [Some(f.sig.clone()), f.body.clone()];
    for range in ranges.into_iter().flatten() {
        for i in range {
            let t = &tokens[i];
            match &t.tok {
                Tok::Ident(s) if s == "f32" || s == "f64" => out.push(("float".into(), t.line)),
                Tok::Number { float: true } => out.push(("float".into(), t.line)),
                Tok::Ident(s) if s == "RandomState" || s == "DefaultHasher" => {
                    out.push(("random-hash".into(), t.line))
                }
                Tok::Ident(s) if s == "Instant" || s == "SystemTime" => {
                    out.push(("wall-clock".into(), t.line))
                }
                _ => {}
            }
        }
    }
    if let Some(body) = &f.body {
        for call in extract_calls(tokens, body.clone()) {
            match &call {
                Call::Path { segments, line } => {
                    let n = segments.len();
                    if n >= 2 && segments[n - 2] == "env" {
                        let name = segments[n - 1].as_str();
                        if matches!(name, "var" | "var_os" | "vars" | "vars_os") {
                            out.push(("env-read".into(), *line));
                        }
                    }
                }
                Call::Method {
                    name,
                    receiver,
                    line,
                } if HASH_ITER_METHODS.contains(&name.as_str()) && !receiver.is_empty() => {
                    let ty = CallGraph::receiver_type(
                        receiver,
                        f,
                        &graph.local_types[fn_idx],
                        &graph.field_types,
                    );
                    if ty.as_deref().is_some_and(|t| HASH_TYPES.contains(&t)) {
                        out.push(("hash-iter".into(), *line));
                    }
                }
                _ => {}
            }
        }
        // `for x in hash_typed { … }` iterates in hash order without any
        // method call — catch the chain after `in` when a `for` is nearby.
        let toks = &tokens[body.clone()];
        for (k, t) in toks.iter().enumerate() {
            if t.ident() != Some("in") {
                continue;
            }
            let recent_for = toks[k.saturating_sub(8)..k]
                .iter()
                .any(|p| p.ident() == Some("for"));
            if !recent_for {
                continue;
            }
            let mut j = k + 1;
            while toks.get(j).is_some_and(|t| t.is_punct('&'))
                || toks.get(j).and_then(|t| t.ident()) == Some("mut")
            {
                j += 1;
            }
            let mut chain = Vec::new();
            while let Some(id) = toks.get(j).and_then(|t| t.ident()) {
                chain.push(id.to_string());
                if toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
                    && toks.get(j + 2).and_then(|t| t.ident()).is_some()
                {
                    j += 2;
                } else {
                    j += 1;
                    break;
                }
            }
            // Only a bare chain directly followed by the loop body: method
            // calls on the chain were already handled above.
            if chain.is_empty() || !toks.get(j).is_some_and(|t| t.is_punct('{')) {
                continue;
            }
            let ty =
                CallGraph::receiver_type(&chain, f, &graph.local_types[fn_idx], &graph.field_types);
            if ty.as_deref().is_some_and(|t| HASH_TYPES.contains(&t)) {
                out.push(("hash-iter".into(), toks[k].line));
            }
        }
    }
    out
}

/// Scans one function for allocating constructs.
fn scan_alloc(file: &SourceFile, f: &FnItem) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let Some(body) = &f.body else { return out };
    for call in extract_calls(&file.tokens, body.clone()) {
        match &call {
            Call::Path { segments, line } => {
                let n = segments.len();
                if n >= 2
                    && ALLOC_TYPES.contains(&segments[n - 2].as_str())
                    && ALLOC_CTORS.contains(&segments[n - 1].as_str())
                {
                    out.push((format!("{}::{}", segments[n - 2], segments[n - 1]), *line));
                }
            }
            Call::Method { name, line, .. } if ALLOC_METHODS.contains(&name.as_str()) => {
                out.push((format!("{name}()"), *line));
            }
            Call::Macro { name, line } if name == "vec" || name == "format" => {
                out.push((format!("{name}!"), *line));
            }
            _ => {}
        }
    }
    out
}

/// Scans one function for panic sites.
fn scan_panic(file: &SourceFile, f: &FnItem) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let Some(body) = &f.body else { return out };
    for call in extract_calls(&file.tokens, body.clone()) {
        match &call {
            Call::Method { name, line, .. } if PANIC_METHODS.contains(&name.as_str()) => {
                out.push((format!("{name}()"), *line));
            }
            Call::Macro { name, line } if PANIC_MACROS.contains(&name.as_str()) => {
                out.push((format!("{name}!"), *line));
            }
            Call::Index { line } => out.push(("index[]".into(), *line)),
            _ => {}
        }
    }
    out
}

/// Runs the full analysis over in-memory sources. `crate_deps` maps a crate
/// name to its transitive dependency closure (used to bound ambiguous call
/// resolution).
pub fn analyze_files(
    files: Vec<SourceFile>,
    crate_deps: &BTreeMap<String, BTreeSet<String>>,
) -> Analysis {
    let items: Vec<FileItems> = files
        .iter()
        .enumerate()
        .map(|(i, f)| extract_items(i, f))
        .collect();
    let fns: Vec<FnItem> = items.iter().flat_map(|it| it.fns.iter().cloned()).collect();
    let graph = CallGraph::build(&files, &items, &fns, crate_deps);

    // Entry points: registry matches + LINT-ENTRY annotations.
    let mut decision_entries = Vec::new();
    let mut pass_entries = Vec::new();
    let mut matched = [false; 5];
    for (idx, f) in fns.iter().enumerate() {
        let (mut dec, mut pass, spec) = match_registry(f);
        if let Some(s) = spec {
            matched[s] = true;
        }
        if !f.is_test && f.body.is_some() {
            match lint_entry_annotation(&files[f.file], f.line) {
                Some("pass") => {
                    pass = true;
                    dec = true;
                }
                Some("decision") => dec = true,
                _ => {}
            }
        }
        if dec {
            decision_entries.push(idx);
        }
        if pass {
            pass_entries.push(idx);
        }
    }
    let registry_drift: Vec<String> = REGISTRY
        .iter()
        .zip(matched)
        .filter(|(_, m)| !*m)
        .map(|((spec, kind), _)| format!("registry drift: no function matches {spec} ({kind})"))
        .collect();

    let (decision, decision_parent) = graph.reachable(&decision_entries);
    let (pass, pass_parent) = graph.reachable(&pass_entries);

    // Rule scans over the closures.
    let mut agg: BTreeMap<(Rule, usize, String, bool), (usize, usize)> = BTreeMap::new();
    let mut add = |rule: Rule, fn_idx: usize, sites: Vec<(String, usize)>| {
        let f = &fns[fn_idx];
        let file = &files[f.file];
        for (construct, line) in sites {
            let j = justified(file, f, line, rule);
            let e = agg
                .entry((rule, fn_idx, construct, j))
                .or_insert((0, usize::MAX));
            e.0 += 1;
            e.1 = e.1.min(line);
        }
    };
    for &i in &decision {
        add(
            Rule::Determinism,
            i,
            scan_determinism(&files[fns[i].file], &fns[i], &graph, i),
        );
        add(Rule::Panic, i, scan_panic(&files[fns[i].file], &fns[i]));
    }
    for &i in &pass {
        add(Rule::Alloc, i, scan_alloc(&files[fns[i].file], &fns[i]));
    }

    let mut findings: Vec<Finding> = agg
        .into_iter()
        .map(
            |((rule, fn_idx, construct, justified), (count, line))| Finding {
                rule,
                file: files[fns[fn_idx].file].rel.clone(),
                func: fns[fn_idx].qualified(),
                construct,
                line,
                justified,
                count,
            },
        )
        .collect();
    findings.sort_by_key(|f| (f.key(), f.line));

    Analysis {
        files,
        fns,
        graph,
        decision,
        pass,
        decision_parent,
        pass_parent,
        findings,
        registry_drift,
    }
}

// ---------------------------------------------------------------------------
// Workspace gathering.
// ---------------------------------------------------------------------------

/// Parses `name = "…"` out of a Cargo.toml `[package]` section.
fn package_name(toml: &str) -> Option<String> {
    let mut in_package = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
        } else if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Parses the workspace-internal dependency names out of a Cargo.toml:
/// lines like `drom-core.workspace = true` or `drom-core = { … }` inside
/// plain `[dependencies]` only. Dev-dependencies feed test code (never a
/// resolution target) and cfg-gated sections (the `cfg(drom_verify)`
/// model-check shims) are not production scheduling builds — including
/// either would widen the decision closure with edges no deployed
/// controller can take.
fn direct_deps(toml: &str, workspace_names: &BTreeSet<String>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_deps = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let key: String = line
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if workspace_names.contains(&key) {
            out.insert(key);
        }
    }
    out
}

/// Computes the transitive closure of a direct-dependency map. Each crate's
/// closure includes itself.
fn transitive(direct: &BTreeMap<String, BTreeSet<String>>) -> BTreeMap<String, BTreeSet<String>> {
    let mut closure: BTreeMap<String, BTreeSet<String>> = direct
        .iter()
        .map(|(k, v)| {
            let mut s = v.clone();
            s.insert(k.clone());
            (k.clone(), s)
        })
        .collect();
    loop {
        let mut grew = false;
        let keys: Vec<String> = closure.keys().cloned().collect();
        for k in &keys {
            let reach: Vec<String> = closure[k].iter().cloned().collect();
            for r in reach {
                if r == *k {
                    continue;
                }
                if let Some(next) = closure.get(&r).cloned() {
                    let set = closure.get_mut(k).expect("key exists");
                    let before = set.len();
                    set.extend(next);
                    grew |= set.len() > before;
                }
            }
        }
        if !grew {
            return closure;
        }
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`,
/// `fixtures/`, and dot-directories. Paths are returned sorted.
fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Gathers every analyzable source in the workspace rooted at `root`
/// (member crates under `crates/` plus the root package's `src/`, `tests/`
/// and `examples/`) and the crate dependency closure. `vendor/` stubs are
/// not analyzed.
pub fn gather_workspace(root: &Path) -> io::Result<(Vec<SourceFile>, CrateDeps)> {
    // (dir, crate name, manifest text) per analyzable package.
    let mut crate_dirs: Vec<(std::path::PathBuf, String, String)> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates)?.collect::<io::Result<_>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let dir = entry.path();
            let manifest = dir.join("Cargo.toml");
            if let Ok(toml) = std::fs::read_to_string(&manifest) {
                if let Some(name) = package_name(&toml) {
                    crate_dirs.push((dir, name, toml));
                }
            }
        }
    }
    if let Ok(toml) = std::fs::read_to_string(root.join("Cargo.toml")) {
        if let Some(name) = package_name(&toml) {
            crate_dirs.push((root.to_path_buf(), name, toml));
        }
    }

    let names: BTreeSet<String> = crate_dirs.iter().map(|(_, n, _)| n.clone()).collect();
    let direct: BTreeMap<String, BTreeSet<String>> = crate_dirs
        .iter()
        .map(|(_, n, toml)| (n.clone(), direct_deps(toml, &names)))
        .collect();
    let deps = transitive(&direct);

    let mut files = Vec::new();
    for (dir, name, _) in &crate_dirs {
        for sub in ["src", "tests", "examples", "benches"] {
            let mut paths = Vec::new();
            collect_rs(&dir.join(sub), &mut paths)?;
            for path in paths {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let test_context = sub != "src";
                let source = std::fs::read_to_string(&path)?;
                files.push(SourceFile::new(&rel, name, test_context, &source));
            }
        }
    }
    Ok((files, deps))
}

/// Convenience: gather + analyze a workspace on disk.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let (files, deps) = gather_workspace(root)?;
    Ok(analyze_files(files, &deps))
}

// ---------------------------------------------------------------------------
// Baseline (ratchet + allocation inventory).
// ---------------------------------------------------------------------------

/// Renders the committed baseline: one TSV row per finding key, sorted.
/// Doubles as the allocation inventory — `alloc` rows quantify every
/// allocating construct reachable from a scheduling pass.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# drom_lint finding baseline / allocation inventory.\n\
         # Regenerate with: cargo run -q --release -p drom-verify --bin drom_lint -- --update-baseline\n\
         # rule\tfile\tfunction\tconstruct\tstatus\tcount\n",
    );
    for f in findings {
        let (rule, file, func, construct, status) = f.key();
        out.push_str(&format!(
            "{rule}\t{file}\t{func}\t{construct}\t{status}\t{}\n",
            f.count
        ));
    }
    out
}

/// Parses a baseline file into key → count.
pub fn parse_baseline(text: &str) -> BTreeMap<(String, String, String, String, String), usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 6 {
            continue;
        }
        let count = cols[5].parse().unwrap_or(0);
        out.insert(
            (
                cols[0].to_string(),
                cols[1].to_string(),
                cols[2].to_string(),
                cols[3].to_string(),
                cols[4].to_string(),
            ),
            count,
        );
    }
    out
}

/// Ratchet comparison: every current finding key must exist in the baseline
/// with at least the current count. Returns human-readable regressions
/// (empty = pass). Shrinking or disappearing findings never fail — rerun
/// `--update-baseline` to lock in improvements.
pub fn ratchet(
    findings: &[Finding],
    baseline: &BTreeMap<(String, String, String, String, String), usize>,
) -> Vec<String> {
    let mut out = Vec::new();
    for f in findings {
        let key = f.key();
        match baseline.get(&key) {
            None => out.push(format!("new finding not in baseline: {f}")),
            Some(&allowed) if f.count > allowed => out.push(format!(
                "finding grew beyond baseline ({allowed} → {}): {f}",
                f.count
            )),
            Some(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_one(src: &str) -> Analysis {
        let files = vec![SourceFile::new("crates/x/src/lib.rs", "drom-x", false, src)];
        analyze_files(files, &BTreeMap::new())
    }

    const POLICY_PRELUDE: &str = "trait SchedulerPolicy { fn schedule(&self); }\n";

    #[test]
    fn schedule_impl_is_pass_and_decision_entry() {
        let a = analyze_one(&format!(
            "{POLICY_PRELUDE}struct P;\nimpl SchedulerPolicy for P {{ fn schedule(&self) {{ helper(); }} }}\nfn helper() {{}}\nfn unrelated() {{}}\n"
        ));
        let names: Vec<String> = a.list_closure("pass");
        assert!(names.iter().any(|n| n.contains("P::schedule")));
        assert!(names.iter().any(|n| n.contains("helper")));
        assert!(!names.iter().any(|n| n.contains("unrelated")));
        assert!(
            a.decision.len() >= 2,
            "pass entries are decision entries too"
        );
    }

    #[test]
    fn float_in_closure_is_hard_violation_until_justified() {
        let tainted = format!(
            "{POLICY_PRELUDE}struct P;\nimpl SchedulerPolicy for P {{ fn schedule(&self) {{ helper(); }} }}\nfn helper() -> f64 {{ 1.5 }}\n"
        );
        let a = analyze_one(&tainted);
        assert!(
            !a.hard_violations().is_empty(),
            "unjustified float must be a hard violation"
        );
        let justified = tainted.replace(
            "fn helper()",
            "// DETERMINISM: fixture, constant fold\nfn helper()",
        );
        let a = analyze_one(&justified);
        assert!(a.hard_violations().is_empty(), "{:?}", a.hard_violations());
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == Rule::Determinism && f.justified),
            "justified finding still recorded for the baseline"
        );
    }

    #[test]
    fn float_outside_closure_is_ignored() {
        let a = analyze_one(&format!(
            "{POLICY_PRELUDE}struct P;\nimpl SchedulerPolicy for P {{ fn schedule(&self) {{}} }}\nfn metrics_only() -> f64 {{ 1.5 }}\n"
        ));
        assert!(a.hard_violations().is_empty());
    }

    #[test]
    fn hash_iteration_detected_through_field_typing() {
        let a = analyze_one(&format!(
            "{POLICY_PRELUDE}struct P {{ map: HashMap<u64, u64> }}\nimpl SchedulerPolicy for P {{ fn schedule(&self) {{ for v in self.map.values() {{ let _ = v; }} }} }}\n"
        ));
        assert!(
            a.hard_violations()
                .iter()
                .any(|f| f.construct == "hash-iter"),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn for_loop_over_hash_field_detected() {
        let a = analyze_one(&format!(
            "{POLICY_PRELUDE}struct P {{ set: HashSet<u64> }}\nimpl SchedulerPolicy for P {{ fn schedule(&self) {{ for v in &self.set {{ let _ = v; }} }} }}\n"
        ));
        assert!(
            a.hard_violations()
                .iter()
                .any(|f| f.construct == "hash-iter"),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let a = analyze_one(&format!(
            "{POLICY_PRELUDE}struct P {{ map: BTreeMap<u64, u64> }}\nimpl SchedulerPolicy for P {{ fn schedule(&self) {{ for v in self.map.values() {{ let _ = v; }} }} }}\n"
        ));
        assert!(a.hard_violations().is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn wall_clock_and_env_reads_detected() {
        let a = analyze_one(&format!(
            "{POLICY_PRELUDE}struct P;\nimpl SchedulerPolicy for P {{ fn schedule(&self) {{ let _t = Instant::now(); let _e = std::env::var(\"X\"); }} }}\n"
        ));
        let constructs: BTreeSet<&str> = a
            .hard_violations()
            .iter()
            .map(|f| f.construct.as_str())
            .collect();
        assert!(constructs.contains("wall-clock"), "{constructs:?}");
        assert!(constructs.contains("env-read"), "{constructs:?}");
    }

    #[test]
    fn alloc_findings_cover_pass_closure_only() {
        let a = analyze_one(&format!(
            "{POLICY_PRELUDE}struct P;\nimpl SchedulerPolicy for P {{ fn schedule(&self) {{ let _v = Vec::new(); }} }}\n\
             struct ClusterSim;\nimpl ClusterSim {{ fn run(&self) {{ let _s = String::new(); }} }}\n"
        ));
        let alloc: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::Alloc)
            .collect();
        assert!(alloc.iter().any(|f| f.construct == "Vec::new"));
        assert!(
            !alloc.iter().any(|f| f.construct == "String::new"),
            "ClusterSim::run is decision-only, not a pass entry: {alloc:?}"
        );
    }

    #[test]
    fn panic_sites_detected_and_fn_level_justification_covers_all() {
        let src = format!(
            "{POLICY_PRELUDE}struct P;\nimpl SchedulerPolicy for P {{ fn schedule(&self) {{ helper(&[]); }} }}\n\
             fn helper(xs: &[u64]) -> u64 {{ assert!(!xs.is_empty()); xs[0] }}\n"
        );
        let a = analyze_one(&src);
        let panics: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::Panic)
            .collect();
        assert!(panics
            .iter()
            .any(|f| f.construct == "assert!" && !f.justified));
        assert!(panics
            .iter()
            .any(|f| f.construct == "index[]" && !f.justified));
        let justified_src = src.replace(
            "fn helper(",
            "// PANIC: fixture, invariant-checked\nfn helper(",
        );
        let a = analyze_one(&justified_src);
        assert!(
            a.findings
                .iter()
                .filter(|f| f.rule == Rule::Panic)
                .all(|f| f.justified),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn lint_entry_annotation_adds_entry() {
        let a = analyze_one("// LINT-ENTRY(decision)\nfn custom_entry() { let _x = 1.5; }\n");
        assert!(
            a.hard_violations().iter().any(|f| f.func == "custom_entry"),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn registry_drift_reported() {
        let a = analyze_one("fn nothing() {}\n");
        assert_eq!(a.registry_drift.len(), REGISTRY.len());
    }

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let f = |construct: &str, count: usize, justified: bool| Finding {
            rule: Rule::Alloc,
            file: "crates/x/src/lib.rs".into(),
            func: "P::schedule".into(),
            construct: construct.into(),
            line: 3,
            justified,
            count,
        };
        let old = vec![f("Vec::new", 2, true)];
        let baseline = parse_baseline(&render_baseline(&old));
        assert!(ratchet(&old, &baseline).is_empty());
        // Same key, same count, different line: still clean.
        let mut moved = old.clone();
        moved[0].line = 7;
        assert!(ratchet(&moved, &baseline).is_empty());
        // Count grows: regression.
        assert_eq!(ratchet(&[f("Vec::new", 3, true)], &baseline).len(), 1);
        // New construct: regression.
        assert_eq!(
            ratchet(&[f("Vec::new", 2, true), f("vec!", 1, true)], &baseline).len(),
            1
        );
        // Losing the justification flips the key: regression.
        assert_eq!(ratchet(&[f("Vec::new", 2, false)], &baseline).len(), 1);
        // Shrinking is never a regression.
        assert!(ratchet(&[f("Vec::new", 1, true)], &baseline).is_empty());
    }

    #[test]
    fn why_reports_a_chain() {
        let a = analyze_one(&format!(
            "{POLICY_PRELUDE}struct P;\nimpl SchedulerPolicy for P {{ fn schedule(&self) {{ mid(); }} }}\nfn mid() {{ leaf(); }}\nfn leaf() {{}}\n"
        ));
        let chain = a.why("leaf").expect("leaf is reachable");
        let joined = chain.join(" -> ");
        assert!(joined.contains("P::schedule"), "{joined}");
        assert!(joined.contains("mid"), "{joined}");
        assert!(joined.contains("leaf"), "{joined}");
    }
}
