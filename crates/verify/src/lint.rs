//! Source-level workspace line lints for invariants the compiler can't
//! enforce.
//!
//! Rules (see `docs/verification.md` for rationale and examples):
//!
//! * **relaxed-ordering-justification** — every `Ordering::Relaxed` outside
//!   the audited registry fast path (`crates/shmem/src/registry.rs`) must
//!   carry a `// SAFETY(ordering):` comment on the same line or within the
//!   five preceding lines.
//! * **partial-cmp-fallback** — no `partial_cmp(...)` with an
//!   `unwrap_or`/`unwrap_or_else` fallback: NaN-tolerant sorting must use
//!   `total_cmp` (the PR-4 metrics bug class).
//! * **unsafe-needs-safety-comment** — every `unsafe` keyword must carry a
//!   `// SAFETY:` comment on the same line or within the five preceding
//!   lines.
//!
//! The old **float-in-decision-path** rule (a per-file allowlist over
//! `crates/slurm/src/policy.rs`) is subsumed by the call-graph-aware
//! determinism-taint rule in [`crate::rules`], which checks the *transitive
//! closure* of the decision entry points instead of a hardcoded file list.
//!
//! The scanner is line-based over comment-stripped code from
//! [`crate::lex::split_lines`]: string/char literals and `//`/`/* */`
//! comments (including nested block comments) are removed before rules run,
//! and comment text is kept separately for the justification searches.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lex::{split_lines, SplitLine};

/// How many lines above an occurrence a justification comment may sit.
const JUSTIFICATION_WINDOW: usize = 5;

/// Files (relative to the workspace root) whose `Ordering::Relaxed` uses are
/// exempt from per-site justification: the registry fast path's orderings
/// are audited wholesale by the model checker and `docs/verification.md`,
/// and the checker's own self-tests use `Relaxed` *as the subject under
/// test* (each occurrence is deliberate test input, not a shortcut).
const RELAXED_EXEMPT: &[&str] = &[
    "crates/shmem/src/registry.rs",
    "crates/verify/tests/model_self.rs",
];

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Does any of lines `start..=at` (0-based) carry `marker` in its comment?
fn justified(lines: &[SplitLine], at: usize, marker: &str) -> bool {
    let start = at.saturating_sub(JUSTIFICATION_WINDOW);
    lines[start..=at].iter().any(|l| l.comment.contains(marker))
}

/// Finds `word` in `code` at identifier boundaries (so `unsafe_code` does not
/// match `unsafe`).
fn has_word(code: &str, word: &str) -> bool {
    let mut rest = code;
    let mut offset = 0;
    while let Some(pos) = rest.find(word) {
        let abs = offset + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        offset = abs + word.len();
        rest = &code[offset..];
    }
    false
}

/// Lints one file's source. `rel` is the path relative to the workspace root
/// (used for rule exemptions and reporting).
pub fn lint_file(rel: &Path, source: &str) -> Vec<Violation> {
    let lines = split_lines(source);
    let mut violations = Vec::new();
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let relaxed_exempt = RELAXED_EXEMPT.iter().any(|e| rel_str == *e);

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = line.code.as_str();

        // relaxed-ordering-justification
        if !relaxed_exempt
            && (code.contains("Ordering::Relaxed") || code.contains("atomic::Ordering::Relaxed"))
            && !justified(&lines, i, "SAFETY(ordering):")
        {
            violations.push(Violation {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "relaxed-ordering-justification",
                message: "Ordering::Relaxed outside the audited registry fast path needs a \
                          `// SAFETY(ordering):` comment within the 5 preceding lines"
                    .to_string(),
            });
        }

        // partial-cmp-fallback: partial_cmp with an unwrap_or* fallback on
        // the same or following two lines (the sort-comparator shape).
        if code.contains("partial_cmp") {
            let window_end = (i + 3).min(lines.len());
            if lines[i..window_end]
                .iter()
                .any(|l| l.code.contains("unwrap_or"))
            {
                violations.push(Violation {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: "partial-cmp-fallback",
                    message: "partial_cmp with an unwrap_or fallback is order-dependent under \
                              NaN; use total_cmp"
                        .to_string(),
                });
            }
        }

        // unsafe-needs-safety-comment
        if has_word(code, "unsafe") && !justified(&lines, i, "SAFETY:") {
            violations.push(Violation {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "unsafe-needs-safety-comment",
                message: "`unsafe` needs a `// SAFETY:` comment within the 5 preceding lines"
                    .to_string(),
            });
        }
    }
    violations
}

/// Recursively collects `.rs` files under `dir`, skipping `target` and
/// fixture directories. Results are sorted for deterministic reports.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `<root>/crates` plus the workspace root
/// package's `src/`, `tests/` and `examples/`, returning all violations.
/// (`vendor/` stubs stand in for external crates and are not our code.)
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for sub in ["crates", "src", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    let mut violations = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        violations.extend(lint_file(rel, &source));
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, src: &str) -> Vec<Violation> {
        lint_file(Path::new(rel), src)
    }

    #[test]
    fn strips_comments_and_strings() {
        let lines = split_lines(
            "let x = \"Ordering::Relaxed\"; // Ordering::Relaxed in comment\nlet y = 'u'; /* unsafe */ let z = 1;",
        );
        assert!(!lines[0].code.contains("Relaxed"));
        assert!(lines[0].comment.contains("Relaxed"));
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[1].code.contains("let z"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = split_lines("/* a /* b */ still comment */ let ok = 1;");
        assert!(lines[0].code.contains("let ok"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn raw_strings_blanked() {
        let lines = split_lines("let p = r#\"unsafe Ordering::Relaxed\"#; let q = 2;");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let q"));
    }

    #[test]
    fn relaxed_requires_justification() {
        let v = lint_str("crates/x/src/lib.rs", "a.load(Ordering::Relaxed);");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-ordering-justification");

        let ok = lint_str(
            "crates/x/src/lib.rs",
            "// SAFETY(ordering): monotonic counter, no data depends on it.\na.load(Ordering::Relaxed);",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn registry_fast_path_exempt() {
        let v = lint_str("crates/shmem/src/registry.rs", "a.load(Ordering::Relaxed);");
        assert!(v.is_empty());
    }

    #[test]
    fn partial_cmp_fallback_flagged() {
        let v = lint_str(
            "crates/x/src/lib.rs",
            "xs.sort_by(|a, b| a.partial_cmp(b)\n    .unwrap_or(std::cmp::Ordering::Equal));",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "partial-cmp-fallback");

        let ok = lint_str("crates/x/src/lib.rs", "xs.sort_by(|a, b| a.total_cmp(b));");
        assert!(ok.is_empty());
        // partial_cmp without a fallback (e.g. returning Option) is fine.
        let ok = lint_str("crates/x/src/lib.rs", "let o = a.partial_cmp(&b);");
        assert!(ok.is_empty());
    }

    #[test]
    fn float_rule_moved_to_graph_analysis() {
        // The old per-file float rule is subsumed by the determinism-taint
        // graph rule; plain float code must not trip the line lints anywhere.
        let ok = lint_str("crates/slurm/src/policy.rs", "let x: f64 = 1.0;");
        assert!(ok.is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let v = lint_str("crates/x/src/lib.rs", "unsafe { do_it() }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-needs-safety-comment");

        let ok = lint_str(
            "crates/x/src/lib.rs",
            "// SAFETY: pointer is valid for the call.\nunsafe { do_it() }",
        );
        assert!(ok.is_empty());
        // `unsafe_code` (the lint name) must not match the keyword.
        let ok = lint_str("crates/x/src/lib.rs", "#![forbid(unsafe_code)]");
        assert!(ok.is_empty());
    }
}
