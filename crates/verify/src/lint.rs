//! Source-level workspace lints for invariants the compiler can't enforce.
//!
//! Rules (see `docs/verification.md` for rationale and examples):
//!
//! * **relaxed-ordering-justification** — every `Ordering::Relaxed` outside
//!   the audited registry fast path (`crates/shmem/src/registry.rs`) must
//!   carry a `// SAFETY(ordering):` comment on the same line or within the
//!   five preceding lines.
//! * **partial-cmp-fallback** — no `partial_cmp(...)` with an
//!   `unwrap_or`/`unwrap_or_else` fallback: NaN-tolerant sorting must use
//!   `total_cmp` (the PR-4 metrics bug class).
//! * **float-in-decision-path** — no `f64`/`f32` types or float literals in
//!   scheduler decision paths (`crates/slurm/src/policy.rs`): decisions use
//!   the fixed-point `SpeedupCurve` discipline so replays are byte-stable.
//! * **unsafe-needs-safety-comment** — every `unsafe` keyword must carry a
//!   `// SAFETY:` comment on the same line or within the five preceding
//!   lines.
//!
//! The scanner is line-based over comment-stripped code: string/char
//! literals and `//`/`/* */` comments (including nested block comments) are
//! removed before rules run, and comment text is kept separately for the
//! justification searches.

use std::fmt;
use std::path::{Path, PathBuf};

/// How many lines above an occurrence a justification comment may sit.
const JUSTIFICATION_WINDOW: usize = 5;

/// Files (relative to the workspace root) whose `Ordering::Relaxed` uses are
/// exempt from per-site justification: the registry fast path's orderings
/// are audited wholesale by the model checker and `docs/verification.md`,
/// and the checker's own self-tests use `Relaxed` *as the subject under
/// test* (each occurrence is deliberate test input, not a shortcut).
const RELAXED_EXEMPT: &[&str] = &[
    "crates/shmem/src/registry.rs",
    "crates/verify/tests/model_self.rs",
];

/// Scheduler decision-path files that must stay free of float arithmetic.
const DECISION_PATH_FILES: &[&str] = &["crates/slurm/src/policy.rs"];

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// One source line split into code and comment parts.
#[derive(Debug, Default, Clone)]
struct SplitLine {
    /// The line with comments, string literals and char literals blanked.
    code: String,
    /// The concatenated comment text of the line.
    comment: String,
}

/// Splits `source` into per-line (code, comment) pairs, blanking string and
/// char literals in the code part. Handles nested block comments, raw
/// strings (`r"…"`, `r#"…"#`, …) and escapes; it is a scanner, not a full
/// lexer, but is exact for the constructs used in this workspace.
fn split_lines(source: &str) -> Vec<SplitLine> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Code,
        Block(usize),  // nesting depth
        Str,           // inside "…"
        RawStr(usize), // inside r#…"…"#… with N hashes
    }

    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw_line in source.lines() {
        let mut line = SplitLine::default();
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match mode {
                Mode::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        line.comment.push_str("*/ ");
                        i += 2;
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1)
                        };
                    } else if c == '/' && next == Some('*') {
                        line.comment.push_str("/*");
                        i += 2;
                        mode = Mode::Block(depth + 1);
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        i += 2; // skip the escaped char (may run past EOL for \<newline>)
                    } else if c == '"' {
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"'
                        && bytes[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == '#')
                            .count()
                            == hashes
                    {
                        i += 1 + hashes;
                        mode = Mode::Code;
                    } else {
                        i += 1;
                    }
                }
                Mode::Code => {
                    if c == '/' && next == Some('/') {
                        line.comment
                            .push_str(raw_line[char_byte_idx(raw_line, i)..].trim());
                        i = bytes.len();
                    } else if c == '/' && next == Some('*') {
                        line.comment.push_str("/*");
                        i += 2;
                        mode = Mode::Block(1);
                    } else if c == '"' {
                        line.code.push(' ');
                        i += 1;
                        mode = Mode::Str;
                    } else if c == 'r'
                        && !prev_is_ident(&bytes, i)
                        && matches!(next, Some('"') | Some('#'))
                        && raw_string_hashes(&bytes, i).is_some()
                    {
                        let hashes = raw_string_hashes(&bytes, i).expect("checked above");
                        line.code.push(' ');
                        i += 2 + hashes; // r + hashes + opening quote
                        mode = Mode::RawStr(hashes);
                    } else if c == '\'' {
                        // Char literal or lifetime. A lifetime has an
                        // identifier after the quote and no closing quote.
                        if let Some(len) = char_literal_len(&bytes, i) {
                            line.code.push(' ');
                            i += len;
                        } else {
                            line.code.push(c);
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    out
}

/// Byte index of the `idx`-th char of `s`.
fn char_byte_idx(s: &str, idx: usize) -> usize {
    s.char_indices().nth(idx).map(|(b, _)| b).unwrap_or(s.len())
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If position `i` (at an `r`) starts a raw string, returns its hash count.
fn raw_string_hashes(bytes: &[char], i: usize) -> Option<usize> {
    let mut j = i + 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&'"')).then_some(hashes)
}

/// If position `i` (at a `'`) starts a char literal, returns its char length
/// including quotes; `None` for lifetimes.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some('\\') => {
            // Escaped char: find the closing quote.
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != '\'' {
                j += 1;
            }
            (j < bytes.len()).then_some(j - i + 1)
        }
        Some(_) if bytes.get(i + 2) == Some(&'\'') => Some(3),
        _ => None, // lifetime ('a) or dangling quote
    }
}

/// Does any of lines `start..=at` (0-based) carry `marker` in its comment?
fn justified(lines: &[SplitLine], at: usize, marker: &str) -> bool {
    let start = at.saturating_sub(JUSTIFICATION_WINDOW);
    lines[start..=at].iter().any(|l| l.comment.contains(marker))
}

/// Finds `word` in `code` at identifier boundaries (so `unsafe_code` does not
/// match `unsafe`).
fn has_word(code: &str, word: &str) -> bool {
    let mut rest = code;
    let mut offset = 0;
    while let Some(pos) = rest.find(word) {
        let abs = offset + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        offset = abs + word.len();
        rest = &code[offset..];
    }
    false
}

/// Lints one file's source. `rel` is the path relative to the workspace root
/// (used for rule exemptions and reporting).
pub fn lint_file(rel: &Path, source: &str) -> Vec<Violation> {
    let lines = split_lines(source);
    let mut violations = Vec::new();
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let relaxed_exempt = RELAXED_EXEMPT.iter().any(|e| rel_str == *e);
    let decision_path = DECISION_PATH_FILES.iter().any(|e| rel_str == *e);

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = line.code.as_str();

        // relaxed-ordering-justification
        if !relaxed_exempt
            && (code.contains("Ordering::Relaxed") || code.contains("atomic::Ordering::Relaxed"))
            && !justified(&lines, i, "SAFETY(ordering):")
        {
            violations.push(Violation {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "relaxed-ordering-justification",
                message: "Ordering::Relaxed outside the audited registry fast path needs a \
                          `// SAFETY(ordering):` comment within the 5 preceding lines"
                    .to_string(),
            });
        }

        // partial-cmp-fallback: partial_cmp with an unwrap_or* fallback on
        // the same or following two lines (the sort-comparator shape).
        if code.contains("partial_cmp") {
            let window_end = (i + 3).min(lines.len());
            if lines[i..window_end]
                .iter()
                .any(|l| l.code.contains("unwrap_or"))
            {
                violations.push(Violation {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: "partial-cmp-fallback",
                    message: "partial_cmp with an unwrap_or fallback is order-dependent under \
                              NaN; use total_cmp"
                        .to_string(),
                });
            }
        }

        // float-in-decision-path
        if decision_path && (has_word(code, "f64") || has_word(code, "f32")) {
            violations.push(Violation {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "float-in-decision-path",
                message: "float arithmetic in a scheduler decision path breaks byte-stable \
                          replay; use the fixed-point SpeedupCurve discipline"
                    .to_string(),
            });
        }

        // unsafe-needs-safety-comment
        if has_word(code, "unsafe") && !justified(&lines, i, "SAFETY:") {
            violations.push(Violation {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "unsafe-needs-safety-comment",
                message: "`unsafe` needs a `// SAFETY:` comment within the 5 preceding lines"
                    .to_string(),
            });
        }
    }
    violations
}

/// Recursively collects `.rs` files under `dir`, skipping `target` and
/// fixture directories. Results are sorted for deterministic reports.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `<root>/crates`, returning all violations.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    let mut violations = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        violations.extend(lint_file(rel, &source));
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, src: &str) -> Vec<Violation> {
        lint_file(Path::new(rel), src)
    }

    #[test]
    fn strips_comments_and_strings() {
        let lines = split_lines(
            "let x = \"Ordering::Relaxed\"; // Ordering::Relaxed in comment\nlet y = 'u'; /* unsafe */ let z = 1;",
        );
        assert!(!lines[0].code.contains("Relaxed"));
        assert!(lines[0].comment.contains("Relaxed"));
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[1].code.contains("let z"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = split_lines("/* a /* b */ still comment */ let ok = 1;");
        assert!(lines[0].code.contains("let ok"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn raw_strings_blanked() {
        let lines = split_lines("let p = r#\"unsafe Ordering::Relaxed\"#; let q = 2;");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let q"));
    }

    #[test]
    fn relaxed_requires_justification() {
        let v = lint_str("crates/x/src/lib.rs", "a.load(Ordering::Relaxed);");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-ordering-justification");

        let ok = lint_str(
            "crates/x/src/lib.rs",
            "// SAFETY(ordering): monotonic counter, no data depends on it.\na.load(Ordering::Relaxed);",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn registry_fast_path_exempt() {
        let v = lint_str("crates/shmem/src/registry.rs", "a.load(Ordering::Relaxed);");
        assert!(v.is_empty());
    }

    #[test]
    fn partial_cmp_fallback_flagged() {
        let v = lint_str(
            "crates/x/src/lib.rs",
            "xs.sort_by(|a, b| a.partial_cmp(b)\n    .unwrap_or(std::cmp::Ordering::Equal));",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "partial-cmp-fallback");

        let ok = lint_str("crates/x/src/lib.rs", "xs.sort_by(|a, b| a.total_cmp(b));");
        assert!(ok.is_empty());
        // partial_cmp without a fallback (e.g. returning Option) is fine.
        let ok = lint_str("crates/x/src/lib.rs", "let o = a.partial_cmp(&b);");
        assert!(ok.is_empty());
    }

    #[test]
    fn float_in_decision_path_flagged() {
        let v = lint_str("crates/slurm/src/policy.rs", "let x: f64 = 1.0;");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-in-decision-path");
        // Same code elsewhere is fine.
        let ok = lint_str("crates/metrics/src/lib.rs", "let x: f64 = 1.0;");
        assert!(ok.is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let v = lint_str("crates/x/src/lib.rs", "unsafe { do_it() }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-needs-safety-comment");

        let ok = lint_str(
            "crates/x/src/lib.rs",
            "// SAFETY: pointer is valid for the call.\nunsafe { do_it() }",
        );
        assert!(ok.is_empty());
        // `unsafe_code` (the lint name) must not match the keyword.
        let ok = lint_str("crates/x/src/lib.rs", "#![forbid(unsafe_code)]");
        assert!(ok.is_empty());
    }
}
