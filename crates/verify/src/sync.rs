//! Shim synchronization primitives for model checking.
//!
//! API-compatible (for the subset this workspace uses) with
//! `std::sync::atomic` and `parking_lot`, but every operation is routed
//! through the model-checker driver in [`crate::model`], which decides when
//! it executes and (for loads) which value in modification order it observes.
//!
//! These types only work inside a [`crate::model::check`] closure; using them
//! outside one panics.

use crate::model;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Model-checked stand-in for `std::sync::atomic::AtomicU64`.
#[derive(Debug)]
pub struct AtomicU64 {
    id: usize,
}

impl AtomicU64 {
    pub fn new(v: u64) -> Self {
        AtomicU64 {
            id: model::atomic_new(v),
        }
    }

    pub fn load(&self, ord: Ordering) -> u64 {
        model::atomic_load(self.id, ord)
    }

    pub fn store(&self, v: u64, ord: Ordering) {
        model::atomic_store(self.id, v, ord);
    }

    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        model::atomic_rmw_add(self.id, v, ord)
    }
}

/// Model-checked stand-in for `std::sync::atomic::AtomicUsize`.
#[derive(Debug)]
pub struct AtomicUsize {
    id: usize,
}

impl AtomicUsize {
    pub fn new(v: usize) -> Self {
        AtomicUsize {
            id: model::atomic_new(v as u64),
        }
    }

    pub fn load(&self, ord: Ordering) -> usize {
        model::atomic_load(self.id, ord) as usize
    }

    pub fn store(&self, v: usize, ord: Ordering) {
        model::atomic_store(self.id, v as u64, ord);
    }

    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        model::atomic_rmw_add(self.id, v as u64, ord) as usize
    }
}

/// Model-checked stand-in for `parking_lot::Mutex`.
///
/// Lock acquisition and release are yield points; the driver tracks the
/// holder and hands the releaser's vector clock to the next acquirer. The
/// protected data itself lives in a plain `std` mutex — by construction only
/// the model-granted holder ever touches it, so it never contends.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Self {
        Mutex {
            id: model::mutex_new(),
            data: std::sync::Mutex::new(data),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        model::mutex_lock(self.id);
        MutexGuard {
            mutex: self,
            inner: Some(self.data.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }
}

/// Guard for [`Mutex`]; releases the model-level lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real guard before the model-level unlock so the next
        // granted thread finds the std mutex free.
        self.inner.take();
        // While unwinding (an assertion failure or an execution abort) the
        // model run is over; re-entering the driver would double-panic.
        if !std::thread::panicking() {
            model::mutex_unlock(self.mutex.id);
        }
    }
}

/// Result of a timed condvar wait (`parking_lot` API shape).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Model-checked stand-in for `parking_lot::Condvar`.
///
/// `wait_until` ignores its deadline: waits are modeled as infinite, so a
/// missed wakeup surfaces as a reported deadlock instead of being masked by
/// a timeout. This is deliberate — the protocol must not *rely* on timeouts
/// for progress.
#[derive(Debug)]
pub struct Condvar {
    id: usize,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar {
            id: model::condvar_new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_model(guard);
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        _deadline: Instant,
    ) -> WaitTimeoutResult {
        self.wait_model(guard);
        WaitTimeoutResult { timed_out: false }
    }

    fn wait_model<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Mirror a real condvar: drop the data guard, park (the model
        // releases the mutex and reacquires it before waking us), retake the
        // data guard. Between take and park no other model thread runs — the
        // park call itself is the atomic release point in the model.
        drop(guard.inner.take().expect("guard taken"));
        model::condvar_wait(self.id, guard.mutex.id);
        guard.inner = Some(guard.mutex.data.lock().unwrap_or_else(|p| p.into_inner()));
    }

    pub fn notify_all(&self) {
        model::condvar_notify_all(self.id);
    }

    pub fn notify_one(&self) {
        model::condvar_notify_one(self.id);
    }
}
