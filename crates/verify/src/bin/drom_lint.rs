//! Workspace lint driver: `cargo run -p drom-verify --bin drom_lint`.
//!
//! Runs two analysis layers over the workspace (see `docs/verification.md`):
//!
//! 1. **Line rules** (`drom_verify::lint`) — justified `Ordering::Relaxed`,
//!    no `partial_cmp`-fallback sorting, `// SAFETY:` on `unsafe`. Always
//!    fatal.
//! 2. **Graph rules** (`drom_verify::rules`) — determinism taint, hot-path
//!    allocations, and panic sites in the scheduler decision/pass closures.
//!    Unjustified determinism taint and entry-registry drift are always
//!    fatal; everything else ratchets against the committed baseline
//!    (`crates/verify/lint_baseline.tsv`).
//!
//! ```text
//! drom_lint [ROOT] [--ratchet] [--update-baseline] [--baseline PATH]
//!           [--why FN] [--list-closure decision|pass]
//! ```
//!
//! * `--ratchet` — compare findings to the baseline; any new or grown
//!   finding fails the run (CI mode).
//! * `--update-baseline` — regenerate the baseline file from the current
//!   findings (run after deliberately adding a justified construct, or to
//!   lock in improvements).
//! * `--why FN` — print the call chain that pulls `FN` into a closure.
//! * `--list-closure decision|pass` — dump one closure's functions.

use std::path::PathBuf;
use std::process::ExitCode;

use drom_verify::rules;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut ratchet_mode = false;
    let mut update_baseline = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut why: Option<String> = None;
    let mut list_closure: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ratchet" => ratchet_mode = true,
            "--update-baseline" => update_baseline = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--why" => match args.next() {
                Some(q) => why = Some(q),
                None => return usage("--why needs a function name"),
            },
            "--list-closure" => match args.next() {
                Some(w) if w == "decision" || w == "pass" => list_closure = Some(w),
                _ => return usage("--list-closure needs `decision` or `pass`"),
            },
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = root.unwrap_or_else(|| {
        // The binary lives at <root>/crates/verify; default to the
        // workspace root it belongs to.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });
    let root = root.canonicalize().unwrap_or(root);
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(rules::BASELINE_PATH));

    // Layer 1: line rules.
    let line_violations = match drom_verify::lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("drom_lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    // Layer 2: graph rules.
    let analysis = match rules::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("drom_lint: failed to analyze {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if let Some(query) = &why {
        match analysis.why(query) {
            Some(chain) => {
                println!("{}", chain.join("\n  -> "));
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!("drom_lint: `{query}` is not in any closure");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(which) = &list_closure {
        for line in analysis.list_closure(which) {
            println!("{line}");
        }
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    for v in &line_violations {
        eprintln!("{v}");
        failed = true;
    }
    for d in &analysis.registry_drift {
        eprintln!("drom_lint: {d}");
        failed = true;
    }
    for f in analysis.hard_violations() {
        eprintln!("{f}");
        failed = true;
    }

    if update_baseline {
        let rendered = rules::render_baseline(&analysis.findings);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!(
                "drom_lint: failed to write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "drom_lint: baseline updated ({} finding keys) at {}",
            analysis.findings.len(),
            baseline_path.display()
        );
    } else if ratchet_mode {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => rules::parse_baseline(&text),
            Err(e) => {
                eprintln!(
                    "drom_lint: cannot read baseline {}: {e} (run --update-baseline?)",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let regressions = rules::ratchet(&analysis.findings, &baseline);
        for r in &regressions {
            eprintln!("drom_lint: {r}");
            failed = true;
        }
    }

    let justified = analysis.findings.iter().filter(|f| f.justified).count();
    println!(
        "drom_lint: {} files, {} fns, decision closure {}, pass closure {}, \
         {} finding keys ({} justified)",
        analysis.files.len(),
        analysis.fns.len(),
        analysis.decision.len(),
        analysis.pass.len(),
        analysis.findings.len(),
        justified,
    );
    if failed {
        eprintln!("drom_lint: FAILED");
        ExitCode::FAILURE
    } else {
        println!("drom_lint: clean ({})", root.display());
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "drom_lint: {msg}\nusage: drom_lint [ROOT] [--ratchet] [--update-baseline] \
         [--baseline PATH] [--why FN] [--list-closure decision|pass]"
    );
    ExitCode::FAILURE
}
