//! Workspace lint driver: `cargo run -p drom-verify --bin drom_lint`.
//!
//! Scans every `.rs` file under `crates/` (skipping `target/` and lint
//! fixture directories) and exits non-zero if any rule is violated. Rules
//! are documented in `drom_verify::lint` and `docs/verification.md`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(p) => PathBuf::from(p),
        // The binary lives at <root>/crates/verify; default to the
        // workspace root it belongs to.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root.canonicalize().unwrap_or(root);
    match drom_verify::lint::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("drom_lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("drom_lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("drom_lint: failed to scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
