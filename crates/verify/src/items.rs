//! Item extraction: functions, impl/trait context and struct fields from the
//! token stream.
//!
//! This is the middle layer of the static analyzer: [`crate::lex`] produces
//! tokens, this module recovers the *item structure* the call-graph builder
//! needs — every `fn` with its enclosing `impl`/`trait` type, its signature
//! and body token ranges, and whether it is test-only (`#[cfg(test)]` module
//! or `#[test]`/`#[cfg(test)]` attribute, or a file under `tests/`,
//! `examples/` or `benches/`) — plus a workspace-wide map of struct field
//! types, which powers the approximate receiver typing in
//! [`crate::callgraph`].
//!
//! The parser is deliberately approximate (no expressions, no generics
//! resolution); `docs/verification.md` lists the approximations and why they
//! are sound enough for the three transitive rules.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lex::{split_lines, tokenize, SplitLine, Tok, Token};

/// One source file prepared for analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Name of the crate the file belongs to (e.g. `drom-slurm`).
    pub crate_name: String,
    /// True for files under `tests/`, `examples/` or `benches/` — they are
    /// linted but never act as call-resolution targets or entry points.
    pub test_context: bool,
    /// Per-line code/comment split (comment channel feeds justification
    /// marker searches).
    pub lines: Vec<SplitLine>,
    /// Token stream of the code channel.
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Prepares a source file for analysis.
    pub fn new(rel: &str, crate_name: &str, test_context: bool, source: &str) -> Self {
        let lines = split_lines(source);
        let tokens = tokenize(&lines);
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            test_context,
            lines,
            tokens,
        }
    }
}

/// A function item recovered from a source file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the file in the analysis file list.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` self type (last path segment), if any. For trait
    /// default methods this is the trait name.
    pub self_ty: Option<String>,
    /// Enclosing `impl … for` trait name, or the trait for methods declared
    /// inside a `trait` block.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range of the signature (after the name, up to the body brace or
    /// the terminating semicolon).
    pub sig: Range<usize>,
    /// Token range of the body (exclusive of the outer braces); `None` for
    /// bodyless trait-method declarations.
    pub body: Option<Range<usize>>,
    /// Test-only code: `#[cfg(test)]` module/attribute, `#[test]`, or a
    /// test-context file.
    pub is_test: bool,
}

impl FnItem {
    /// `Type::name` (or the bare name for free functions) — the qualified
    /// name used in reports and baselines.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Items extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Functions in source order.
    pub fns: Vec<FnItem>,
    /// `(owner struct, field name, type head)` triples, e.g.
    /// `("PolicyScheduler", "index", "SchedIndex")`.
    pub fields: Vec<(String, String, String)>,
}

/// Rust keywords that must not be mistaken for call names.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while",
];

/// Is `name` a Rust keyword?
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

#[derive(Debug, Clone)]
enum ScopeKind {
    Mod,
    Impl {
        self_ty: String,
        trait_name: Option<String>,
    },
    Trait {
        name: String,
    },
}

#[derive(Debug, Clone)]
struct Scope {
    kind: ScopeKind,
    /// The scope (or an ancestor) carries `#[cfg(test)]`.
    test: bool,
    close: usize,
}

/// Computes, for every `{` token, the index of its matching `}`.
fn brace_matches(tokens: &[Token]) -> BTreeMap<usize, usize> {
    let mut stack = Vec::new();
    let mut map = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                map.insert(open, i);
            }
        }
    }
    map
}

/// Skips a balanced `<…>` group starting at `i` (which must point at `<`).
/// Returns the index just past the closing `>`. `->` arrows never reach here
/// because the caller only enters on a `<`.
fn skip_angles(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0usize;
    let mut prev_minus = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !prev_minus {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        prev_minus = t.is_punct('-');
        i += 1;
    }
    i
}

/// Reads a type path at `i`: `A::B::C` with optional generic args after any
/// segment. Returns (segments, next index).
fn read_path(tokens: &[Token], mut i: usize) -> (Vec<String>, usize) {
    let mut segs = Vec::new();
    while let Some(seg) = tokens.get(i).and_then(|t| t.ident()) {
        segs.push(seg.to_string());
        i += 1;
        if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
            i = skip_angles(tokens, i);
        }
        if tokens.get(i).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        {
            i += 2;
        } else {
            break;
        }
    }
    (segs, i)
}

/// Scans forward from `i` to the first `{` at angle/paren/bracket depth 0,
/// or a `;` at depth 0 (returns its index with `found_body = false`).
fn scan_to_body(tokens: &[Token], mut i: usize) -> (usize, bool) {
    let mut angle = 0isize;
    let mut paren = 0isize;
    let mut bracket = 0isize;
    let mut prev_minus = false;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') if !prev_minus => angle = (angle - 1).max(0),
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('{') if angle == 0 && paren == 0 && bracket == 0 => return (i, true),
            Tok::Punct(';') if angle == 0 && paren == 0 && bracket == 0 => return (i, false),
            _ => {}
        }
        prev_minus = t.is_punct('-');
        i += 1;
    }
    (i, false)
}

/// Extracts the head type name from a type token sequence starting at `i`:
/// skips `&`, `mut`, `dyn`, `impl` and lifetimes, then takes the last
/// segment of the leading path (`std::collections::HashMap<..>` → HashMap).
/// Returns `None` for tuple/array/fn-pointer types.
fn type_head(tokens: &[Token], mut i: usize, end: usize) -> Option<String> {
    while i < end {
        match &tokens[i].tok {
            Tok::Punct('&') | Tok::Punct('*') => i += 1,
            Tok::Punct('\'') => i += 2, // lifetime: quote + name
            Tok::Ident(s) if s == "mut" || s == "dyn" || s == "impl" || s == "const" => i += 1,
            // Smart pointers deref to their pointee for method dispatch:
            // `Box<dyn Policy>` must type as `Policy`, not `Box`.
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "Box" | "Rc" | "Arc" | "RefCell" | "Cell" | "Mutex" | "RwLock"
                ) && tokens.get(i + 1).is_some_and(|t| t.is_punct('<')) =>
            {
                i += 2;
            }
            Tok::Ident(_) => {
                let (segs, _) = read_path(tokens, i);
                return segs.last().cloned();
            }
            _ => return None,
        }
    }
    None
}

/// Public wrapper over `type_head` for sibling modules (receiver typing in
/// the call graph).
pub fn type_head_pub(tokens: &[Token], i: usize, end: usize) -> Option<String> {
    type_head(tokens, i, end)
}

/// Extracts all items from one file. `file_idx` is the file's index in the
/// analysis list; `test_context` marks whole-file test scope.
pub fn extract_items(file_idx: usize, file: &SourceFile) -> FileItems {
    let tokens = &file.tokens;
    let braces = brace_matches(tokens);
    let mut items = FileItems::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_test_attr = false;
    let mut i = 0;

    while i < tokens.len() {
        // Close scopes whose brace has passed.
        while scopes.last().is_some_and(|s| i > s.close) {
            scopes.pop();
        }
        let in_test_scope = file.test_context || scopes.iter().any(|s| s.test);
        let t = &tokens[i];

        // Attributes: `#[…]` / `#![…]`. Detect test-ness; skip the group.
        if t.is_punct('#') {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_punct('[')) {
                let mut depth = 0isize;
                let mut idents = Vec::new();
                let mut k = j;
                while k < tokens.len() {
                    match &tokens[k].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(s) => idents.push(s.clone()),
                        _ => {}
                    }
                    k += 1;
                }
                let first = idents.first().map(String::as_str);
                let is_test = first == Some("test")
                    || (first == Some("cfg")
                        && idents.iter().any(|s| s == "test")
                        && !idents.iter().any(|s| s == "not"));
                pending_test_attr |= is_test;
                i = k + 1;
                continue;
            }
        }

        match t.ident() {
            Some("mod") => {
                // `mod name { … }` opens a scope; `mod name;` does not.
                if let Some(name_tok) = tokens.get(i + 1) {
                    if name_tok.ident().is_some()
                        && tokens.get(i + 2).is_some_and(|t| t.is_punct('{'))
                    {
                        let open = i + 2;
                        let close = braces.get(&open).copied().unwrap_or(tokens.len());
                        scopes.push(Scope {
                            kind: ScopeKind::Mod,
                            test: pending_test_attr || in_test_scope,
                            close,
                        });
                        pending_test_attr = false;
                        i = open + 1;
                        continue;
                    }
                }
                pending_test_attr = false;
                i += 1;
            }
            Some("impl") => {
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
                    j = skip_angles(tokens, j);
                }
                let (first_path, after_first) = read_path(tokens, j);
                let mut self_ty = first_path.last().cloned();
                let mut trait_name = None;
                let mut j = after_first;
                if tokens.get(j).and_then(|t| t.ident()) == Some("for") {
                    let (second_path, after_second) = read_path(tokens, j + 1);
                    trait_name = self_ty.take();
                    self_ty = second_path.last().cloned();
                    j = after_second;
                }
                let (body_start, has_body) = scan_to_body(tokens, j);
                if has_body {
                    let close = braces.get(&body_start).copied().unwrap_or(tokens.len());
                    scopes.push(Scope {
                        kind: ScopeKind::Impl {
                            self_ty: self_ty.unwrap_or_default(),
                            trait_name,
                        },
                        test: pending_test_attr || in_test_scope,
                        close,
                    });
                    pending_test_attr = false;
                    i = body_start + 1;
                } else {
                    pending_test_attr = false;
                    i = body_start + 1;
                }
            }
            Some("trait") => {
                let name = tokens
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .unwrap_or("")
                    .to_string();
                let (body_start, has_body) = scan_to_body(tokens, i + 1);
                if has_body {
                    let close = braces.get(&body_start).copied().unwrap_or(tokens.len());
                    scopes.push(Scope {
                        kind: ScopeKind::Trait { name },
                        test: pending_test_attr || in_test_scope,
                        close,
                    });
                    i = body_start + 1;
                } else {
                    i = body_start + 1;
                }
                pending_test_attr = false;
            }
            Some("struct") | Some("enum") => {
                let name = tokens
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .unwrap_or("")
                    .to_string();
                let (body_start, has_body) = scan_to_body(tokens, i + 1);
                if has_body {
                    // Named fields — of the struct, or of any enum variant
                    // (`Model { curve: SpeedupCurve }` binds `curve` in
                    // match arms, so variant fields type receivers too).
                    let close = braces.get(&body_start).copied().unwrap_or(tokens.len());
                    parse_fields(tokens, body_start + 1, close, &name, &mut items.fields);
                    i = close + 1;
                } else {
                    // Tuple struct / unit struct: `scan_to_body` stopped at
                    // the `;` (tuple parens are skipped at depth > 0).
                    i = body_start + 1;
                }
                pending_test_attr = false;
            }
            Some("fn") => {
                let name = tokens
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .unwrap_or("")
                    .to_string();
                let sig_start = i + 2;
                let (body_start, has_body) = scan_to_body(tokens, sig_start);
                let (self_ty, trait_name) = scopes
                    .iter()
                    .rev()
                    .find_map(|s| match &s.kind {
                        ScopeKind::Impl {
                            self_ty,
                            trait_name,
                        } => Some((Some(self_ty.clone()), trait_name.clone())),
                        ScopeKind::Trait { name } => Some((Some(name.clone()), Some(name.clone()))),
                        _ => None,
                    })
                    .unwrap_or((None, None));
                let body = if has_body {
                    let close = braces.get(&body_start).copied().unwrap_or(tokens.len());
                    Some(body_start + 1..close)
                } else {
                    None
                };
                items.fns.push(FnItem {
                    file: file_idx,
                    name,
                    self_ty,
                    trait_name,
                    line: t.line,
                    sig: sig_start..body_start,
                    body: body.clone(),
                    is_test: in_test_scope || pending_test_attr,
                });
                pending_test_attr = false;
                // Continue scanning *inside* the body (nested items are rare
                // but legal); the scope stack ignores plain braces.
                i = body_start + 1;
            }
            _ => {
                // Visibility/qualifier tokens between an attribute and its
                // item (`#[cfg(test)] pub fn …`) must not clear the pending
                // test flag.
                let qualifier = matches!(
                    t.ident(),
                    Some("pub")
                        | Some("const")
                        | Some("async")
                        | Some("unsafe")
                        | Some("extern")
                        | Some("crate")
                        | Some("in")
                ) || t.is_punct('(')
                    || t.is_punct(')');
                if !qualifier {
                    pending_test_attr = false;
                }
                i += 1;
            }
        }
    }
    items
}

/// Parses named struct fields in `tokens[start..end]` into
/// `(owner, field, type head)` triples.
fn parse_fields(
    tokens: &[Token],
    start: usize,
    end: usize,
    owner: &str,
    out: &mut Vec<(String, String, String)>,
) {
    let mut i = start;
    while i < end {
        // Skip attributes and visibility.
        if tokens[i].is_punct('#') {
            let mut depth = 0isize;
            while i < end {
                match tokens[i].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        if tokens[i].ident() == Some("pub") {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct('(')) {
                while i < end && !tokens[i].is_punct(')') {
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        // `name : Type`
        if let Some(field) = tokens[i].ident() {
            if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && !tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(head) = type_head(tokens, i + 2, end) {
                    out.push((owner.to_string(), field.to_string(), head));
                }
                // Skip to the comma at depth 0.
                let mut depth = 0isize;
                let mut j = i + 2;
                let mut prev_minus = false;
                while j < end {
                    match tokens[j].tok {
                        Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct('>') if !prev_minus => depth -= 1,
                        Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct(',') if depth == 0 => break,
                        _ => {}
                    }
                    prev_minus = tokens[j].is_punct('-');
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract(src: &str) -> FileItems {
        let f = SourceFile::new("crates/x/src/lib.rs", "x", false, src);
        extract_items(0, &f)
    }

    #[test]
    fn free_and_method_fns() {
        let items = extract(
            "fn free_one() {}\n\
             pub struct S { a: usize }\n\
             impl S {\n    pub fn method(&self) -> usize { self.a }\n}\n\
             impl Clone for S {\n    fn clone(&self) -> Self { S { a: self.a } }\n}\n",
        );
        let names: Vec<_> = items.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["free_one", "S::method", "S::clone"]);
        assert_eq!(items.fns[2].trait_name.as_deref(), Some("Clone"));
        assert_eq!(items.fields, vec![("S".into(), "a".into(), "usize".into())]);
    }

    #[test]
    fn trait_decls_and_default_methods() {
        let items = extract(
            "pub trait P: Send {\n    fn name(&self) -> &'static str;\n    fn hello(&self) { }\n}\n",
        );
        assert_eq!(items.fns.len(), 2);
        assert!(items.fns[0].body.is_none(), "decl has no body");
        assert!(items.fns[1].body.is_some(), "default method has a body");
        assert_eq!(items.fns[0].trait_name.as_deref(), Some("P"));
        assert_eq!(items.fns[0].self_ty.as_deref(), Some("P"));
    }

    #[test]
    fn cfg_test_module_and_test_attr() {
        let items = extract(
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n\
             #[cfg(test)]\nfn test_only() {}\n\
             #[cfg(not(test))]\nfn prod_only() {}\n",
        );
        let flags: Vec<_> = items
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_test))
            .collect();
        assert_eq!(
            flags,
            vec![
                ("prod", false),
                ("helper", true),
                ("case", true),
                ("test_only", true),
                ("prod_only", false),
            ]
        );
    }

    #[test]
    fn impl_with_generics_and_where() {
        let items = extract(
            "impl<'a> PassState<'a> {\n    fn new(view: &ClusterView<'a>) -> Self { todo!() }\n}\n\
             impl<T> Wrapper<T> where T: Iterator<Item = usize> {\n    fn go(&self) {}\n}\n",
        );
        let names: Vec<_> = items.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["PassState::new", "Wrapper::go"]);
    }

    #[test]
    fn impl_trait_return_in_sig_is_not_an_impl_block() {
        let items = extract(
            "impl S {\n    pub fn positions(&self) -> impl Iterator<Item = usize> + '_ { [].into_iter() }\n    fn after(&self) {}\n}\n",
        );
        let names: Vec<_> = items.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["S::positions", "S::after"]);
    }

    #[test]
    fn qualified_path_impls() {
        let items = extract(
            "impl std::hash::Hasher for JobIdHasher {\n    fn finish(&self) -> u64 { 0 }\n}\n",
        );
        assert_eq!(items.fns[0].qualified(), "JobIdHasher::finish");
        assert_eq!(items.fns[0].trait_name.as_deref(), Some("Hasher"));
    }

    #[test]
    fn field_types_through_wrappers() {
        let items = extract(
            "struct T {\n    pub free: Vec<usize>,\n    index: SchedIndex,\n    ends: std::collections::HashMap<u64, u64>,\n    policy: Box<dyn SchedulerPolicy>,\n    name: &'static str,\n}\n",
        );
        let map: Vec<_> = items
            .fields
            .iter()
            .map(|(_, f, t)| (f.as_str(), t.as_str()))
            .collect();
        assert_eq!(
            map,
            vec![
                ("free", "Vec"),
                ("index", "SchedIndex"),
                ("ends", "HashMap"),
                ("policy", "SchedulerPolicy"),
                ("name", "str"),
            ]
        );
    }

    #[test]
    fn tuple_structs_have_no_fields() {
        let items = extract("struct JobIdHasher(u64);\nfn after() {}\n");
        assert!(items.fields.is_empty());
        assert_eq!(items.fns.len(), 1);
    }

    #[test]
    fn body_ranges_cover_the_body() {
        let src = "fn a() { inner(); }\nfn b() {}\n";
        let f = SourceFile::new("x.rs", "x", false, src);
        let items = extract_items(0, &f);
        let body = items.fns[0].body.clone().unwrap();
        let idents: Vec<_> = f.tokens[body].iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, vec!["inner"]);
        assert_eq!(items.fns[1].body.clone().unwrap().len(), 0);
    }
}
