//! Shim threading primitives for model checking: `spawn`, `JoinHandle::join`
//! and `yield_now`, mirroring the `std::thread` subset the tests use.
//!
//! Spawned closures run on real OS threads but are serialized by the model
//! driver; `join` establishes a happens-before edge from everything the
//! joined thread did, and `yield_now` tells the scheduler to prefer other
//! threads (bounding spin loops during exploration).

use crate::model;
use std::sync::{Arc, Mutex};

/// Handle to a model-controlled thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (at model level) until the thread finishes and returns its
    /// result. Unlike `std`, panics in the child are reported by the model
    /// checker directly, so `join` returns `T`, not `Result`.
    pub fn join(self) -> T {
        model::thread_join(self.tid);
        self.result
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .expect("joined thread did not produce a result (it panicked)")
    }
}

/// Spawns a model-controlled thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = result.clone();
    let tid = model::thread_spawn(Box::new(move || {
        let out = f();
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
    }));
    JoinHandle { tid, result }
}

/// Scheduler hint: prefer running other threads before this one's next step.
/// Makes bounded spin loops (`while poll().is_none() { yield_now() }`)
/// tractable to explore.
pub fn yield_now() {
    model::thread_yield_now();
}
