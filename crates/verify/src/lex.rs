//! Token-level lexing for the workspace lints and the static analyzer.
//!
//! Two layers:
//!
//! * [`split_lines`] — the PR-9 comment/string stripper: each source line is
//!   split into a code part (string, char and byte-string literals blanked,
//!   comments removed) and the concatenated comment text (kept for the
//!   justification-marker searches). It understands nested block comments,
//!   raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`) and
//!   byte char literals (`b'x'`).
//! * [`tokenize`] — a token stream over the stripped code: identifiers
//!   (keywords included), numeric literals with a float/integer
//!   classification, and single-character punctuation, each carrying its
//!   1-based source line. This is what the item extractor and call-graph
//!   builder consume.
//!
//! It is a scanner, not a full Rust lexer: literals are blanked rather than
//! preserved, and multi-character operators arrive as adjacent punctuation
//! tokens (`::` is two `:`). That is exact enough for every construct the
//! rules look for, and `docs/verification.md` documents the known
//! approximations.

/// One source line split into code and comment parts.
#[derive(Debug, Default, Clone)]
pub struct SplitLine {
    /// The line with comments, string literals and char literals blanked.
    pub code: String,
    /// The concatenated comment text of the line.
    pub comment: String,
}

/// Splits `source` into per-line (code, comment) pairs, blanking string and
/// char literals in the code part. Handles nested block comments, raw
/// strings (`r"…"`, `r#"…"#`, …), byte strings (`b"…"`, `br#"…"#`), byte
/// char literals (`b'x'`) and escapes; it is a scanner, not a full lexer,
/// but is exact for the constructs used in this workspace.
pub fn split_lines(source: &str) -> Vec<SplitLine> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Code,
        Block(usize),  // nesting depth
        Str,           // inside "…" or b"…"
        RawStr(usize), // inside r#…"…"#… or br#…"…"#… with N hashes
    }

    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw_line in source.lines() {
        let mut line = SplitLine::default();
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match mode {
                Mode::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        line.comment.push_str("*/ ");
                        i += 2;
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1)
                        };
                    } else if c == '/' && next == Some('*') {
                        line.comment.push_str("/*");
                        i += 2;
                        mode = Mode::Block(depth + 1);
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        i += 2; // skip the escaped char (may run past EOL for \<newline>)
                    } else if c == '"' {
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"'
                        && bytes[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == '#')
                            .count()
                            == hashes
                    {
                        i += 1 + hashes;
                        mode = Mode::Code;
                    } else {
                        i += 1;
                    }
                }
                Mode::Code => {
                    // `br#"…"#` / `b"…"` / `b'x'`: the byte prefix must be
                    // recognized here, or the `r` of `br` fails the
                    // identifier-boundary guard below and the body leaks
                    // into the code channel (the PR-10 satellite fix).
                    let (prefix_len, after) = if c == 'b' && !prev_is_ident(&bytes, i) {
                        (1, next)
                    } else {
                        (0, Some(c))
                    };
                    let j = i + prefix_len;
                    if c == '/' && next == Some('/') {
                        line.comment
                            .push_str(raw_line[char_byte_idx(raw_line, i)..].trim());
                        i = bytes.len();
                    } else if c == '/' && next == Some('*') {
                        line.comment.push_str("/*");
                        i += 2;
                        mode = Mode::Block(1);
                    } else if after == Some('"') && (prefix_len == 1 || c == '"') {
                        line.code.push(' ');
                        i = j + 1;
                        mode = Mode::Str;
                    } else if after == Some('r')
                        && (prefix_len == 1 || !prev_is_ident(&bytes, i))
                        && raw_string_hashes(&bytes, j).is_some()
                    {
                        let hashes = raw_string_hashes(&bytes, j).expect("checked above");
                        line.code.push(' ');
                        i = j + 2 + hashes; // [b] + r + hashes + opening quote
                        mode = Mode::RawStr(hashes);
                    } else if after == Some('\'') && (prefix_len == 1 || c == '\'') {
                        // Char / byte-char literal, or a lifetime. A lifetime
                        // has an identifier after the quote and no closing
                        // quote; `b'…'` is always a literal.
                        if let Some(len) = char_literal_len(&bytes, j) {
                            line.code.push(' ');
                            i = j + len;
                        } else {
                            line.code.push(c);
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    out
}

/// Byte index of the `idx`-th char of `s`.
fn char_byte_idx(s: &str, idx: usize) -> usize {
    s.char_indices().nth(idx).map(|(b, _)| b).unwrap_or(s.len())
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If position `i` (at an `r`) starts a raw string, returns its hash count.
fn raw_string_hashes(bytes: &[char], i: usize) -> Option<usize> {
    if bytes.get(i) != Some(&'r') {
        return None;
    }
    let mut j = i + 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&'"')).then_some(hashes)
}

/// If position `i` (at a `'`) starts a char literal, returns its char length
/// including quotes; `None` for lifetimes.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some('\\') => {
            // Escaped char: find the closing quote.
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != '\'' {
                j += 1;
            }
            (j < bytes.len()).then_some(j - i + 1)
        }
        Some(_) if bytes.get(i + 2) == Some(&'\'') => Some(3),
        _ => None, // lifetime ('a) or dangling quote
    }
}

/// A lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal; `float` is true for `1.0`, `1e6`, `2.5f64`, `3f32`.
    Number {
        /// Whether the literal lexes as a floating-point number.
        float: bool,
    },
    /// Single punctuation character (multi-char operators arrive split).
    Punct(char),
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Is this token the given punctuation character?
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Lexes the comment-stripped code channel of `lines` into a token stream.
///
/// Literals were already blanked by [`split_lines`], so only identifiers,
/// numbers and punctuation remain. Whitespace is dropped.
pub fn tokenize(lines: &[SplitLine]) -> Vec<Token> {
    let mut out = Vec::new();
    for (lineno, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: lineno + 1,
                });
            } else if c.is_ascii_digit() {
                let (len, float) = lex_number(&chars[i..]);
                i += len;
                out.push(Token {
                    tok: Tok::Number { float },
                    line: lineno + 1,
                });
            } else {
                out.push(Token {
                    tok: Tok::Punct(c),
                    line: lineno + 1,
                });
                i += 1;
            }
        }
    }
    out
}

/// Lexes a numeric literal at the start of `chars`; returns (length, float).
fn lex_number(chars: &[char]) -> (usize, bool) {
    let mut i = 0;
    // Leading alphanumeric run: digits, hex digits, suffixes, exponents.
    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    let head: String = chars[..i].iter().collect();
    let radix_prefixed = head.starts_with("0x") || head.starts_with("0b") || head.starts_with("0o");
    let mut float = false;
    // Fractional part: `.` followed by a digit (so `1.max(2)` and `0..n`
    // stay integers).
    if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        i += 1;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
    }
    // Signed exponent (`1e-6`): the run so far ends in e/E and a signed
    // digit sequence follows.
    if !radix_prefixed
        && chars
            .get(i.saturating_sub(1))
            .is_some_and(|c| *c == 'e' || *c == 'E')
        && matches!(chars.get(i), Some('+') | Some('-'))
        && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
    {
        float = true;
        i += 2;
        while i < chars.len() && chars[i].is_ascii_digit() {
            i += 1;
        }
    }
    let text: String = chars[..i].iter().collect();
    // Unsigned exponent (`1e6`) or an explicit float suffix (`3f64`).
    if !radix_prefixed {
        let digits_then_e = text
            .bytes()
            .position(|b| b == b'e' || b == b'E')
            .is_some_and(|p| {
                p > 0
                    && text.as_bytes()[..p].iter().all(|b| b.is_ascii_digit())
                    && text.as_bytes()[p + 1..].iter().all(|b| b.is_ascii_digit())
                    && text.len() > p + 1
            });
        if digits_then_e || text.ends_with("f32") || text.ends_with("f64") {
            float = true;
        }
    }
    (i, float)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let lines = split_lines(
            "let x = \"Ordering::Relaxed\"; // Ordering::Relaxed in comment\nlet y = 'u'; /* unsafe */ let z = 1;",
        );
        assert!(!lines[0].code.contains("Relaxed"));
        assert!(lines[0].comment.contains("Relaxed"));
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[1].code.contains("let z"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = split_lines("/* a /* b */ still comment */ let ok = 1;");
        assert!(lines[0].code.contains("let ok"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn raw_strings_blanked() {
        let lines = split_lines("let p = r#\"unsafe Ordering::Relaxed\"#; let q = 2;");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let q"));
    }

    #[test]
    fn raw_byte_strings_blanked() {
        // The PR-10 satellite regression: `br#"…"#` used to fail the
        // identifier-boundary guard at the `r` (its predecessor is the `b`
        // prefix), so the body was scanned as code and could leak fake
        // keywords into the rules.
        let lines = split_lines("let p = br#\"unsafe \"quote\" Ordering::Relaxed\"#; let q = 2;");
        assert!(
            !lines[0].code.contains("unsafe") && !lines[0].code.contains("Relaxed"),
            "byte raw string leaked into code: {:?}",
            lines[0].code
        );
        assert!(lines[0].code.contains("let q"));
    }

    #[test]
    fn plain_byte_strings_and_byte_chars_blanked() {
        let lines = split_lines("let p = b\"unsafe\"; let c = b'x'; let q = 3;");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[0].code.contains('x'));
        assert!(lines[0].code.contains("let q"));
    }

    #[test]
    fn ident_ending_in_b_or_r_is_not_a_literal_prefix() {
        // `hub"..."` is not valid Rust, but `numb` / `har` followed by other
        // code must not trigger the byte/raw prefix path.
        let lines = split_lines("let numb = 1; let har = numb; let s = \"x\";");
        assert!(lines[0].code.contains("numb"));
        assert!(lines[0].code.contains("har"));
        assert!(!lines[0].code.contains('x') || lines[0].code.contains("let s"));
    }

    #[test]
    fn multiline_raw_byte_string_spans_lines() {
        let lines = split_lines("let p = br#\"line one\nunsafe line two\"#;\nlet q = 1;");
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[2].code.contains("let q"));
    }

    #[test]
    fn tokenizes_idents_numbers_punct() {
        let toks = tokenize(&split_lines("let x = foo(1, 2.5); // c"));
        let idents: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, vec!["let", "x", "foo"]);
        let floats: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Number { float } => Some(float),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec![false, true]);
    }

    #[test]
    fn float_literal_shapes() {
        for (src, want) in [
            ("1.0", true),
            ("1e6", true),
            ("1e-6", true),
            ("2.5f64", true),
            ("3f32", true),
            ("42", false),
            ("0xE6", false),
            ("0x1f", false),
            ("1_000", false),
            ("7u64", false),
        ] {
            let toks = tokenize(&split_lines(src));
            let float = toks
                .iter()
                .find_map(|t| match t.tok {
                    Tok::Number { float } => Some(float),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("no number lexed from {src}"));
            assert_eq!(float, want, "literal {src}");
        }
    }

    #[test]
    fn method_on_number_and_ranges_stay_integer() {
        let toks = tokenize(&split_lines("let a = 1.max(2); for i in 0..n {}"));
        assert!(toks.iter().all(|t| t.tok != Tok::Number { float: true }));
        let idents: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
        assert!(idents.contains(&"max"));
    }

    #[test]
    fn lines_are_one_based_and_tracked() {
        let toks = tokenize(&split_lines("a\nb\n\nc"));
        let lines: Vec<_> = toks.iter().map(|t| (t.ident().unwrap(), t.line)).collect();
        assert_eq!(lines, vec![("a", 1), ("b", 2), ("c", 4)]);
    }
}
