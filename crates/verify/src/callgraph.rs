//! Approximate intra-workspace call graph and reachability.
//!
//! Calls are extracted token-wise from every function body and resolved with
//! a deliberately simple, *over-approximating* discipline (documented in
//! `docs/verification.md`):
//!
//! * `Type::func(…)` / `Self::func(…)` — resolved to the workspace methods
//!   of that type; if the "type" is a trait with that method, to every impl
//!   of it. Unknown types (`Vec`, `std` machinery) are opaque.
//! * `recv.method(…)` — the receiver chain is typed through `self`, struct
//!   fields, typed `let` bindings and typed fn parameters. A known
//!   workspace type resolves precisely; a known *foreign* type (e.g. a
//!   `Vec` field) is opaque; an unknown receiver falls back to **every**
//!   workspace method of that name, bounded by the caller crate's
//!   dependency closure — reachability may over-approximate, never
//!   silently under-approximate along this axis.
//! * `func(…)` — free functions by name: same file first, then same crate,
//!   then the dependency closure.
//! * Calls resolving to a bodyless trait-method declaration fan out to all
//!   impls of that trait method (dynamic dispatch, e.g.
//!   `Box<dyn SchedulerPolicy>`).
//!
//! Test-only functions (`#[cfg(test)]`, `#[test]`, `tests/`, `examples/`,
//! `benches/`) are never resolution targets: production reachability must
//! not flow through test scaffolding.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;

use crate::items::{is_keyword, FileItems, FnItem, SourceFile};
use crate::lex::{Tok, Token};

/// One extracted call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `a::b::f(…)` — path with at least two segments.
    Path {
        /// Path segments, last is the function name.
        segments: Vec<String>,
        /// 1-based line of the call.
        line: usize,
    },
    /// `recv.m(…)`.
    Method {
        /// Method name.
        name: String,
        /// Receiver identifier chain (`self.index.x` → `["self","index","x"]`),
        /// empty when the receiver is an expression (`f().m(…)`).
        receiver: Vec<String>,
        /// 1-based line of the call.
        line: usize,
    },
    /// `f(…)` — single-segment call.
    Bare {
        /// Function name.
        name: String,
        /// 1-based line of the call.
        line: usize,
    },
    /// `m!(…)` — macro invocation.
    Macro {
        /// Macro name (without `!`).
        name: String,
        /// 1-based line of the call.
        line: usize,
    },
    /// `x[...]` — raw index expression.
    Index {
        /// 1-based line of the expression.
        line: usize,
    },
}

/// Extracts the call sites (and raw index expressions) of one token range.
pub fn extract_calls(tokens: &[Token], range: Range<usize>) -> Vec<Call> {
    let mut out = Vec::new();
    for i in range.clone() {
        let t = &tokens[i];
        if t.is_punct('(') && i > range.start {
            let j = i - 1;
            if let Some(name) = tokens[j].ident() {
                if is_keyword(name) {
                    continue;
                }
                let line = tokens[j].line;
                // Qualified path?
                if j >= 2
                    && j.checked_sub(2).is_some()
                    && tokens[j - 1].is_punct(':')
                    && tokens[j - 2].is_punct(':')
                {
                    let mut segments = vec![name.to_string()];
                    let mut k = j;
                    while k >= 2 && tokens[k - 1].is_punct(':') && tokens[k - 2].is_punct(':') {
                        // Skip a turbofish group: `Vec::<u8>::new`.
                        let mut p = k - 2;
                        if p > 0 && tokens[p - 1].is_punct('>') {
                            let mut depth = 0usize;
                            while p > 0 {
                                p -= 1;
                                if tokens[p].is_punct('>') {
                                    depth += 1;
                                } else if tokens[p].is_punct('<') {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                            }
                        }
                        match p.checked_sub(1).and_then(|q| tokens[q].ident()) {
                            Some(seg) => {
                                segments.push(seg.to_string());
                                k = p - 1;
                            }
                            None => break,
                        }
                    }
                    segments.reverse();
                    if segments.len() >= 2 {
                        out.push(Call::Path { segments, line });
                        continue;
                    }
                }
                // Method call?
                if j >= 1 && tokens[j - 1].is_punct('.') {
                    let mut receiver = Vec::new();
                    let mut k = j - 1; // at the '.'
                    loop {
                        if k == 0 {
                            break;
                        }
                        let prev = &tokens[k - 1];
                        if let Some(id) = prev.ident() {
                            receiver.push(id.to_string());
                            if k >= 3
                                && tokens[k - 2].is_punct('.')
                                && tokens[k - 3].ident().is_some()
                            {
                                k -= 2;
                                continue;
                            }
                            // `foo().bar.m(…)`: the chain head is a call
                            // result, so the receiver type is unknown.
                            if k >= 2 && tokens[k - 2].is_punct('.') {
                                receiver.clear();
                            }
                        } else {
                            // `)`/`]`/literal receiver — expression result.
                            receiver.clear();
                        }
                        break;
                    }
                    receiver.reverse();
                    out.push(Call::Method {
                        name: name.to_string(),
                        receiver,
                        line,
                    });
                    continue;
                }
                // `fn name(` definitions are excluded by the keyword check on
                // the token *before* the name.
                if j >= 1 && tokens[j - 1].ident() == Some("fn") {
                    continue;
                }
                out.push(Call::Bare {
                    name: name.to_string(),
                    line,
                });
            }
        } else if t.is_punct('!') && i > range.start && i + 1 < range.end {
            if let (Some(name), true) = (
                tokens[i - 1].ident(),
                tokens[i + 1].is_punct('(')
                    || tokens[i + 1].is_punct('[')
                    || tokens[i + 1].is_punct('{'),
            ) {
                if !is_keyword(name) {
                    out.push(Call::Macro {
                        name: name.to_string(),
                        line: tokens[i - 1].line,
                    });
                }
            }
        } else if t.is_punct('[') && i > range.start {
            let prev = &tokens[i - 1];
            if prev.ident().is_some_and(|n| !is_keyword(n))
                || prev.is_punct(')')
                || prev.is_punct(']')
            {
                out.push(Call::Index { line: t.line });
            }
        }
    }
    out
}

/// Foreign container types whose methods are opaque (no workspace fallback):
/// resolving `self.free.clone()` to a workspace `clone` would be noise.
const FOREIGN_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "str",
    "Box",
    "Rc",
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "Option",
    "Result",
    "Mutex",
    "RwLock",
    "Condvar",
    "AtomicU64",
    "AtomicUsize",
    "AtomicBool",
    "AtomicU32",
    "Reverse",
    "Range",
    "Instant",
    "Duration",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "bool",
    "char",
    "f32",
    "f64",
    "Ordering",
    "PathBuf",
    "Path",
];

/// The resolved call graph plus the typing maps used to build it.
pub struct CallGraph {
    /// `edges[f]` — indices of functions `f` may call.
    pub edges: Vec<BTreeSet<usize>>,
    /// Per-function typed locals (`let x: T`, `let x = T::new(…)`, typed
    /// params), exposed for the rules' receiver typing.
    pub local_types: Vec<BTreeMap<String, String>>,
    /// `(owner, field)` → type head, workspace-wide.
    pub field_types: BTreeMap<(String, String), String>,
    /// field name → set of type heads (owner-agnostic fallback).
    pub field_types_any: BTreeMap<String, BTreeSet<String>>,
}

/// Builds typed-local maps for a function: `let [mut] x: T`, typed params
/// from the signature, and `let [mut] x = T::…(…)` constructor bindings.
fn typed_locals(tokens: &[Token], f: &FnItem) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    // Params: `name: Type` pairs at paren depth 1 in the signature.
    let mut depth = 0isize;
    let mut i = f.sig.start;
    while i < f.sig.end {
        match tokens[i].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            _ => {}
        }
        if depth == 1 {
            if let Some(name) = tokens[i].ident() {
                if !is_keyword(name)
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && !tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                {
                    if let Some(head) = crate::items::type_head_pub(tokens, i + 2, f.sig.end) {
                        map.insert(name.to_string(), head);
                    }
                }
            }
        }
        i += 1;
    }
    // Locals in the body.
    if let Some(body) = &f.body {
        let mut i = body.start;
        while i < body.end {
            if tokens[i].ident() == Some("let") {
                let mut j = i + 1;
                if tokens.get(j).and_then(|t| t.ident()) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = tokens.get(j).and_then(|t| t.ident()) {
                    if tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                        && !tokens.get(j + 2).is_some_and(|t| t.is_punct(':'))
                    {
                        if let Some(head) = crate::items::type_head_pub(tokens, j + 2, body.end) {
                            map.insert(name.to_string(), head);
                        }
                    } else if tokens.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                        // `let x = Type::ctor(…)` or `let x = Type { … }`.
                        if let Some(first) = tokens.get(j + 2).and_then(|t| t.ident()) {
                            if first.chars().next().is_some_and(|c| c.is_uppercase()) {
                                let (segs, after) = read_path_fwd(tokens, j + 2);
                                if segs.len() >= 2
                                    && tokens.get(after).is_some_and(|t| t.is_punct('('))
                                {
                                    map.insert(name.to_string(), segs[segs.len() - 2].clone());
                                } else if tokens.get(after).is_some_and(|t| t.is_punct('{')) {
                                    map.insert(name.to_string(), segs[segs.len() - 1].clone());
                                }
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }
    map
}

/// Forward path read used for `let x = Type::ctor(…)` typing.
fn read_path_fwd(tokens: &[Token], mut i: usize) -> (Vec<String>, usize) {
    let mut segs = Vec::new();
    while let Some(seg) = tokens.get(i).and_then(|t| t.ident()) {
        segs.push(seg.to_string());
        i += 1;
        if tokens.get(i).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        {
            i += 2;
        } else {
            break;
        }
    }
    (segs, i)
}

impl CallGraph {
    /// Builds the graph over `fns` extracted from `files`, bounding
    /// name-fallback resolution by `crate_deps` (crate → transitive
    /// dependency closure, each including the crate itself).
    pub fn build(
        files: &[SourceFile],
        items: &[FileItems],
        fns: &[FnItem],
        crate_deps: &BTreeMap<String, BTreeSet<String>>,
    ) -> CallGraph {
        // Indexes over non-test functions (resolution targets).
        let mut by_ty_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut trait_method_impls: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            if let Some(ty) = &f.self_ty {
                by_ty_name.entry((ty, &f.name)).or_default().push(idx);
                by_name.entry(&f.name).or_default().push(idx);
                if let Some(tr) = &f.trait_name {
                    trait_method_impls
                        .entry((tr, &f.name))
                        .or_default()
                        .push(idx);
                }
            } else {
                free_by_name.entry(&f.name).or_default().push(idx);
                by_name.entry(&f.name).or_default().push(idx);
            }
        }

        let mut field_types: BTreeMap<(String, String), String> = BTreeMap::new();
        let mut field_types_any: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for items in items.iter() {
            for (owner, field, ty) in &items.fields {
                field_types.insert((owner.clone(), field.clone()), ty.clone());
                field_types_any
                    .entry(field.clone())
                    .or_default()
                    .insert(ty.clone());
            }
        }

        let local_types: Vec<BTreeMap<String, String>> = fns
            .iter()
            .map(|f| typed_locals(&files[f.file].tokens, f))
            .collect();

        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fns.len()];
        for (idx, f) in fns.iter().enumerate() {
            let Some(body) = &f.body else { continue };
            let tokens = &files[f.file].tokens;
            let caller_crate = &files[f.file].crate_name;
            let dep_ok = |callee: usize| -> bool {
                let callee_crate = &files[fns[callee].file].crate_name;
                callee_crate == caller_crate
                    || crate_deps
                        .get(caller_crate)
                        .is_some_and(|deps| deps.contains(callee_crate))
            };
            let add_with_dispatch = |targets: &mut BTreeSet<usize>, callee: usize| {
                targets.insert(callee);
                // Bodyless trait declaration → every impl (dyn dispatch).
                let cf = &fns[callee];
                if cf.body.is_none() {
                    if let Some(tr) = &cf.trait_name {
                        if let Some(impls) =
                            trait_method_impls.get(&(tr.as_str(), cf.name.as_str()))
                        {
                            targets.extend(impls.iter().copied());
                        }
                    }
                }
            };

            let mut targets: BTreeSet<usize> = BTreeSet::new();
            for call in extract_calls(tokens, body.clone()) {
                match call {
                    Call::Path { segments, .. } => {
                        let name = segments.last().expect("path has segments").as_str();
                        let qual = segments[segments.len() - 2].as_str();
                        let qual_ty = if qual == "Self" {
                            f.self_ty.as_deref().unwrap_or(qual)
                        } else {
                            qual
                        };
                        if let Some(found) = by_ty_name.get(&(qual_ty, name)) {
                            for &c in found.iter().filter(|&&c| dep_ok(c)) {
                                add_with_dispatch(&mut targets, c);
                            }
                        } else if let Some(impls) = trait_method_impls.get(&(qual_ty, name)) {
                            for &c in impls.iter().filter(|&&c| dep_ok(c)) {
                                targets.insert(c);
                            }
                        } else if qual_ty.chars().next().is_some_and(|c| c.is_lowercase()) {
                            // Module-qualified free function.
                            if let Some(found) = free_by_name.get(name) {
                                for &c in found.iter().filter(|&&c| dep_ok(c)) {
                                    add_with_dispatch(&mut targets, c);
                                }
                            }
                        }
                        // Unknown uppercase qualifier (Vec, std types): opaque.
                    }
                    Call::Method { name, receiver, .. } => {
                        let recv_ty =
                            Self::receiver_type(&receiver, f, &local_types[idx], &field_types);
                        match recv_ty {
                            Some(ty) if FOREIGN_TYPES.contains(&ty.as_str()) => {
                                // Opaque std container — no workspace edge.
                            }
                            Some(ty) => {
                                if let Some(found) = by_ty_name.get(&(ty.as_str(), name.as_str())) {
                                    for &c in found.iter().filter(|&&c| dep_ok(c)) {
                                        add_with_dispatch(&mut targets, c);
                                    }
                                } else if let Some(found) = by_name.get(name.as_str()) {
                                    // Typed receiver without a matching
                                    // workspace method: could be a trait
                                    // method via generics — fall back.
                                    for &c in found.iter().filter(|&&c| dep_ok(c)) {
                                        add_with_dispatch(&mut targets, c);
                                    }
                                }
                            }
                            None => {
                                if let Some(found) = by_name.get(name.as_str()) {
                                    for &c in found.iter().filter(|&&c| dep_ok(c)) {
                                        add_with_dispatch(&mut targets, c);
                                    }
                                }
                            }
                        }
                    }
                    Call::Bare { name, .. } => {
                        // Same file first, then crate, then dep closure.
                        if let Some(found) = free_by_name.get(name.as_str()) {
                            let same_file: Vec<usize> = found
                                .iter()
                                .copied()
                                .filter(|&c| fns[c].file == f.file)
                                .collect();
                            let pick: Vec<usize> = if !same_file.is_empty() {
                                same_file
                            } else {
                                let same_crate: Vec<usize> = found
                                    .iter()
                                    .copied()
                                    .filter(|&c| files[fns[c].file].crate_name == *caller_crate)
                                    .collect();
                                if !same_crate.is_empty() {
                                    same_crate
                                } else {
                                    found.iter().copied().filter(|&c| dep_ok(c)).collect()
                                }
                            };
                            for c in pick {
                                add_with_dispatch(&mut targets, c);
                            }
                        }
                    }
                    Call::Macro { .. } | Call::Index { .. } => {}
                }
            }
            edges[idx] = targets;
        }

        CallGraph {
            edges,
            local_types,
            field_types,
            field_types_any,
        }
    }

    /// Types a receiver chain: `self` → the impl type, then struct fields;
    /// a single name is looked up among typed locals/params, then as a field
    /// of the impl type.
    pub fn receiver_type(
        receiver: &[String],
        f: &FnItem,
        locals: &BTreeMap<String, String>,
        field_types: &BTreeMap<(String, String), String>,
    ) -> Option<String> {
        let mut iter = receiver.iter();
        let first = iter.next()?;
        let mut ty: String = if first == "self" {
            f.self_ty.clone()?
        } else if let Some(t) = locals.get(first) {
            t.clone()
        } else if let Some(self_ty) = &f.self_ty {
            // Unqualified field use inside methods is not legal Rust, but a
            // destructured field keeps its field name more often than not —
            // try the impl type's field table before giving up.
            field_types.get(&(self_ty.clone(), first.clone()))?.clone()
        } else {
            return None;
        };
        for seg in iter {
            ty = field_types.get(&(ty.clone(), seg.clone()))?.clone();
        }
        Some(ty)
    }

    /// BFS reachability from `entries`; returns the closure and a parent map
    /// (`reached fn` → the fn it was first reached from) for path reporting.
    pub fn reachable(&self, entries: &[usize]) -> (BTreeSet<usize>, BTreeMap<usize, usize>) {
        let mut seen: BTreeSet<usize> = entries.iter().copied().collect();
        let mut parent = BTreeMap::new();
        let mut queue: VecDeque<usize> = entries.iter().copied().collect();
        while let Some(f) = queue.pop_front() {
            for &c in &self.edges[f] {
                if seen.insert(c) {
                    parent.insert(c, f);
                    queue.push_back(c);
                }
            }
        }
        (seen, parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract_items;

    fn build(src: &str) -> (Vec<SourceFile>, Vec<FileItems>, Vec<FnItem>, CallGraph) {
        let files = vec![SourceFile::new("crates/x/src/lib.rs", "x", false, src)];
        let items: Vec<FileItems> = files
            .iter()
            .enumerate()
            .map(|(i, f)| extract_items(i, f))
            .collect();
        let fns: Vec<FnItem> = items.iter().flat_map(|it| it.fns.iter().cloned()).collect();
        let deps = BTreeMap::new();
        let graph = CallGraph::build(&files, &items, &fns, &deps);
        (files, items, fns, graph)
    }

    fn idx(fns: &[FnItem], name: &str) -> usize {
        fns.iter()
            .position(|f| f.qualified() == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn bare_and_qualified_calls_resolve() {
        let (_, _, fns, g) = build(
            "fn a() { b(); Helper::make(); }\nfn b() {}\n\
             struct Helper;\nimpl Helper { fn make() {} }\n",
        );
        let a = idx(&fns, "a");
        assert!(g.edges[a].contains(&idx(&fns, "b")));
        assert!(g.edges[a].contains(&idx(&fns, "Helper::make")));
    }

    #[test]
    fn self_and_field_receivers_resolve_precisely() {
        let (_, _, fns, g) = build(
            "struct Inner;\nimpl Inner { fn poke(&self) {} }\n\
             struct Outer { inner: Inner }\n\
             impl Outer {\n  fn go(&self) { self.inner.poke(); self.step(); }\n  fn step(&self) {}\n}\n\
             struct Decoy;\nimpl Decoy { fn poke(&self) { decoy_only(); } }\nfn decoy_only() {}\n",
        );
        let go = idx(&fns, "Outer::go");
        assert!(g.edges[go].contains(&idx(&fns, "Inner::poke")));
        assert!(g.edges[go].contains(&idx(&fns, "Outer::step")));
        // Precise receiver typing must NOT fall back to Decoy::poke.
        assert!(!g.edges[go].contains(&idx(&fns, "Decoy::poke")));
    }

    #[test]
    fn foreign_receivers_are_opaque() {
        let (_, _, fns, g) = build(
            "struct S { xs: Vec<usize> }\n\
             impl S { fn go(&self) { self.xs.clone(); } }\n\
             struct T;\nimpl T { fn clone(&self) {} }\n",
        );
        let go = idx(&fns, "S::go");
        assert!(
            g.edges[go].is_empty(),
            "Vec::clone must not resolve into the workspace: {:?}",
            g.edges[go]
        );
    }

    #[test]
    fn unknown_receiver_falls_back_to_all_methods_of_that_name() {
        let (_, _, fns, g) = build(
            "fn a(x: &Mystery) { x.frob(); }\n\
             struct P;\nimpl P { fn frob(&self) {} }\n\
             struct Q;\nimpl Q { fn frob(&self) {} }\n",
        );
        let a = idx(&fns, "a");
        assert!(g.edges[a].contains(&idx(&fns, "P::frob")));
        assert!(g.edges[a].contains(&idx(&fns, "Q::frob")));
    }

    #[test]
    fn dyn_dispatch_through_trait_decl() {
        let (_, _, fns, g) = build(
            "trait Policy { fn schedule(&self); }\n\
             struct A;\nimpl Policy for A { fn schedule(&self) {} }\n\
             struct B;\nimpl Policy for B { fn schedule(&self) {} }\n\
             struct Driver { policy: Box<dyn Policy> }\n\
             impl Driver { fn tick(&self) { self.policy.schedule(); } }\n",
        );
        let tick = idx(&fns, "Driver::tick");
        assert!(g.edges[tick].contains(&idx(&fns, "A::schedule")));
        assert!(g.edges[tick].contains(&idx(&fns, "B::schedule")));
    }

    #[test]
    fn typed_locals_resolve_constructor_bindings() {
        let (_, _, fns, g) = build(
            "struct Sched;\nimpl Sched { fn new() -> Self { Sched } fn tick(&self) {} }\n\
             struct Decoy;\nimpl Decoy { fn tick(&self) {} }\n\
             fn run() { let s = Sched::new(); s.tick(); }\n",
        );
        let run = idx(&fns, "run");
        assert!(g.edges[run].contains(&idx(&fns, "Sched::tick")));
        assert!(!g.edges[run].contains(&idx(&fns, "Decoy::tick")));
    }

    #[test]
    fn test_functions_are_not_targets() {
        let (_, _, fns, g) = build(
            "fn a(x: &Mystery) { x.frob(); }\n\
             #[cfg(test)]\nmod tests {\n    struct P;\n    impl P { fn frob(&self) {} }\n}\n",
        );
        let a = idx(&fns, "a");
        assert!(g.edges[a].is_empty(), "{:?}", g.edges[a]);
    }

    #[test]
    fn reachability_with_parents() {
        let (_, _, fns, g) = build("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn d() {}\n");
        let (seen, parent) = g.reachable(&[idx(&fns, "a")]);
        assert!(seen.contains(&idx(&fns, "c")));
        assert!(!seen.contains(&idx(&fns, "d")));
        assert_eq!(parent[&idx(&fns, "c")], idx(&fns, "b"));
    }

    #[test]
    fn raw_index_sites_are_extracted() {
        let (files, _, fns, _) = build("fn a(xs: &[usize], i: usize) -> usize { xs[i] }\n");
        let f = &fns[idx(&fns, "a")];
        let calls = extract_calls(&files[0].tokens, f.body.clone().unwrap());
        assert!(calls.iter().any(|c| matches!(c, Call::Index { .. })));
    }
}
