//! The bounded concurrency model checker: a depth-first, preemption-bounded
//! exhaustive exploration of thread interleavings over the shim primitives in
//! [`crate::sync`] and [`crate::thread`].
//!
//! # Architecture
//!
//! Code under test runs on real OS threads, but every synchronization
//! operation (atomic load/store/rmw, mutex lock/unlock, condvar wait/notify,
//! spawn/join/yield) is a *yield point*: the thread parks and a driver (the
//! thread that called [`check`]) decides which thread performs its pending
//! operation next. Each such decision is a choice point in a depth-first
//! search; after an execution completes, the driver backtracks to the deepest
//! choice point with an unexplored alternative and replays. Exploration is
//! exhaustive up to the configured preemption bound (the CHESS result: most
//! concurrency bugs manifest within very few preemptions).
//!
//! # The simplified memory model
//!
//! Each atomic location keeps its full modification order (the list of values
//! ever stored). Which of those values a load may observe is governed by
//! per-thread vector clocks:
//!
//! * A thread always observes its **own** stores, and never re-reads a value
//!   older than one it has already read from the same location.
//! * A store (of **any** ordering) that *happens before* a load — through
//!   spawn/join edges, mutex hand-offs, or acquired `Release` messages — is a
//!   visibility floor: the load cannot observe anything older (C11 write-read
//!   coherence).
//! * A **`Release`-class store** additionally carries a *message*: the
//!   storing thread's full vector clock. An **`Acquire`-class load** that
//!   reads it joins that clock (it synchronizes-with the store), extending
//!   happens-before — and with it, the visibility floors for *other*
//!   locations. A `Relaxed` store carries no message and a `Relaxed` load
//!   joins nothing: weakening either side severs the edge, and the checker
//!   then explores executions where dependent locations read stale values.
//! * Absent happens-before, a load may observe stale values — but only
//!   boundedly often per location (the *bounded staleness* rule,
//!   [`Builder::stale_read_bound`]): stores become visible in finite time,
//!   so spin loops terminate and exploration stays finite.
//! * Read-modify-writes always operate on the newest value in modification
//!   order and continue the release sequence of the store they replace.
//! * `SeqCst` is treated as `AcqRel`; no total order over `SeqCst` accesses
//!   is modeled, and there are no stand-alone fences.
//!
//! A blocked state with no runnable thread (including a condvar wait that no
//! remaining thread can ever notify — a missed wakeup) is reported as a
//! deadlock, with the full interleaving that led to it.

use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{
    Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsMutexGuard, OnceLock,
};

/// Name prefix of the OS threads running model executions; the process-wide
/// panic hook suppresses default panic output for these threads (panics are
/// reported through [`Failure`] instead).
const MODEL_THREAD_PREFIX: &str = "drom-verify-model";

// ---------------------------------------------------------------------------
// Public configuration and results
// ---------------------------------------------------------------------------

/// Exploration limits. The defaults suit small protocol tests (2–4 threads,
/// a few dozen yield points per thread).
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum number of *preemptions* per execution: context switches away
    /// from a thread that was still runnable and had not yielded. Exploration
    /// is exhaustive over all schedules within this bound.
    pub preemption_bound: usize,
    /// Hard cap on the number of executions; exceeding it is an error (the
    /// test is too big to be exhaustively checked within budget).
    pub max_executions: u64,
    /// Hard cap on yield points in a single execution (livelock guard).
    pub max_steps: usize,
    /// Bounded staleness: how many consecutive times a thread may re-read a
    /// non-newest value from the same location before the checker forces the
    /// newest one. Models the C11 forward-progress assumption that stores
    /// become visible in finite time (keeps spin loops finite).
    pub stale_read_bound: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: 2,
            max_executions: 2_000_000,
            max_steps: 20_000,
            stale_read_bound: 2,
        }
    }
}

/// Successful exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of complete executions explored.
    pub executions: u64,
    /// Deepest schedule (yield-point count) seen.
    pub max_depth: usize,
}

/// A property violation, with the concrete interleaving that produced it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong: a panic message, a deadlock description, or an
    /// exploration-budget overrun.
    pub cause: String,
    /// The interleaving trace: one line per executed operation.
    pub trace: Vec<String>,
    /// Executions completed before the failing one.
    pub executions: u64,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model check failed after {} execution(s): {}",
            self.executions, self.cause
        )?;
        writeln!(f, "interleaving ({} steps):", self.trace.len())?;
        for (i, line) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:4}  {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Failure {}

impl Builder {
    /// New builder with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the preemption bound.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Sets the execution budget.
    pub fn max_executions(mut self, max: u64) -> Self {
        self.max_executions = max;
        self
    }

    /// Explores every interleaving of `f` (within the preemption bound).
    ///
    /// `f` is re-run once per execution and must create all shared state
    /// inside the closure (state captured from outside the closure leaks
    /// across executions). Returns the first violation found, or exploration
    /// statistics if every interleaving satisfies the program's assertions.
    pub fn check<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_filter();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut schedule: Vec<ChoicePoint> = Vec::new();
        let mut executions: u64 = 0;
        let mut max_depth = 0usize;
        loop {
            executions += 1;
            if executions > self.max_executions {
                return Err(Failure {
                    cause: format!(
                        "execution budget ({}) exhausted before exploration completed; \
                         raise max_executions or shrink the test",
                        self.max_executions
                    ),
                    trace: Vec::new(),
                    executions: executions - 1,
                });
            }
            match run_execution(self, &mut schedule, &f) {
                ExecEnd::Ok { depth } => max_depth = max_depth.max(depth),
                ExecEnd::Failed { cause, trace } => {
                    return Err(Failure {
                        cause,
                        trace,
                        executions: executions - 1,
                    })
                }
            }
            // Backtrack: bump the deepest choice point with an unexplored
            // alternative; drop exhausted tail points.
            loop {
                match schedule.last_mut() {
                    None => {
                        return Ok(Report {
                            executions,
                            max_depth,
                        })
                    }
                    Some(cp) if cp.chosen + 1 < cp.n_options => {
                        cp.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        schedule.pop();
                    }
                }
            }
        }
    }
}

/// [`Builder::check`] with default limits.
pub fn check<F>(f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

// ---------------------------------------------------------------------------
// Model state
// ---------------------------------------------------------------------------

/// One store in a location's modification order.
#[derive(Debug)]
struct StoreRecord {
    value: u64,
    tid: usize,
    /// The writer's clock component for itself at store time (happens-before
    /// test: the store is ordered before a load iff the loader's clock covers
    /// this stamp).
    when_stamp: u64,
    /// `Some` for `Release`-class stores: the full clock published with the
    /// store, joined by `Acquire` loads that read it.
    msg: Option<VClock>,
}

#[derive(Debug, Default)]
struct LocationState {
    stores: Vec<StoreRecord>,
}

#[derive(Debug, Default)]
struct MutexState {
    holder: Option<usize>,
    /// Clock released by the last unlocker; joined on every acquisition.
    clock: VClock,
}

#[derive(Debug, Default)]
struct CondvarState {
    waiters: Vec<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingOp {
    AtomicLoad { loc: usize, ord: Ordering },
    AtomicStore { loc: usize, ord: Ordering, val: u64 },
    AtomicRmw { loc: usize, ord: Ordering, add: u64 },
    MutexLock { id: usize },
    MutexUnlock { id: usize },
    CondWait { cv: usize, mutex: usize },
    CondNotifyAll { cv: usize },
    CondNotifyOne { cv: usize },
    Join { target: usize },
    Yield,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Executing user code between yield points (counted in `in_flight`).
    Running,
    /// Parked with a pending operation, waiting to be scheduled.
    Ready,
    /// Parked inside a condvar wait; not runnable until notified.
    Waiting {
        mutex: usize,
    },
    /// Notified; runnable as soon as its mutex is free.
    Reacquiring {
        mutex: usize,
    },
    Finished,
}

#[derive(Debug)]
struct ThreadInfo {
    clock: VClock,
    status: Status,
    pending: Option<PendingOp>,
    /// Result of the last executed operation (load/rmw value), delivered to
    /// the thread on grant.
    result: u64,
    /// Set by `yield_now`; cleared when any other thread executes a step.
    yielded: bool,
    /// Per-location index of the newest modification-order entry this thread
    /// has read (read coherence floor).
    read_floors: HashMap<usize, usize>,
    /// Per-location count of consecutive stale (non-newest) reads, for the
    /// bounded-staleness rule.
    stale_reads: HashMap<usize, usize>,
}

impl ThreadInfo {
    fn new(clock: VClock) -> Self {
        ThreadInfo {
            clock,
            status: Status::Running,
            pending: None,
            result: 0,
            yielded: false,
            read_floors: HashMap::new(),
            stale_reads: HashMap::new(),
        }
    }
}

#[derive(Default)]
struct ModelState {
    threads: Vec<ThreadInfo>,
    locations: Vec<LocationState>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    /// Thread currently granted permission to run (consumed by that thread).
    granted: Option<usize>,
    /// Number of threads currently executing user code; the driver only makes
    /// scheduling decisions when this reaches zero.
    in_flight: usize,
    abort: bool,
    failure: Option<String>,
    trace: Vec<String>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Shared {
    state: OsMutex<ModelState>,
    /// Signalled when `in_flight` drops to zero or a failure is recorded.
    driver_cv: OsCondvar,
    /// Broadcast to parked controlled threads on every grant or abort.
    grant_cv: OsCondvar,
}

impl Shared {
    fn new() -> Self {
        Shared {
            state: OsMutex::new(ModelState::default()),
            driver_cv: OsCondvar::new(),
            grant_cv: OsCondvar::new(),
        }
    }

    fn lock(&self) -> OsMutexGuard<'_, ModelState> {
        // The model state mutex is only poisoned if the *driver* panics;
        // controlled threads never panic while holding it.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

// ---------------------------------------------------------------------------
// Thread-side context (used by the shims)
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct ThreadCtx {
    shared: Arc<Shared>,
    tid: usize,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<ThreadCtx>> = const { std::cell::RefCell::new(None) };
}

/// Token unwound through controlled threads when an execution is aborted.
struct AbortToken;

fn current_ctx() -> ThreadCtx {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("drom-verify shim primitive used outside model::check")
    })
}

/// Parks the calling controlled thread with `op` pending and returns the
/// operation's result once the driver has scheduled and executed it.
fn yield_op(op: PendingOp) -> u64 {
    let ctx = current_ctx();
    let me = ctx.tid;
    let mut st = ctx.shared.lock();
    if st.abort {
        drop(st);
        panic::panic_any(AbortToken);
    }
    st.threads[me].pending = Some(op);
    st.threads[me].status = Status::Ready;
    st.in_flight -= 1;
    ctx.shared.driver_cv.notify_all();
    loop {
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        if st.granted == Some(me) {
            st.granted = None;
            break;
        }
        st = ctx
            .shared
            .grant_cv
            .wait(st)
            .unwrap_or_else(|p| p.into_inner());
    }
    st.threads[me].result
}

// Shim entry points ---------------------------------------------------------

pub(crate) fn atomic_new(init: u64) -> usize {
    let ctx = current_ctx();
    let mut st = ctx.shared.lock();
    let me = ctx.tid;
    let id = st.locations.len();
    let mut clock = st.threads[me].clock.clone();
    clock.bump(me);
    st.threads[me].clock = clock.clone();
    let when_stamp = clock.get(me);
    // The initial value is visible to everyone who can reach the atomic:
    // treat creation as a Release publish by the creating thread.
    st.locations.push(LocationState {
        stores: vec![StoreRecord {
            value: init,
            tid: me,
            when_stamp,
            msg: Some(clock),
        }],
    });
    id
}

pub(crate) fn atomic_load(loc: usize, ord: Ordering) -> u64 {
    yield_op(PendingOp::AtomicLoad { loc, ord })
}

pub(crate) fn atomic_store(loc: usize, val: u64, ord: Ordering) {
    yield_op(PendingOp::AtomicStore { loc, ord, val });
}

pub(crate) fn atomic_rmw_add(loc: usize, add: u64, ord: Ordering) -> u64 {
    yield_op(PendingOp::AtomicRmw { loc, ord, add })
}

pub(crate) fn mutex_new() -> usize {
    let ctx = current_ctx();
    let mut st = ctx.shared.lock();
    let id = st.mutexes.len();
    st.mutexes.push(MutexState::default());
    id
}

pub(crate) fn mutex_lock(id: usize) {
    yield_op(PendingOp::MutexLock { id });
}

pub(crate) fn mutex_unlock(id: usize) {
    yield_op(PendingOp::MutexUnlock { id });
}

pub(crate) fn condvar_new() -> usize {
    let ctx = current_ctx();
    let mut st = ctx.shared.lock();
    let id = st.condvars.len();
    st.condvars.push(CondvarState::default());
    id
}

/// Atomically releases `mutex` and waits on `cv`; returns with the mutex
/// reacquired. Never times out (deadline-based waits are modeled as infinite:
/// a lost wakeup shows up as a reported deadlock, not a silent timeout).
pub(crate) fn condvar_wait(cv: usize, mutex: usize) {
    yield_op(PendingOp::CondWait { cv, mutex });
}

pub(crate) fn condvar_notify_all(cv: usize) {
    yield_op(PendingOp::CondNotifyAll { cv });
}

pub(crate) fn condvar_notify_one(cv: usize) {
    yield_op(PendingOp::CondNotifyOne { cv });
}

pub(crate) fn thread_yield_now() {
    yield_op(PendingOp::Yield);
}

pub(crate) fn thread_join(target: usize) {
    yield_op(PendingOp::Join { target });
}

/// Spawns a controlled thread running `body`. Runs inline in the parent's
/// window (spawning itself is not a schedulable step; the child's first yield
/// point is).
pub(crate) fn thread_spawn(body: Box<dyn FnOnce() + Send>) -> usize {
    let ctx = current_ctx();
    let mut st = ctx.shared.lock();
    let parent = ctx.tid;
    let tid = st.threads.len();
    let mut clock = st.threads[parent].clock.clone();
    clock.bump(parent);
    st.threads[parent].clock = clock.clone();
    clock.bump(tid);
    st.threads.push(ThreadInfo::new(clock));
    st.in_flight += 1;
    st.trace.push(format!("t{parent}: spawn t{tid}"));
    let shared = ctx.shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("{MODEL_THREAD_PREFIX}-{tid}"))
        .spawn(move || controlled_main(shared, tid, body))
        .expect("failed to spawn model thread");
    st.os_handles.push(handle);
    tid
}

fn controlled_main(shared: Arc<Shared>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(ThreadCtx {
            shared: shared.clone(),
            tid,
        });
    });
    let result = panic::catch_unwind(AssertUnwindSafe(body));
    let mut st = shared.lock();
    let final_clock = {
        let t = &mut st.threads[tid];
        t.status = Status::Finished;
        t.pending = None;
        t.clock.bump(tid);
        t.clock.clone()
    };
    st.threads[tid].clock = final_clock;
    st.in_flight -= 1;
    if let Err(payload) = result {
        if !payload.is::<AbortToken>() {
            // Prefer the formatted message captured by the panic hook
            // (assert_eq! and friends carry lazily-formatted payloads that
            // can't be downcast to a string).
            let msg = LAST_PANIC_MSG
                .with(|m| m.borrow_mut().take())
                .unwrap_or_else(|| panic_message(&payload));
            st.trace.push(format!("t{tid}: panicked: {msg}"));
            if st.failure.is_none() {
                st.failure = Some(format!("t{tid} panicked: {msg}"));
            }
        }
    }
    shared.driver_cv.notify_all();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// One recorded scheduling decision. Every yield point gets an entry (even
/// forced ones) so replays can verify the execution is deterministic.
#[derive(Debug, Clone, Copy)]
struct ChoicePoint {
    n_options: usize,
    chosen: usize,
}

/// A schedulable option: run `tid`'s pending op; for loads, read modification
/// order entry `read_idx`.
#[derive(Debug, Clone, Copy)]
struct Opt {
    tid: usize,
    read_idx: usize,
}

enum ExecEnd {
    Ok { depth: usize },
    Failed { cause: String, trace: Vec<String> },
}

fn run_execution(
    b: &Builder,
    schedule: &mut Vec<ChoicePoint>,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> ExecEnd {
    let shared = Arc::new(Shared::new());
    {
        let mut st = shared.lock();
        let mut clock = VClock::default();
        clock.bump(0);
        st.threads.push(ThreadInfo::new(clock));
        st.in_flight = 1;
        let f = f.clone();
        let shared2 = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("{MODEL_THREAD_PREFIX}-0"))
            .spawn(move || controlled_main(shared2, 0, Box::new(move || f())))
            .expect("failed to spawn model thread");
        st.os_handles.push(handle);
    }

    let mut last: Option<usize> = None;
    let mut preemptions = 0usize;
    let mut depth = 0usize;

    loop {
        let mut st = shared.lock();
        while st.in_flight > 0 {
            st = shared.driver_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if let Some(cause) = st.failure.take() {
            return finish_failed(&shared, st, cause);
        }
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            let handles = std::mem::take(&mut st.os_handles);
            drop(st);
            for h in handles {
                let _ = h.join();
            }
            return ExecEnd::Ok { depth };
        }
        if depth >= b.max_steps {
            return finish_failed(
                &shared,
                st,
                format!("step budget ({}) exceeded: possible livelock", b.max_steps),
            );
        }

        let at_bound = preemptions >= b.preemption_bound;
        let options = enumerate_options(&st, last, at_bound, b.stale_read_bound);
        if options.is_empty() {
            let blocked = describe_blocked(&st);
            return finish_failed(&shared, st, format!("deadlock: {blocked}"));
        }

        let choice = if depth < schedule.len() {
            let cp = schedule[depth];
            if cp.n_options != options.len() {
                return finish_failed(
                    &shared,
                    st,
                    format!(
                        "nondeterministic execution: replay step {depth} offered {} options, \
                         recorded {} — the code under test must be deterministic given a schedule",
                        options.len(),
                        cp.n_options
                    ),
                );
            }
            cp.chosen
        } else {
            schedule.push(ChoicePoint {
                n_options: options.len(),
                chosen: 0,
            });
            0
        };
        let opt = options[choice];
        depth += 1;

        if let Some(l) = last {
            if opt.tid != l && is_enabled(&st, l) && !st.threads[l].yielded {
                preemptions += 1;
            }
        }

        execute_op(&shared, &mut st, opt);
        last = Some(opt.tid);
    }
}

fn finish_failed(
    shared: &Arc<Shared>,
    mut st: OsMutexGuard<'_, ModelState>,
    cause: String,
) -> ExecEnd {
    st.abort = true;
    let trace = st.trace.clone();
    let handles = std::mem::take(&mut st.os_handles);
    shared.grant_cv.notify_all();
    drop(st);
    for h in handles {
        shared.grant_cv.notify_all();
        let _ = h.join();
    }
    ExecEnd::Failed { cause, trace }
}

/// Is `tid` able to execute its pending operation right now?
fn is_enabled(st: &ModelState, tid: usize) -> bool {
    let t = &st.threads[tid];
    match t.status {
        Status::Ready => match t.pending {
            Some(PendingOp::MutexLock { id }) => st.mutexes[id].holder.is_none(),
            Some(PendingOp::Join { target }) => st.threads[target].status == Status::Finished,
            Some(_) => true,
            None => false,
        },
        Status::Reacquiring { mutex } => st.mutexes[mutex].holder.is_none(),
        _ => false,
    }
}

fn enumerate_options(
    st: &ModelState,
    last: Option<usize>,
    at_bound: bool,
    stale_bound: usize,
) -> Vec<Opt> {
    let enabled: Vec<usize> = (0..st.threads.len())
        .filter(|&tid| is_enabled(st, tid))
        .collect();
    // At the preemption bound, the previously running thread must continue if
    // it can (switching away would be one preemption too many).
    let mut candidates: Vec<usize> = match last {
        Some(l) if at_bound && enabled.contains(&l) && !st.threads[l].yielded => vec![l],
        _ => enabled.clone(),
    };
    // A thread that called `yield_now` asked not to run until someone else
    // has; honor that whenever an alternative exists (bounds spin loops).
    if candidates.iter().any(|&t| !st.threads[t].yielded) {
        candidates.retain(|&t| !st.threads[t].yielded);
    }
    // Baseline schedule: keep running the last thread (minimizes preemptions,
    // approximates a sequentially consistent, run-to-completion execution);
    // for loads, read the newest value first.
    if let Some(l) = last {
        if let Some(pos) = candidates.iter().position(|&t| t == l) {
            candidates.remove(pos);
            candidates.insert(0, l);
        }
    }
    let mut options = Vec::new();
    for &tid in &candidates {
        match (st.threads[tid].status, st.threads[tid].pending) {
            (Status::Ready, Some(PendingOp::AtomicLoad { loc, .. })) => {
                let newest = st.locations[loc].stores.len() - 1;
                // Bounded staleness: after `stale_bound` consecutive stale
                // reads of this location, only the newest value is offered.
                let stale = st.threads[tid].stale_reads.get(&loc).copied().unwrap_or(0);
                let floor = if stale >= stale_bound {
                    newest
                } else {
                    readable_floor(st, tid, loc)
                };
                for idx in (floor..=newest).rev() {
                    options.push(Opt { tid, read_idx: idx });
                }
            }
            _ => options.push(Opt { tid, read_idx: 0 }),
        }
    }
    options
}

/// The oldest modification-order index a load by `tid` may observe.
fn readable_floor(st: &ModelState, tid: usize, loc: usize) -> usize {
    let t = &st.threads[tid];
    let mut floor = t.read_floors.get(&loc).copied().unwrap_or(0);
    for (idx, s) in st.locations[loc].stores.iter().enumerate().skip(floor) {
        // Write-read coherence: a store that happens-before the load (of any
        // ordering — the loader's clock covers the writer's stamp) cannot be
        // skipped over. Release vs Relaxed differ in the *message* an
        // Acquire load joins, not in this floor.
        if s.tid == tid || t.clock.get(s.tid) >= s.when_stamp {
            floor = idx;
        }
    }
    floor
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn execute_op(shared: &Arc<Shared>, st: &mut ModelState, opt: Opt) {
    let tid = opt.tid;
    // Another thread making progress re-arms previously yielded spinners.
    for (i, t) in st.threads.iter_mut().enumerate() {
        if i != tid {
            t.yielded = false;
        }
    }

    if let Status::Reacquiring { mutex } = st.threads[tid].status {
        st.mutexes[mutex].holder = Some(tid);
        let mclock = st.mutexes[mutex].clock.clone();
        st.threads[tid].clock.join(&mclock);
        st.trace.push(format!(
            "t{tid}: condvar wait resumed (mutex#{mutex} reacquired)"
        ));
        grant(shared, st, tid);
        return;
    }

    let op = st.threads[tid]
        .pending
        .take()
        .expect("scheduled thread has a pending op");
    match op {
        PendingOp::AtomicLoad { loc, ord } => {
            let idx = opt.read_idx;
            let newest = st.locations[loc].stores.len() - 1;
            let (value, msg) = {
                let s = &st.locations[loc].stores[idx];
                (s.value, s.msg.clone())
            };
            if is_acquire(ord) {
                if let Some(msg) = &msg {
                    st.threads[tid].clock.join(msg);
                }
            }
            let entry = st.threads[tid].read_floors.entry(loc).or_insert(0);
            *entry = (*entry).max(idx);
            let stale = st.threads[tid].stale_reads.entry(loc).or_insert(0);
            if idx < newest {
                *stale += 1;
            } else {
                *stale = 0;
            }
            st.threads[tid].result = value;
            st.trace.push(format!(
                "t{tid}: load a{loc} -> {value} ({ord:?}, mo#{idx} of {newest})"
            ));
            grant(shared, st, tid);
        }
        PendingOp::AtomicStore { loc, ord, val } => {
            st.threads[tid].clock.bump(tid);
            let clock = st.threads[tid].clock.clone();
            let when_stamp = clock.get(tid);
            let msg = is_release(ord).then_some(clock);
            let mo = st.locations[loc].stores.len();
            st.locations[loc].stores.push(StoreRecord {
                value: val,
                tid,
                when_stamp,
                msg,
            });
            st.trace
                .push(format!("t{tid}: store a{loc} <- {val} ({ord:?}, mo#{mo})"));
            grant(shared, st, tid);
        }
        PendingOp::AtomicRmw { loc, ord, add } => {
            // RMWs always read the newest value and continue the release
            // sequence of the store they replace.
            let newest = st.locations[loc].stores.len() - 1;
            let (old, prev_msg) = {
                let s = &st.locations[loc].stores[newest];
                (s.value, s.msg.clone())
            };
            if is_acquire(ord) {
                if let Some(msg) = &prev_msg {
                    st.threads[tid].clock.join(msg);
                }
            }
            st.threads[tid].clock.bump(tid);
            let clock = st.threads[tid].clock.clone();
            let when_stamp = clock.get(tid);
            let msg = if is_release(ord) {
                Some(clock)
            } else {
                prev_msg
            };
            let new = old.wrapping_add(add);
            st.locations[loc].stores.push(StoreRecord {
                value: new,
                tid,
                when_stamp,
                msg,
            });
            let entry = st.threads[tid].read_floors.entry(loc).or_insert(0);
            *entry = (*entry).max(newest + 1);
            st.threads[tid].result = old;
            st.trace.push(format!(
                "t{tid}: rmw a{loc} {old} -> {new} ({ord:?}, mo#{})",
                newest + 1
            ));
            grant(shared, st, tid);
        }
        PendingOp::MutexLock { id } => {
            debug_assert!(st.mutexes[id].holder.is_none());
            st.mutexes[id].holder = Some(tid);
            let mclock = st.mutexes[id].clock.clone();
            st.threads[tid].clock.join(&mclock);
            st.trace.push(format!("t{tid}: lock mutex#{id}"));
            grant(shared, st, tid);
        }
        PendingOp::MutexUnlock { id } => {
            st.mutexes[id].holder = None;
            st.threads[tid].clock.bump(tid);
            let clock = st.threads[tid].clock.clone();
            st.mutexes[id].clock.join(&clock);
            st.trace.push(format!("t{tid}: unlock mutex#{id}"));
            grant(shared, st, tid);
        }
        PendingOp::CondWait { cv, mutex } => {
            // Atomically: release the mutex and park on the condvar. The
            // thread is *not* granted; it resumes only after a notification
            // and reacquisition.
            st.mutexes[mutex].holder = None;
            st.threads[tid].clock.bump(tid);
            let clock = st.threads[tid].clock.clone();
            st.mutexes[mutex].clock.join(&clock);
            st.threads[tid].status = Status::Waiting { mutex };
            st.condvars[cv].waiters.push(tid);
            st.trace.push(format!(
                "t{tid}: wait condvar#{cv} (released mutex#{mutex})"
            ));
        }
        PendingOp::CondNotifyAll { cv } => {
            let waiters = std::mem::take(&mut st.condvars[cv].waiters);
            st.trace.push(format!(
                "t{tid}: notify_all condvar#{cv} (woke {:?})",
                waiters
            ));
            for w in waiters {
                if let Status::Waiting { mutex } = st.threads[w].status {
                    st.threads[w].status = Status::Reacquiring { mutex };
                }
            }
            grant(shared, st, tid);
        }
        PendingOp::CondNotifyOne { cv } => {
            let woke = if st.condvars[cv].waiters.is_empty() {
                None
            } else {
                Some(st.condvars[cv].waiters.remove(0))
            };
            st.trace
                .push(format!("t{tid}: notify_one condvar#{cv} (woke {woke:?})"));
            if let Some(w) = woke {
                if let Status::Waiting { mutex } = st.threads[w].status {
                    st.threads[w].status = Status::Reacquiring { mutex };
                }
            }
            grant(shared, st, tid);
        }
        PendingOp::Join { target } => {
            let tclock = st.threads[target].clock.clone();
            st.threads[tid].clock.join(&tclock);
            st.trace.push(format!("t{tid}: join t{target}"));
            grant(shared, st, tid);
        }
        PendingOp::Yield => {
            st.threads[tid].yielded = true;
            st.trace.push(format!("t{tid}: yield"));
            grant(shared, st, tid);
        }
    }
}

fn grant(shared: &Arc<Shared>, st: &mut ModelState, tid: usize) {
    st.threads[tid].status = Status::Running;
    st.granted = Some(tid);
    st.in_flight += 1;
    shared.grant_cv.notify_all();
}

fn describe_blocked(st: &ModelState) -> String {
    let mut parts = Vec::new();
    for (tid, t) in st.threads.iter().enumerate() {
        let what = match (t.status, t.pending) {
            (Status::Finished, _) => continue,
            (Status::Waiting { mutex }, _) => {
                format!("t{tid} waiting on a condvar (mutex#{mutex}) with no future notifier")
            }
            (Status::Reacquiring { mutex }, _) => {
                format!("t{tid} reacquiring mutex#{mutex}")
            }
            (_, Some(PendingOp::MutexLock { id })) => {
                format!("t{tid} blocked locking mutex#{id}")
            }
            (_, Some(PendingOp::Join { target })) => {
                format!("t{tid} joining unfinished t{target}")
            }
            (s, p) => format!("t{tid} in state {s:?} pending {p:?}"),
        };
        parts.push(what);
    }
    parts.join("; ")
}

// ---------------------------------------------------------------------------
// Panic-output suppression for model threads
// ---------------------------------------------------------------------------

thread_local! {
    /// The formatted message of the last panic on this (model) thread,
    /// captured by the hook because formatted panic payloads are not
    /// downcastable to a string.
    static LAST_PANIC_MSG: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

fn install_panic_filter() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let model_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(MODEL_THREAD_PREFIX));
            if model_thread {
                // Suppress default output (the checker reports the failure
                // with its interleaving instead), but keep the message.
                LAST_PANIC_MSG.with(|m| *m.borrow_mut() = Some(info.to_string()));
            } else {
                previous(info);
            }
        }));
    });
}
