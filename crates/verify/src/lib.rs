//! `drom-verify`: correctness tooling for the DROM workspace.
//!
//! Two prongs:
//!
//! * [`model`] + [`sync`] + [`thread`] — a vendored mini-`loom`: a bounded,
//!   exhaustive concurrency model checker. `drom-shmem` is generic over its
//!   sync primitives (`cfg(drom_verify)` swaps `std`/`parking_lot` for the
//!   shims here), letting model-check tests in `crates/shmem/tests/`
//!   exhaustively explore the registry protocol's interleavings.
//! * [`lint`] + [`lex`] + [`items`] + [`callgraph`] + [`rules`] — a
//!   source-level static analysis engine (`cargo run -p drom-verify --bin
//!   drom_lint`) for invariants the compiler can't enforce. Line rules check
//!   justified `Ordering::Relaxed`, no `partial_cmp`-fallback sorting, and
//!   `// SAFETY:` comments on `unsafe`; graph rules lex the workspace, build
//!   an approximate call graph, and check the *transitive closure* of the
//!   scheduler decision entry points for determinism taint, hot-path
//!   allocations, and panic-freedom, ratcheting against a committed
//!   baseline.
//!
//! See `docs/verification.md` for the memory model, the static-analysis
//! taint model, and how to add a rule or model-check test.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod items;
pub mod lex;
pub mod lint;
pub mod model;
pub mod rules;
pub mod sync;
pub mod thread;

pub use model::{check, Builder, Failure, Report};
