//! `drom-verify`: correctness tooling for the DROM workspace.
//!
//! Two prongs:
//!
//! * [`model`] + [`sync`] + [`thread`] — a vendored mini-`loom`: a bounded,
//!   exhaustive concurrency model checker. `drom-shmem` is generic over its
//!   sync primitives (`cfg(drom_verify)` swaps `std`/`parking_lot` for the
//!   shims here), letting model-check tests in `crates/shmem/tests/`
//!   exhaustively explore the registry protocol's interleavings.
//! * [`lint`] — source-level workspace lints (`cargo run -p drom-verify
//!   --bin drom_lint`) for invariants the compiler can't enforce: justified
//!   `Ordering::Relaxed`, no `partial_cmp`-fallback sorting, no floats in
//!   scheduler decision paths, `// SAFETY:` comments on `unsafe`.
//!
//! See `docs/verification.md` for the memory model, its limits, and how to
//! add a model-check test.

#![forbid(unsafe_code)]

pub mod lint;
pub mod model;
pub mod sync;
pub mod thread;

pub use model::{check, Builder, Failure, Report};
