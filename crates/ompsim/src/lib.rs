//! An OpenMP/OmpSs-like shared-memory runtime with OMPT-style tool callbacks.
//!
//! The paper integrates DROM with OpenMP through OMPT: "If the OpenMP runtime
//! implements this interface, DLB can register itself as a monitoring tool when
//! the library is loaded. Then, DLB can set callbacks that will be
//! automatically invoked for each parallel construct and implicit task
//! creation allowing to modify the number of resources accordingly"
//! (Section 4.1). Rust has no OpenMP, so this crate provides the minimal
//! runtime that honours the same contract:
//!
//! * a persistent worker pool executing fork-join *parallel regions*
//!   ([`OmpRuntime::parallel`], [`OmpRuntime::parallel_for`]);
//! * a mutable team size (`omp_set_num_threads` ↔
//!   [`OmpRuntime::set_num_threads`]) that only takes effect at the **next**
//!   parallel construct — exactly the malleability latency the paper accepts;
//! * per-thread CPU binding derived from a [`CpuSet`](drom_cpuset::CpuSet);
//! * an OMPT-style tool interface ([`OmptTool`]) with `parallel_begin`,
//!   `implicit_task` and `parallel_end` callbacks;
//! * the DROM tool ([`DromOmptTool`]) that polls DROM at every parallel
//!   construct and adapts the team size and binding, making any application
//!   running on this runtime malleable with no source changes.
//!
//! # Example
//!
//! ```
//! use drom_ompsim::OmpRuntime;
//!
//! let rt = OmpRuntime::new(4);
//! let sum: usize = rt.parallel_reduce_sum(0..100, |i| i);
//! assert_eq!(sum, (0..100).sum());
//! ```

#![deny(unsafe_code)]

pub mod drom_tool;
pub mod ompt;
pub mod runtime;
pub mod schedule;

pub use drom_tool::DromOmptTool;
pub use ompt::{OmptEvent, OmptRecorder, OmptTool};
pub use runtime::{OmpRuntime, ParallelContext, TeamSettings};
pub use schedule::Schedule;
