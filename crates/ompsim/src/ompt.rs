//! The OMPT-style tool interface.
//!
//! OMPT (OpenMP Tools, Technical Report 4 / OpenMP 5.0) lets an external tool
//! register callbacks that the runtime invokes on parallel-region and implicit
//! task events. DLB uses exactly three of them to implement DROM and LeWI
//! without touching the application. [`OmptTool`] is that interface;
//! [`OmptRecorder`] is a simple recording implementation used by tests and by
//! the overhead benchmarks.

use std::sync::Arc;

use parking_lot::Mutex;

/// Events delivered to an OMPT tool, in the order the runtime produces them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmptEvent {
    /// A parallel region is about to start with the given team size.
    ParallelBegin {
        /// Identifier of the region (monotonically increasing).
        region_id: u64,
        /// Number of threads the region will run with.
        team_size: usize,
    },
    /// An implicit task (one team member) started executing.
    ImplicitTask {
        /// Region the task belongs to.
        region_id: u64,
        /// Team-local thread number.
        thread_num: usize,
    },
    /// A parallel region finished.
    ParallelEnd {
        /// Identifier of the region.
        region_id: u64,
    },
}

/// An OMPT tool: the runtime invokes these callbacks around every parallel
/// construct. Implementations must be thread-safe — `implicit_task` is called
/// concurrently from every team member.
pub trait OmptTool: Send + Sync {
    /// Called on the master thread right before a team is formed. This is the
    /// malleability point used by DROM: the tool may change the runtime's team
    /// size and binding here and the *current* region already honours it.
    fn parallel_begin(&self, region_id: u64, requested_team_size: usize);

    /// Called by each team member when it starts its implicit task.
    fn implicit_task(&self, region_id: u64, thread_num: usize);

    /// Called on the master thread after the team joined.
    fn parallel_end(&self, region_id: u64);
}

/// A tool that records every event it receives; useful in tests and to measure
/// the pure callback overhead.
#[derive(Default)]
pub struct OmptRecorder {
    events: Mutex<Vec<OmptEvent>>,
}

impl OmptRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The recorded events so far (implicit-task events of the same region may
    /// appear in any order relative to each other).
    pub fn events(&self) -> Vec<OmptEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl OmptTool for OmptRecorder {
    fn parallel_begin(&self, region_id: u64, requested_team_size: usize) {
        self.events.lock().push(OmptEvent::ParallelBegin {
            region_id,
            team_size: requested_team_size,
        });
    }

    fn implicit_task(&self, region_id: u64, thread_num: usize) {
        self.events.lock().push(OmptEvent::ImplicitTask {
            region_id,
            thread_num,
        });
    }

    fn parallel_end(&self, region_id: u64) {
        self.events
            .lock()
            .push(OmptEvent::ParallelEnd { region_id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_collects_events_in_order() {
        let recorder = OmptRecorder::new();
        recorder.parallel_begin(1, 4);
        recorder.implicit_task(1, 0);
        recorder.implicit_task(1, 1);
        recorder.parallel_end(1);
        let events = recorder.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[0],
            OmptEvent::ParallelBegin {
                region_id: 1,
                team_size: 4
            }
        );
        assert_eq!(events[3], OmptEvent::ParallelEnd { region_id: 1 });
        assert!(!recorder.is_empty());
        assert_eq!(recorder.len(), 4);
    }
}
