//! The fork-join runtime: a persistent worker pool, parallel regions and
//! work-sharing loops.
//!
//! The runtime mirrors the parts of an OpenMP implementation that matter for
//! DROM:
//!
//! * the team size is read **when a parallel region starts**, so changes made
//!   through [`TeamSettings`] (by the application, by an OMPT tool, or by the
//!   DROM integration) take effect at the next `#pragma omp parallel`, exactly
//!   like `omp_set_num_threads`;
//! * every team member is (logically) bound to one CPU of the current binding
//!   mask, reproducing DLB's "each active thread will be pinned to a specific
//!   CPU to avoid any oversubscription";
//! * an OMPT tool registered with [`OmpRuntime::register_tool`] receives
//!   `parallel_begin`, `implicit_task` and `parallel_end` callbacks.
//!
//! Nested parallelism is not supported: a `parallel` call made from inside a
//! region runs its body sequentially on the calling thread (the OpenMP default
//! of `OMP_NESTED=false`).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

use drom_cpuset::CpuSet;

use crate::ompt::OmptTool;
use crate::schedule::Schedule;

thread_local! {
    /// Set while the current thread executes inside a parallel region, so
    /// nested `parallel` calls degrade to sequential execution.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Mutable team configuration shared between the runtime, the application and
/// any registered tool (this is what the DROM integration adjusts).
pub struct TeamSettings {
    pool_size: usize,
    max_threads: AtomicUsize,
    binding: Mutex<CpuSet>,
}

impl TeamSettings {
    fn new(pool_size: usize) -> Self {
        TeamSettings {
            pool_size,
            max_threads: AtomicUsize::new(pool_size),
            binding: Mutex::new(CpuSet::first_n(pool_size)),
        }
    }

    /// Number of worker threads the pool was created with (the hard ceiling).
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Sets the team size used by the *next* parallel region
    /// (`omp_set_num_threads`). Values are clamped to `1..=pool_size`.
    pub fn set_num_threads(&self, n: usize) {
        let clamped = n.clamp(1, self.pool_size);
        self.max_threads.store(clamped, Ordering::Release);
    }

    /// The team size the next parallel region will use (`omp_get_max_threads`).
    pub fn max_threads(&self) -> usize {
        self.max_threads.load(Ordering::Acquire)
    }

    /// Sets the CPU binding mask without changing the team size.
    pub fn set_binding(&self, mask: &CpuSet) {
        *self.binding.lock() = mask.clone();
    }

    /// The current binding mask.
    pub fn binding(&self) -> CpuSet {
        self.binding.lock().clone()
    }

    /// Applies a DROM mask update: the team size becomes the number of CPUs in
    /// the mask and the binding follows the mask. This is the action the paper
    /// describes as "a call to `omp_set_num_threads` and, optionally, a rebind
    /// of threads".
    pub fn apply_mask(&self, mask: &CpuSet) {
        self.set_binding(mask);
        self.set_num_threads(mask.count().max(1));
    }
}

/// Per-thread view of the team inside a parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelContext {
    /// Team-local thread number (`omp_get_thread_num`).
    pub thread_num: usize,
    /// Team size of this region (`omp_get_num_threads`).
    pub team_size: usize,
    /// Identifier of the region (monotonically increasing).
    pub region_id: u64,
    /// CPU this team member is bound to, if the binding mask has enough CPUs.
    pub bound_cpu: Option<usize>,
}

/// A region handed to the worker pool. The closure reference is lifetime-erased
/// to `'static`; soundness is guaranteed because `OmpRuntime::parallel` does
/// not return before every team member finished executing it.
struct RegionJob {
    func: &'static (dyn Fn(&ParallelContext) + Sync),
    team_size: usize,
    region_id: u64,
    binding: Vec<Option<usize>>,
    tool: Option<Arc<dyn OmptTool>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

impl RegionJob {
    fn run_member(&self, thread_num: usize) {
        let ctx = ParallelContext {
            thread_num,
            team_size: self.team_size,
            region_id: self.region_id,
            bound_cpu: self.binding.get(thread_num).copied().flatten(),
        };
        if let Some(tool) = &self.tool {
            tool.implicit_task(self.region_id, thread_num);
        }
        IN_PARALLEL.with(|flag| flag.set(true));
        (self.func)(&ctx);
        IN_PARALLEL.with(|flag| flag.set(false));
    }

    fn finish_member(&self) {
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait_workers(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            self.done.wait(&mut remaining);
        }
    }
}

enum WorkerMsg {
    Run {
        job: Arc<RegionJob>,
        thread_num: usize,
    },
    Shutdown,
}

struct Worker {
    tx: Sender<WorkerMsg>,
    handle: Option<JoinHandle<()>>,
}

/// The OpenMP-like runtime: a worker pool plus team settings.
pub struct OmpRuntime {
    settings: Arc<TeamSettings>,
    workers: Vec<Worker>,
    tool: Mutex<Option<Arc<dyn OmptTool>>>,
    next_region: AtomicU64,
    regions_executed: AtomicU64,
}

impl OmpRuntime {
    /// Creates a runtime with a pool of `pool_size` worker threads (the master
    /// thread participates in every team as thread 0, so the pool only needs
    /// `pool_size - 1` spawned workers).
    ///
    /// # Panics
    ///
    /// Panics if `pool_size == 0`.
    pub fn new(pool_size: usize) -> Self {
        assert!(pool_size > 0, "the team needs at least one thread");
        let workers = (1..pool_size)
            .map(|i| {
                let (tx, rx) = unbounded::<WorkerMsg>();
                let handle = std::thread::Builder::new()
                    .name(format!("omp-worker-{i}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                WorkerMsg::Run { job, thread_num } => {
                                    job.run_member(thread_num);
                                    job.finish_member();
                                }
                                WorkerMsg::Shutdown => break,
                            }
                        }
                    })
                    .expect("spawning an OpenMP-like worker");
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        OmpRuntime {
            settings: Arc::new(TeamSettings::new(pool_size)),
            workers,
            tool: Mutex::new(None),
            next_region: AtomicU64::new(1),
            regions_executed: AtomicU64::new(0),
        }
    }

    /// The shared team settings (used by tools, the DROM integration and the
    /// application itself).
    pub fn settings(&self) -> &Arc<TeamSettings> {
        &self.settings
    }

    /// Shorthand for [`TeamSettings::set_num_threads`].
    pub fn set_num_threads(&self, n: usize) {
        self.settings.set_num_threads(n);
    }

    /// Shorthand for [`TeamSettings::max_threads`].
    pub fn max_threads(&self) -> usize {
        self.settings.max_threads()
    }

    /// Registers (or replaces) the OMPT tool.
    pub fn register_tool(&self, tool: Arc<dyn OmptTool>) {
        *self.tool.lock() = Some(tool);
    }

    /// Removes the registered OMPT tool, if any.
    pub fn unregister_tool(&self) {
        *self.tool.lock() = None;
    }

    /// Number of parallel regions executed so far.
    pub fn regions_executed(&self) -> u64 {
        // SAFETY(ordering): statistics read; approximate totals suffice.
        self.regions_executed.load(Ordering::Relaxed)
    }

    /// Executes `f` once per team member, fork-join style
    /// (`#pragma omp parallel`).
    ///
    /// The team size is the current `max_threads` value; the registered OMPT
    /// tool's `parallel_begin` runs first and may still change it (that is the
    /// DROM malleability point). Nested calls run sequentially.
    pub fn parallel<F>(&self, f: F)
    where
        F: Fn(&ParallelContext) + Sync,
    {
        // SAFETY(ordering): region ids only need uniqueness, and the regions
        // counter is statistics; neither orders any other memory access.
        let region_id = self.next_region.fetch_add(1, Ordering::Relaxed);
        self.regions_executed.fetch_add(1, Ordering::Relaxed);

        // Nested region: run sequentially on the calling thread.
        if IN_PARALLEL.with(|flag| flag.get()) {
            let ctx = ParallelContext {
                thread_num: 0,
                team_size: 1,
                region_id,
                bound_cpu: None,
            };
            f(&ctx);
            return;
        }

        let tool = self.tool.lock().clone();
        if let Some(tool) = &tool {
            tool.parallel_begin(region_id, self.settings.max_threads());
        }
        // Read the team configuration *after* the tool ran: a DROM update
        // applied in parallel_begin is honoured by this very region.
        let team_size = self.settings.max_threads().min(self.settings.pool_size);
        let binding_mask = self.settings.binding();
        let binding: Vec<Option<usize>> = (0..team_size).map(|i| binding_mask.nth(i)).collect();

        let func: &(dyn Fn(&ParallelContext) + Sync) = &f;
        // SAFETY: the reference to `f` is erased to 'static so it can travel
        // to the worker threads, but `parallel` blocks until every team
        // member has run it (wait_workers below), so it never outlives `f`.
        #[allow(unsafe_code)]
        let func: &'static (dyn Fn(&ParallelContext) + Sync) = unsafe { std::mem::transmute(func) };

        let job = Arc::new(RegionJob {
            func,
            team_size,
            region_id,
            binding,
            tool: tool.clone(),
            remaining: Mutex::new(team_size.saturating_sub(1)),
            done: Condvar::new(),
        });

        for thread_num in 1..team_size {
            self.workers[thread_num - 1]
                .tx
                .send(WorkerMsg::Run {
                    job: Arc::clone(&job),
                    thread_num,
                })
                .expect("worker thread alive");
        }
        // The master is team member 0.
        job.run_member(0);
        job.wait_workers();

        if let Some(tool) = &tool {
            tool.parallel_end(region_id);
        }
    }

    /// Work-sharing loop over `range` (`#pragma omp parallel for`).
    ///
    /// `body` is called once per iteration index, from whichever team member
    /// the schedule assigns it to.
    pub fn parallel_for<F>(&self, range: std::ops::Range<usize>, schedule: Schedule, body: F)
    where
        F: Fn(usize) + Sync,
    {
        let total = range.end.saturating_sub(range.start);
        let start = range.start;
        match schedule {
            Schedule::Static => {
                self.parallel(|ctx| {
                    let (lo, hi) = Schedule::static_block(total, ctx.team_size, ctx.thread_num);
                    for i in lo..hi {
                        body(start + i);
                    }
                });
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let cursor = AtomicUsize::new(0);
                // SAFETY(ordering): the cursor only partitions indexes (the
                // fetch_add makes claims disjoint); workers never read each
                // other's data through it.
                self.parallel(|_ctx| loop {
                    let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= total {
                        break;
                    }
                    let hi = (lo + chunk).min(total);
                    for i in lo..hi {
                        body(start + i);
                    }
                });
            }
            Schedule::Guided => {
                let cursor = AtomicUsize::new(0);
                // SAFETY(ordering): as in Dynamic — the cursor partitions
                // indexes, the preview load is only a chunk-size heuristic,
                // and the fetch_add is what makes claims disjoint.
                self.parallel(|ctx| loop {
                    let lo = cursor.load(Ordering::Relaxed);
                    if lo >= total {
                        break;
                    }
                    let chunk = Schedule::guided_chunk(total - lo, ctx.team_size);
                    // SAFETY(ordering): the fetch_add makes claims disjoint.
                    let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= total {
                        break;
                    }
                    let hi = (lo + chunk).min(total);
                    for i in lo..hi {
                        body(start + i);
                    }
                });
            }
        }
    }

    /// Convenience parallel map-reduce: applies `map` to every index of `range`
    /// and sums the results (static schedule).
    pub fn parallel_reduce_sum<T, F>(&self, range: std::ops::Range<usize>, map: F) -> T
    where
        T: Send + std::iter::Sum<T>,
        F: Fn(usize) -> T + Sync,
    {
        let total = range.end.saturating_sub(range.start);
        let start = range.start;
        let partials: Mutex<Vec<T>> = Mutex::new(Vec::new());
        self.parallel(|ctx| {
            let (lo, hi) = Schedule::static_block(total, ctx.team_size, ctx.thread_num);
            let partial: T = (lo..hi).map(|i| map(start + i)).sum();
            partials.lock().push(partial);
        });
        partials.into_inner().into_iter().sum()
    }
}

impl Drop for OmpRuntime {
    fn drop(&mut self) {
        for worker in &self.workers {
            let _ = worker.tx.send(WorkerMsg::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ompt::{OmptEvent, OmptRecorder};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parallel_runs_every_team_member_once() {
        let rt = OmpRuntime::new(4);
        let counter = AtomicUsize::new(0);
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        // SAFETY(ordering): test counter; the region join publishes it
        // before the assertion reads it.
        rt.parallel(|ctx| {
            counter.fetch_add(1, Ordering::Relaxed);
            seen.lock().push(ctx.thread_num);
            assert_eq!(ctx.team_size, 4);
        });
        // SAFETY(ordering): read after the region join; no thread is writing.
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        let mut threads = seen.into_inner();
        threads.sort_unstable();
        assert_eq!(threads, vec![0, 1, 2, 3]);
        assert_eq!(rt.regions_executed(), 1);
    }

    #[test]
    fn set_num_threads_takes_effect_at_next_region() {
        let rt = OmpRuntime::new(8);
        let observed = Mutex::new(Vec::new());
        rt.parallel(|ctx| {
            if ctx.thread_num == 0 {
                observed.lock().push(ctx.team_size);
            }
        });
        rt.set_num_threads(3);
        rt.parallel(|ctx| {
            if ctx.thread_num == 0 {
                observed.lock().push(ctx.team_size);
            }
        });
        assert_eq!(observed.into_inner(), vec![8, 3]);
    }

    #[test]
    fn set_num_threads_is_clamped() {
        let rt = OmpRuntime::new(4);
        rt.set_num_threads(0);
        assert_eq!(rt.max_threads(), 1);
        rt.set_num_threads(100);
        assert_eq!(rt.max_threads(), 4);
    }

    #[test]
    fn parallel_can_borrow_stack_data() {
        let rt = OmpRuntime::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let sum = Mutex::new(0u64);
        rt.parallel(|ctx| {
            let (lo, hi) = Schedule::static_block(data.len(), ctx.team_size, ctx.thread_num);
            let local: u64 = data[lo..hi].iter().sum();
            *sum.lock() += local;
        });
        assert_eq!(sum.into_inner(), (0..1000).sum::<u64>());
    }

    #[test]
    fn parallel_for_static_and_dynamic_cover_range() {
        let rt = OmpRuntime::new(4);
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 7 },
            Schedule::Dynamic { chunk: 0 },
            Schedule::Guided,
        ] {
            let hits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
            // SAFETY(ordering): test counters; the region join publishes
            // them before the assertions read them.
            rt.parallel_for(0..200, schedule, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                // SAFETY(ordering): read after the region join, as above.
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "index {i} schedule {schedule:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_reduce_sum_matches_serial() {
        let rt = OmpRuntime::new(3);
        let parallel: u64 = rt.parallel_reduce_sum(0..10_000, |i| i as u64);
        assert_eq!(parallel, (0..10_000u64).sum());
    }

    #[test]
    fn single_thread_pool_works() {
        let rt = OmpRuntime::new(1);
        let counter = AtomicUsize::new(0);
        // SAFETY(ordering): test counter; published by the region join.
        rt.parallel(|ctx| {
            assert_eq!(ctx.team_size, 1);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        // SAFETY(ordering): read after the region join; no thread is writing.
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_parallel_runs_sequentially() {
        let rt = OmpRuntime::new(4);
        let inner_sizes = Mutex::new(Vec::new());
        rt.parallel(|_outer| {
            rt.parallel(|inner| {
                inner_sizes.lock().push(inner.team_size);
            });
        });
        let sizes = inner_sizes.into_inner();
        assert_eq!(sizes.len(), 4, "each outer member ran the inner region");
        assert!(sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn binding_follows_mask() {
        let rt = OmpRuntime::new(4);
        rt.settings()
            .apply_mask(&CpuSet::from_cpus([2, 5, 9]).unwrap());
        assert_eq!(rt.max_threads(), 3);
        let bindings = Mutex::new(Vec::new());
        rt.parallel(|ctx| {
            bindings.lock().push((ctx.thread_num, ctx.bound_cpu));
        });
        let mut b = bindings.into_inner();
        b.sort_unstable();
        assert_eq!(b, vec![(0, Some(2)), (1, Some(5)), (2, Some(9))]);
    }

    #[test]
    fn ompt_tool_receives_events_and_can_resize() {
        let rt = OmpRuntime::new(8);
        let recorder = OmptRecorder::new();
        rt.register_tool(recorder.clone());
        rt.parallel(|_| {});
        let events = recorder.events();
        assert!(matches!(
            events[0],
            OmptEvent::ParallelBegin { team_size: 8, .. }
        ));
        assert!(matches!(
            events.last().unwrap(),
            OmptEvent::ParallelEnd { .. }
        ));
        let implicit = events
            .iter()
            .filter(|e| matches!(e, OmptEvent::ImplicitTask { .. }))
            .count();
        assert_eq!(implicit, 8);

        // A tool that resizes the team in parallel_begin affects that region.
        struct Shrinker(Arc<TeamSettings>);
        impl OmptTool for Shrinker {
            fn parallel_begin(&self, _id: u64, _size: usize) {
                self.0.set_num_threads(2);
            }
            fn implicit_task(&self, _id: u64, _thread: usize) {}
            fn parallel_end(&self, _id: u64) {}
        }
        rt.register_tool(Arc::new(Shrinker(Arc::clone(rt.settings()))));
        let count = AtomicUsize::new(0);
        // SAFETY(ordering): test counter; published by the region join.
        rt.parallel(|ctx| {
            assert_eq!(ctx.team_size, 2);
            count.fetch_add(1, Ordering::Relaxed);
        });
        // SAFETY(ordering): read after the region join; no thread is writing.
        assert_eq!(count.load(Ordering::Relaxed), 2);
        rt.unregister_tool();
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_pool_panics() {
        let _ = OmpRuntime::new(0);
    }
}
