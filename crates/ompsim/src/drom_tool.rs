//! The DROM ↔ OpenMP integration: an OMPT tool that polls DROM at every
//! parallel construct and adapts the team.
//!
//! This is the piece that makes applications malleable "in a completely
//! transparent way to the user": the tool registers itself with the runtime
//! (the analogue of DLB registering as an OMPT monitoring tool when the
//! library is pre-loaded), and at every `parallel_begin` it checks the node
//! shared memory for a pending mask. When one is found, the team size becomes
//! the number of CPUs of the new mask and the binding follows it, so the very
//! region that is about to start already runs on the resources the scheduler
//! decided.
//!
//! Polling at every `parallel_begin` is affordable because the underlying
//! `DromProcess::poll_drom` no-update path is a single atomic load (no
//! registry lock): even fine-grained OpenMP codes pay no contention against
//! concurrent administrator traffic on the node.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use drom_core::DromProcess;

use crate::ompt::OmptTool;
use crate::runtime::{OmpRuntime, TeamSettings};

/// OMPT tool that applies DROM mask updates to an [`OmpRuntime`].
pub struct DromOmptTool {
    process: Arc<DromProcess>,
    settings: Arc<TeamSettings>,
    mask_changes: AtomicU64,
    polls: AtomicU64,
}

impl DromOmptTool {
    /// Creates the tool for a DROM process and a runtime's team settings.
    pub fn new(process: Arc<DromProcess>, settings: Arc<TeamSettings>) -> Arc<Self> {
        // Start from the mask the process currently owns.
        settings.apply_mask(&process.current_mask());
        Arc::new(DromOmptTool {
            process,
            settings,
            mask_changes: AtomicU64::new(0),
            polls: AtomicU64::new(0),
        })
    }

    /// Creates the tool and registers it with `runtime` in one step — the
    /// equivalent of pre-loading DLB under an OMPT-capable OpenMP runtime.
    pub fn attach(runtime: &OmpRuntime, process: Arc<DromProcess>) -> Arc<Self> {
        let tool = Self::new(process, Arc::clone(runtime.settings()));
        runtime.register_tool(tool.clone());
        tool
    }

    /// The DROM process this tool polls.
    pub fn process(&self) -> &Arc<DromProcess> {
        &self.process
    }

    /// Number of mask changes applied so far.
    pub fn mask_changes(&self) -> u64 {
        // SAFETY(ordering): statistics read; approximate totals suffice.
        self.mask_changes.load(Ordering::Relaxed)
    }

    /// Number of DROM polls performed so far.
    pub fn polls(&self) -> u64 {
        // SAFETY(ordering): statistics read; approximate totals suffice.
        self.polls.load(Ordering::Relaxed)
    }

    /// Polls DROM once and applies any pending mask (also usable outside the
    /// OMPT callbacks, e.g. from an explicit `DLB_PollDROM` call site).
    pub fn poll_and_apply(&self) -> bool {
        // SAFETY(ordering): statistics counter; nothing synchronizes on it.
        self.polls.fetch_add(1, Ordering::Relaxed);
        match self.process.poll_drom() {
            Ok(Some(mask)) => {
                self.settings.apply_mask(&mask);
                // SAFETY(ordering): statistics counter, as above.
                self.mask_changes.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

impl OmptTool for DromOmptTool {
    fn parallel_begin(&self, _region_id: u64, _requested_team_size: usize) {
        self.poll_and_apply();
    }

    fn implicit_task(&self, _region_id: u64, _thread_num: usize) {}

    fn parallel_end(&self, _region_id: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use drom_core::{DromAdmin, DromFlags};
    use drom_cpuset::CpuSet;
    use drom_shmem::NodeShmem;
    use parking_lot::Mutex;

    #[test]
    fn team_follows_drom_mask_changes() {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let process =
            Arc::new(DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap());
        let rt = OmpRuntime::new(16);
        let tool = DromOmptTool::attach(&rt, Arc::clone(&process));
        assert_eq!(rt.max_threads(), 16);

        let team_sizes = Mutex::new(Vec::new());
        let record = |ctx: &crate::runtime::ParallelContext| {
            if ctx.thread_num == 0 {
                team_sizes.lock().push(ctx.team_size);
            }
        };

        // First region: full node.
        rt.parallel(record);

        // The resource manager shrinks the job to 4 CPUs.
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        admin
            .set_process_mask(1, &CpuSet::from_range(0..4).unwrap(), DromFlags::default())
            .unwrap();

        // Second region: the OMPT hook polls DROM and the team shrinks.
        rt.parallel(record);
        // Third region: CPUs given back.
        admin
            .set_process_mask(1, &CpuSet::first_n(8), DromFlags::default())
            .unwrap();
        rt.parallel(record);

        assert_eq!(team_sizes.into_inner(), vec![16, 4, 8]);
        assert_eq!(tool.mask_changes(), 2);
        assert!(tool.polls() >= 3);
        assert_eq!(tool.process().num_cpus(), 8);
    }

    #[test]
    fn binding_follows_the_new_mask() {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let process = Arc::new(
            DromProcess::init(1, CpuSet::from_range(0..8).unwrap(), Arc::clone(&shmem)).unwrap(),
        );
        let rt = OmpRuntime::new(8);
        let _tool = DromOmptTool::attach(&rt, Arc::clone(&process));

        let admin = DromAdmin::attach(Arc::clone(&shmem));
        admin
            .set_process_mask(1, &CpuSet::from_range(4..8).unwrap(), DromFlags::default())
            .unwrap();

        let cpus = Mutex::new(Vec::new());
        rt.parallel(|ctx| {
            cpus.lock().push(ctx.bound_cpu);
        });
        let mut observed = cpus.into_inner();
        observed.sort_unstable();
        assert_eq!(
            observed,
            vec![Some(4), Some(5), Some(6), Some(7)],
            "threads are pinned to the CPUs of the new mask"
        );
    }

    #[test]
    fn poll_and_apply_without_updates_is_false() {
        let shmem = Arc::new(NodeShmem::new("n", 4));
        let process =
            Arc::new(DromProcess::init(1, CpuSet::first_n(4), Arc::clone(&shmem)).unwrap());
        let rt = OmpRuntime::new(4);
        let tool = DromOmptTool::new(process, Arc::clone(rt.settings()));
        assert!(!tool.poll_and_apply());
        assert_eq!(tool.mask_changes(), 0);
    }
}
