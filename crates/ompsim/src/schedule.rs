//! Loop scheduling policies for `parallel_for`.
//!
//! OpenMP's `schedule(static|dynamic|guided)` clauses decide how loop
//! iterations map onto team members. The NEST-like application uses the static
//! schedule to reproduce the paper's imbalance effect (a removed thread's
//! iterations fall onto a subset of the survivors); the synthetic benchmarks
//! use dynamic scheduling.

use serde::{Deserialize, Serialize};

/// How the iterations of a `parallel_for` are distributed over the team.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Schedule {
    /// Contiguous blocks of `total / team_size` iterations per thread
    /// (OpenMP `schedule(static)`).
    #[default]
    Static,
    /// Threads grab fixed-size chunks from a shared counter
    /// (OpenMP `schedule(dynamic, chunk)`).
    Dynamic {
        /// Chunk size; 0 is treated as 1.
        chunk: usize,
    },
    /// Threads grab exponentially decreasing chunks
    /// (OpenMP `schedule(guided)`).
    Guided,
}

impl Schedule {
    /// Computes the static block `[start, end)` of iterations for
    /// `thread_num` out of `team_size` over `total` iterations.
    ///
    /// Blocks are balanced: the first `total % team_size` threads get one extra
    /// iteration, like `schedule(static)` in every mainstream runtime.
    pub fn static_block(total: usize, team_size: usize, thread_num: usize) -> (usize, usize) {
        if team_size == 0 || thread_num >= team_size {
            return (0, 0);
        }
        let base = total / team_size;
        let extra = total % team_size;
        let start = thread_num * base + thread_num.min(extra);
        let len = base + usize::from(thread_num < extra);
        (start, start + len)
    }

    /// Next chunk size for a guided schedule given the remaining iteration
    /// count and the team size (at least 1).
    pub fn guided_chunk(remaining: usize, team_size: usize) -> usize {
        (remaining / (2 * team_size.max(1))).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn static_blocks_partition_range() {
        let total = 103;
        let team = 8;
        let mut covered = vec![false; total];
        for t in 0..team {
            let (s, e) = Schedule::static_block(total, team, t);
            for item in covered.iter_mut().take(e).skip(s) {
                assert!(!*item, "iteration covered twice");
                *item = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn static_block_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..5)
            .map(|t| {
                let (s, e) = Schedule::static_block(17, 5, t);
                e - s
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 17);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn degenerate_static_blocks() {
        assert_eq!(Schedule::static_block(10, 0, 0), (0, 0));
        assert_eq!(Schedule::static_block(10, 4, 7), (0, 0));
        assert_eq!(Schedule::static_block(0, 4, 2), (0, 0));
    }

    #[test]
    fn guided_chunk_shrinks_but_stays_positive() {
        assert!(Schedule::guided_chunk(1000, 4) > Schedule::guided_chunk(100, 4));
        assert_eq!(Schedule::guided_chunk(0, 4), 1);
        assert_eq!(Schedule::guided_chunk(3, 0), 1);
    }

    #[test]
    fn default_is_static() {
        assert_eq!(Schedule::default(), Schedule::Static);
    }

    proptest! {
        /// Static blocks always form a partition of `0..total`.
        #[test]
        fn prop_static_partition(total in 0usize..500, team in 1usize..17) {
            let mut next_expected = 0usize;
            for t in 0..team {
                let (s, e) = Schedule::static_block(total, team, t);
                prop_assert_eq!(s, next_expected);
                prop_assert!(e >= s);
                next_expected = e;
            }
            prop_assert_eq!(next_expected, total);
        }
    }
}
