//! Export of traces and series: CSV, a Paraver-like text format and ASCII
//! timelines for the experiment harnesses.
//!
//! The paper's Figures 5 and 13 are Paraver screenshots; this module emits the
//! same information as data. The Paraver-like record format follows the spirit
//! of the `.prv` state records (`state:process:thread:start:end:value`) without
//! claiming byte compatibility — it is meant to be diffable and easy to plot.

use std::fmt::Write as _;

use crate::timeline::{ThreadState, Timeline};
use crate::tracer::{EventKind, TraceEvent};

/// Numeric value used for a thread state in the Paraver-like export, matching
/// the conventional Paraver state palette (1 = running, 0 = idle, 3 = blocked).
pub fn state_code(state: ThreadState) -> u32 {
    match state {
        ThreadState::Idle => 0,
        ThreadState::Running => 1,
        ThreadState::Blocked => 3,
        ThreadState::NotCreated => 7,
    }
}

/// Serialises a timeline as Paraver-like state records, one per line:
/// `1:<process>:<thread>:<start>:<end>:<state_code>`.
pub fn timeline_to_prv(timeline: &Timeline) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "#Paraver-like trace (reproduction) horizon_us={}",
        timeline.horizon()
    );
    for (process, thread) in timeline.threads() {
        for interval in timeline.intervals(process, thread) {
            let _ = writeln!(
                out,
                "1:{}:{}:{}:{}:{}",
                process,
                thread,
                interval.start,
                interval.end,
                state_code(interval.state)
            );
        }
    }
    out
}

/// Serialises raw trace events as CSV
/// (`time_us,process,thread,kind,a,b`): state events carry the state code in
/// column `a`, counter events carry instructions/cycles, mask changes the CPU
/// count, user events key/value.
pub fn events_to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("time_us,process,thread,kind,a,b\n");
    for e in events {
        let (kind, a, b) = match &e.kind {
            EventKind::State(s) => ("state", state_code(*s) as i64, 0),
            EventKind::Counters {
                instructions,
                cycles,
            } => ("counters", *instructions as i64, *cycles as i64),
            EventKind::MaskChange { mask } => ("mask", mask.count() as i64, 0),
            EventKind::User { key, value } => ("user", *key as i64, *value),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            e.time, e.process, e.thread, kind, a, b
        );
    }
    out
}

/// Renders a timeline as an ASCII strip chart: one row per thread, one column
/// per time bucket (`#` running, `.` idle, `b` blocked, space not created).
///
/// This is the textual stand-in for the Paraver windows of Figures 5 and 13.
pub fn timeline_to_ascii(timeline: &Timeline, columns: usize) -> String {
    let horizon = timeline.horizon().max(1);
    let columns = columns.max(1);
    let mut out = String::new();
    for (process, thread) in timeline.threads() {
        let mut row = vec![' '; columns];
        for interval in timeline.intervals(process, thread) {
            let c = match interval.state {
                ThreadState::Running => '#',
                ThreadState::Idle => '.',
                ThreadState::Blocked => 'b',
                ThreadState::NotCreated => ' ',
            };
            let start_col = (interval.start as u128 * columns as u128 / horizon as u128) as usize;
            let end_col =
                ((interval.end as u128 * columns as u128).div_ceil(horizon as u128)) as usize;
            for cell in row
                .iter_mut()
                .take(end_col.min(columns))
                .skip(start_col.min(columns))
            {
                *cell = c;
            }
        }
        let _ = writeln!(
            out,
            "p{:<2} t{:<3} |{}|",
            process,
            thread,
            row.into_iter().collect::<String>()
        );
    }
    out
}

/// Renders a numeric series as a compact ASCII sparkline-style bar chart, one
/// row per labelled series (used by the fig13 harness for cycles/µs).
pub fn series_to_ascii(labels: &[String], series: &[Vec<f64>], width: usize) -> String {
    const GLYPHS: [char; 5] = [' ', '.', ':', '+', '#'];
    let max = series
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for (label, values) in labels.iter().zip(series.iter()) {
        let mut row = String::new();
        // Resample to `width` columns.
        for col in 0..width {
            let idx = if values.is_empty() {
                None
            } else {
                Some(col * values.len() / width)
            };
            let v = idx.and_then(|i| values.get(i)).copied().unwrap_or(0.0);
            let level = ((v / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            row.push(GLYPHS[level.min(GLYPHS.len() - 1)]);
        }
        let _ = writeln!(out, "{label:<24} |{row}|");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::StateInterval;
    use crate::tracer::Tracer;

    fn sample_timeline() -> Timeline {
        let mut t = Timeline::new(100);
        t.push(
            0,
            0,
            StateInterval {
                start: 0,
                end: 100,
                state: ThreadState::Running,
            },
        );
        t.push(
            0,
            1,
            StateInterval {
                start: 0,
                end: 50,
                state: ThreadState::Running,
            },
        );
        t.push(
            0,
            1,
            StateInterval {
                start: 50,
                end: 100,
                state: ThreadState::Idle,
            },
        );
        t
    }

    #[test]
    fn prv_export_has_one_record_per_interval() {
        let prv = timeline_to_prv(&sample_timeline());
        let records: Vec<&str> = prv.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(records.len(), 3);
        assert!(records[0].starts_with("1:0:0:0:100:1"));
        assert!(prv.starts_with("#Paraver-like"));
    }

    #[test]
    fn csv_export_covers_all_kinds() {
        let tracer = Tracer::new();
        tracer.state(0, 0, 0, ThreadState::Running);
        tracer.counters(10, 0, 0, 100, 80);
        tracer.mask_change(20, 0, &drom_cpuset::CpuSet::first_n(4));
        tracer.user(30, 0, 1, 9, -1);
        let csv = events_to_csv(&tracer.events());
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains("state"));
        assert!(csv.contains("counters"));
        assert!(csv.contains("mask"));
        assert!(csv.contains("user"));
        assert!(csv.lines().any(|l| l.contains("mask,4,0")));
    }

    #[test]
    fn ascii_timeline_shows_idle_and_running() {
        let text = timeline_to_ascii(&sample_timeline(), 20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(!lines[0].contains('.'));
        assert!(lines[1].contains('#'));
        assert!(lines[1].contains('.'));
    }

    #[test]
    fn ascii_series_has_one_row_per_label() {
        let labels = vec!["NEST".to_string(), "CoreNeuron".to_string()];
        let series = vec![vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]];
        let text = series_to_ascii(&labels, &series, 12);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("NEST"));
        assert!(text.contains("CoreNeuron"));
    }

    #[test]
    fn ascii_series_with_empty_values() {
        let text = series_to_ascii(&["empty".to_string()], &[vec![]], 5);
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn state_codes_are_distinct() {
        let codes = [
            state_code(ThreadState::Idle),
            state_code(ThreadState::Running),
            state_code(ThreadState::Blocked),
            state_code(ThreadState::NotCreated),
        ];
        let mut sorted = codes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len());
    }
}
