//! Workload-level metrics: job records, response times and reports.
//!
//! The paper's system metrics (Section 6) are:
//!
//! * *Total run time* — "time to complete the workload, calculated as last job
//!   end time minus first job submission time".
//! * *Response time* — "a sum of job's wait time in scheduler's queue and job's
//!   execution time".
//! * *Average response time* — "arithmetic mean of response times of all the
//!   jobs in the workload".
//!
//! [`JobRecord`] and [`WorkloadReport`] compute exactly those definitions, and
//! [`percent_improvement`] expresses the DROM-vs-Serial comparisons the figures
//! report ("up to 48% improvement in average response time").

use serde::{Deserialize, Serialize};

use crate::TimeUs;

/// Which scheduling mode produced a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Jobs run one after another; a new job waits for resources to be free.
    Serial,
    /// Jobs are co-allocated through the DROM-enabled task/affinity plugin.
    Drom,
    /// Jobs are co-allocated without shrinking (CPUSET-only oversubscription),
    /// the related-work baseline used as an ablation.
    Oversubscribed,
}

impl Scenario {
    /// Human-readable label used in tables and CSV headers.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Serial => "Serial",
            Scenario::Drom => "DROM",
            Scenario::Oversubscribed => "Oversub",
        }
    }
}

/// Timing record of one job in a workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job name (e.g. `"NEST Conf. 1"`).
    pub name: String,
    /// Submission time.
    pub submit: TimeUs,
    /// Time the job started executing.
    pub start: TimeUs,
    /// Time the job finished.
    pub end: TimeUs,
}

impl JobRecord {
    /// Creates a record, clamping inconsistent times (start ≥ submit,
    /// end ≥ start).
    pub fn new(name: impl Into<String>, submit: TimeUs, start: TimeUs, end: TimeUs) -> Self {
        let start = start.max(submit);
        let end = end.max(start);
        JobRecord {
            name: name.into(),
            submit,
            start,
            end,
        }
    }

    /// Time spent waiting in the scheduler queue.
    pub fn wait_time(&self) -> TimeUs {
        self.start - self.submit
    }

    /// Execution time.
    pub fn run_time(&self) -> TimeUs {
        self.end - self.start
    }

    /// Response time = wait time + execution time.
    pub fn response_time(&self) -> TimeUs {
        self.end - self.submit
    }
}

/// The measured outcome of running one workload under one scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// The scheduling mode used.
    pub scenario: Scenario,
    /// Per-job records.
    pub jobs: Vec<JobRecord>,
}

impl WorkloadReport {
    /// Creates a report from job records.
    pub fn new(scenario: Scenario, jobs: Vec<JobRecord>) -> Self {
        WorkloadReport { scenario, jobs }
    }

    /// Total run time: last job end minus first job submission (0 when empty).
    pub fn total_run_time(&self) -> TimeUs {
        let first_submit = self.jobs.iter().map(|j| j.submit).min();
        let last_end = self.jobs.iter().map(|j| j.end).max();
        match (first_submit, last_end) {
            (Some(s), Some(e)) => e.saturating_sub(s),
            _ => 0,
        }
    }

    /// Arithmetic mean of job response times (0 when empty).
    pub fn average_response_time(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|j| j.response_time() as f64)
            .sum::<f64>()
            / self.jobs.len() as f64
    }

    /// Arithmetic mean of job wait (queue) times (0 when empty). The
    /// cluster-scheduling experiments report it next to the response time to
    /// separate queueing delay from shrunk-execution slowdown.
    pub fn average_wait_time(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.wait_time() as f64).sum::<f64>() / self.jobs.len() as f64
    }

    /// Response time of the job named `name`, if present.
    pub fn response_time_of(&self, name: &str) -> Option<TimeUs> {
        self.jobs
            .iter()
            .find(|j| j.name == name)
            .map(|j| j.response_time())
    }

    /// Run time of the job named `name`, if present.
    pub fn run_time_of(&self, name: &str) -> Option<TimeUs> {
        self.jobs
            .iter()
            .find(|j| j.name == name)
            .map(|j| j.run_time())
    }

    /// The `p`-th percentile (0–100, nearest-rank) of job response times, in
    /// microseconds (0 when the report is empty).
    ///
    /// The cluster-scale scheduling experiments report the tail of the
    /// response-time distribution (P95) next to the mean, because a policy can
    /// improve the mean while starving a few wide jobs.
    pub fn percentile_response_time(&self, p: f64) -> f64 {
        let samples: Vec<f64> = self.jobs.iter().map(|j| j.response_time() as f64).collect();
        percentile(&samples, p)
    }

    /// Shorthand for [`percentile_response_time`](Self::percentile_response_time)`(95.0)`.
    pub fn p95_response_time(&self) -> f64 {
        self.percentile_response_time(95.0)
    }
}

/// Nearest-rank percentile of a sample set (`p` in 0–100). Returns 0 for an
/// empty slice; `p` is clamped to the valid range.
///
/// Samples are ordered with [`f64::total_cmp`], so the result is a pure
/// function of the sample *multiset*: `-∞` sorts first, `+∞` after every
/// finite value and `NaN` last of all (a NaN can only surface at the top
/// percentiles, never silently in the middle). The previous
/// `partial_cmp`-with-`Equal`-fallback ordering left NaN wherever the sort
/// happened to visit it, making the reported percentile depend on input
/// order.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Aggregate CPU-time accounting of one cluster run: how many CPU-microseconds
/// were actually allocated to jobs out of the capacity the cluster offered over
/// the same interval. This is the "node utilization" metric of the scheduling
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UtilizationStat {
    /// CPU-microseconds allocated to running jobs (integral of allocated CPUs
    /// over time).
    pub busy_cpu_us: u128,
    /// CPU-microseconds the cluster offered (total CPUs × elapsed time).
    pub capacity_cpu_us: u128,
}

impl UtilizationStat {
    /// Utilization as a fraction in `[0, 1]` (0 when no capacity elapsed).
    pub fn fraction(&self) -> f64 {
        if self.capacity_cpu_us == 0 {
            0.0
        } else {
            self.busy_cpu_us as f64 / self.capacity_cpu_us as f64
        }
    }
}

/// Percentage improvement of `measured` over `baseline` for a metric where
/// lower is better: positive means `measured` is faster/shorter.
///
/// `percent_improvement(100.0, 92.0)` is `8.0`; a regression yields a negative
/// number. Returns 0 when the baseline is 0.
pub fn percent_improvement(baseline: f64, measured: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - measured) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, submit: TimeUs, start: TimeUs, end: TimeUs) -> JobRecord {
        JobRecord::new(name, submit, start, end)
    }

    #[test]
    fn job_record_metrics() {
        let j = record("sim", 10, 30, 130);
        assert_eq!(j.wait_time(), 20);
        assert_eq!(j.run_time(), 100);
        assert_eq!(j.response_time(), 120);
    }

    #[test]
    fn job_record_clamps_inconsistent_times() {
        let j = record("x", 100, 50, 10);
        assert_eq!(j.wait_time(), 0);
        assert_eq!(j.run_time(), 0);
        assert_eq!(j.response_time(), 0);
    }

    #[test]
    fn report_totals_match_paper_definitions() {
        // Serial scenario of use case 1: analytics waits for the simulation.
        let serial = WorkloadReport::new(
            Scenario::Serial,
            vec![
                record("simulation", 0, 0, 2000),
                record("analytics", 100, 2000, 2200),
            ],
        );
        assert_eq!(serial.total_run_time(), 2200);
        // responses: 2000 and 2100 -> 2050
        assert!((serial.average_response_time() - 2050.0).abs() < 1e-9);
        // waits: 0 and 1900 -> 950
        assert!((serial.average_wait_time() - 950.0).abs() < 1e-9);
        assert_eq!(
            WorkloadReport::new(Scenario::Drom, vec![]).average_wait_time(),
            0.0
        );
        assert_eq!(serial.response_time_of("analytics"), Some(2100));
        assert_eq!(serial.run_time_of("analytics"), Some(200));
        assert_eq!(serial.response_time_of("missing"), None);

        // DROM scenario: the analytics starts immediately.
        let drom = WorkloadReport::new(
            Scenario::Drom,
            vec![
                record("simulation", 0, 0, 2050),
                record("analytics", 100, 100, 310),
            ],
        );
        assert_eq!(drom.total_run_time(), 2050);
        let improvement =
            percent_improvement(serial.average_response_time(), drom.average_response_time());
        // The analytics response collapses, so the average improves a lot.
        assert!(improvement > 40.0, "improvement was {improvement}");
    }

    #[test]
    fn empty_report_is_zero() {
        let r = WorkloadReport::new(Scenario::Drom, vec![]);
        assert_eq!(r.total_run_time(), 0);
        assert_eq!(r.average_response_time(), 0.0);
    }

    #[test]
    fn percent_improvement_signs() {
        assert!((percent_improvement(100.0, 92.0) - 8.0).abs() < 1e-12);
        assert!(percent_improvement(100.0, 110.0) < 0.0);
        assert_eq!(percent_improvement(0.0, 50.0), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 95.0), 95.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
        // Out-of-range p is clamped, not a panic.
        assert_eq!(percentile(&samples, 150.0), 100.0);
    }

    #[test]
    fn percentile_orders_nan_and_infinities_deterministically() {
        // NaN sorts after +∞ under total_cmp, so it surfaces only at the
        // very top of the distribution — and the answer cannot depend on
        // where the NaN sat in the input.
        let a = [1.0, f64::NAN, 2.0, 3.0];
        let b = [f64::NAN, 3.0, 1.0, 2.0];
        assert_eq!(percentile(&a, 50.0), 2.0);
        assert_eq!(percentile(&b, 50.0), 2.0);
        assert_eq!(percentile(&a, 75.0), 3.0);
        assert!(percentile(&a, 100.0).is_nan());
        assert!(percentile(&b, 100.0).is_nan());

        let infs = [f64::NEG_INFINITY, 5.0, f64::INFINITY, 7.0];
        assert_eq!(percentile(&infs, 25.0), f64::NEG_INFINITY);
        assert_eq!(percentile(&infs, 50.0), 5.0);
        assert_eq!(percentile(&infs, 75.0), 7.0);
        assert_eq!(percentile(&infs, 100.0), f64::INFINITY);
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        // Nearest-rank on one sample: every p (including p = 0 and the P95
        // the reports use) must return the sample itself.
        for p in [0.0, 1.0, 50.0, 95.0, 100.0] {
            assert_eq!(percentile(&[13.0], p), 13.0, "p = {p}");
        }
        let report = WorkloadReport::new(Scenario::Drom, vec![record("only", 0, 10, 110)]);
        assert_eq!(report.p95_response_time(), 110.0);
    }

    #[test]
    fn zero_length_run_intervals_are_sound() {
        // Jobs that start and end at the same instant: every derived metric
        // stays finite and zero-valued rather than NaN.
        let report = WorkloadReport::new(
            Scenario::Drom,
            vec![record("a", 5, 5, 5), record("b", 5, 5, 5)],
        );
        assert_eq!(report.total_run_time(), 0);
        assert_eq!(report.average_response_time(), 0.0);
        assert_eq!(report.average_wait_time(), 0.0);
        assert_eq!(report.p95_response_time(), 0.0);
        assert_eq!(report.run_time_of("a"), Some(0));

        // A utilization interval of zero length offers zero capacity; the
        // fraction must come out 0, not 0/0 = NaN.
        let stat = UtilizationStat {
            busy_cpu_us: 0,
            capacity_cpu_us: 0,
        };
        assert_eq!(stat.fraction(), 0.0);
        assert!(!stat.fraction().is_nan());
        // Full-interval busyness is exactly 1, never above.
        let full = UtilizationStat {
            busy_cpu_us: 1_000,
            capacity_cpu_us: 1_000,
        };
        assert_eq!(full.fraction(), 1.0);
    }

    #[test]
    fn p95_response_time_of_report() {
        let jobs: Vec<JobRecord> = (0..100u64)
            .map(|i| record("j", 0, 0, (i + 1) * 10))
            .collect();
        let report = WorkloadReport::new(Scenario::Drom, jobs);
        assert_eq!(report.p95_response_time(), 950.0);
        assert_eq!(
            WorkloadReport::new(Scenario::Drom, vec![]).p95_response_time(),
            0.0
        );
    }

    #[test]
    fn utilization_fraction() {
        let stat = UtilizationStat {
            busy_cpu_us: 750,
            capacity_cpu_us: 1000,
        };
        assert!((stat.fraction() - 0.75).abs() < 1e-12);
        assert_eq!(UtilizationStat::default().fraction(), 0.0);
    }

    #[test]
    fn scenario_labels() {
        assert_eq!(Scenario::Serial.label(), "Serial");
        assert_eq!(Scenario::Drom.label(), "DROM");
        assert_eq!(Scenario::Oversubscribed.label(), "Oversub");
    }
}
