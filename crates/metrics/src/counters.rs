//! Hardware-counter model: instructions, cycles, IPC and cycles per µs.
//!
//! The paper reports two per-thread counters obtained from Extrae traces:
//!
//! * *IPC* — "number of instructions completed per processor cycle by a
//!   specific thread" (Figure 14).
//! * *Cycles per microsecond* — "number of processor's cycles per microsecond
//!   dedicated to the specific thread" (Figure 13), effectively the share of a
//!   core the thread received.
//!
//! On the reproduction side these counters are produced either by the
//! executable mini-apps (which count abstract "work units" as instructions) or
//! by the analytical models in `drom-apps::perfmodel`. The arithmetic here is
//! the same either way.

use serde::{Deserialize, Serialize};

use crate::TimeUs;

/// One sample of a thread's counters over an interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Start of the sampled interval.
    pub start: TimeUs,
    /// End of the sampled interval (exclusive, `end > start`).
    pub end: TimeUs,
    /// Instructions retired by the thread during the interval.
    pub instructions: u64,
    /// Core cycles consumed by the thread during the interval.
    pub cycles: u64,
}

impl CounterSample {
    /// Length of the interval in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Instructions per cycle for this sample (0 when no cycles were consumed).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per microsecond for this sample (0 for empty intervals).
    pub fn cycles_per_us(&self) -> f64 {
        let dur = self.duration_us();
        if dur == 0 {
            0.0
        } else {
            self.cycles as f64 / dur as f64
        }
    }
}

/// Accumulated counters of one thread, as a sequence of samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadCounters {
    /// Identifier of the thread within its process.
    pub thread: usize,
    samples: Vec<CounterSample>,
}

impl ThreadCounters {
    /// Creates an empty counter series for `thread`.
    pub fn new(thread: usize) -> Self {
        ThreadCounters {
            thread,
            samples: Vec::new(),
        }
    }

    /// Appends a sample. Samples may be appended out of order; queries sort by
    /// start time lazily when needed.
    pub fn record(&mut self, sample: CounterSample) {
        self.samples.push(sample);
    }

    /// Convenience: record an interval from raw values.
    pub fn record_interval(&mut self, start: TimeUs, end: TimeUs, instructions: u64, cycles: u64) {
        self.record(CounterSample {
            start,
            end,
            instructions,
            cycles,
        });
    }

    /// The recorded samples in insertion order.
    pub fn samples(&self) -> &[CounterSample] {
        &self.samples
    }

    /// Total instructions across all samples.
    pub fn total_instructions(&self) -> u64 {
        self.samples.iter().map(|s| s.instructions).sum()
    }

    /// Total cycles across all samples.
    pub fn total_cycles(&self) -> u64 {
        self.samples.iter().map(|s| s.cycles).sum()
    }

    /// Aggregate IPC over the whole series.
    pub fn ipc(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / cycles as f64
        }
    }

    /// Per-sample IPC values (for histogramming, Figure 14).
    pub fn ipc_samples(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.ipc()).collect()
    }

    /// Average cycles per microsecond over the covered time span.
    pub fn cycles_per_us(&self) -> f64 {
        let span: u64 = self.samples.iter().map(|s| s.duration_us()).sum();
        if span == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / span as f64
        }
    }

    /// Cycles-per-µs binned over wall-clock time (for the Figure 13 timeline).
    ///
    /// Returns one value per bin of width `bin_us` covering `[0, horizon_us)`;
    /// samples are attributed to bins proportionally to their overlap.
    pub fn cycles_per_us_series(&self, bin_us: TimeUs, horizon_us: TimeUs) -> Vec<f64> {
        if bin_us == 0 || horizon_us == 0 {
            return Vec::new();
        }
        let nbins = horizon_us.div_ceil(bin_us) as usize;
        let mut cycles_per_bin = vec![0.0f64; nbins];
        for s in &self.samples {
            let dur = s.duration_us();
            if dur == 0 {
                continue;
            }
            let rate = s.cycles as f64 / dur as f64;
            let mut t = s.start;
            while t < s.end && t < horizon_us {
                let bin = (t / bin_us) as usize;
                let bin_end = ((bin as u64 + 1) * bin_us).min(s.end).min(horizon_us);
                let overlap = bin_end - t;
                cycles_per_bin[bin] += rate * overlap as f64;
                t = bin_end;
            }
        }
        cycles_per_bin
            .into_iter()
            .map(|c| c / bin_us as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_ipc_and_rate() {
        let s = CounterSample {
            start: 0,
            end: 100,
            instructions: 150_000,
            cycles: 100_000,
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.cycles_per_us() - 1000.0).abs() < 1e-9);
        assert_eq!(s.duration_us(), 100);
    }

    #[test]
    fn zero_division_is_zero() {
        let s = CounterSample {
            start: 5,
            end: 5,
            instructions: 10,
            cycles: 0,
        };
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.cycles_per_us(), 0.0);
        assert_eq!(ThreadCounters::new(0).ipc(), 0.0);
        assert_eq!(ThreadCounters::new(0).cycles_per_us(), 0.0);
    }

    #[test]
    fn aggregation_over_samples() {
        let mut tc = ThreadCounters::new(3);
        tc.record_interval(0, 100, 100, 200);
        tc.record_interval(100, 200, 300, 200);
        assert_eq!(tc.total_instructions(), 400);
        assert_eq!(tc.total_cycles(), 400);
        assert!((tc.ipc() - 1.0).abs() < 1e-12);
        assert!((tc.cycles_per_us() - 2.0).abs() < 1e-12);
        assert_eq!(tc.ipc_samples().len(), 2);
        assert_eq!(tc.thread, 3);
    }

    #[test]
    fn series_binning_attributes_overlap() {
        let mut tc = ThreadCounters::new(0);
        // 1000 cycles uniformly over [0, 100): 10 cycles/us.
        tc.record_interval(0, 100, 0, 1000);
        // 400 cycles uniformly over [150, 250): 4 cycles/us.
        tc.record_interval(150, 250, 0, 400);
        let series = tc.cycles_per_us_series(100, 300);
        assert_eq!(series.len(), 3);
        assert!((series[0] - 10.0).abs() < 1e-9);
        // Second bin gets half of the second sample: 50us * 4 = 200 cycles / 100us.
        assert!((series[1] - 2.0).abs() < 1e-9);
        assert!((series[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn series_with_zero_bin_is_empty() {
        let tc = ThreadCounters::new(0);
        assert!(tc.cycles_per_us_series(0, 100).is_empty());
        assert!(tc.cycles_per_us_series(10, 0).is_empty());
    }
}
