//! Fixed-bin histograms — the data behind the IPC histograms of Figure 14.

use serde::{Deserialize, Serialize};

/// A histogram over a fixed numeric range with equally sized bins.
///
/// Values below the range land in the first bin, values above it in the last
/// bin (saturating), so no sample is ever silently dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            sum: 0.0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let idx = if value <= self.lo {
            0
        } else if value >= self.hi {
            bins - 1
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            ((frac * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Adds every sample of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Builds a histogram directly from samples.
    pub fn from_samples(lo: f64, hi: f64, bins: usize, samples: &[f64]) -> Self {
        let mut h = Histogram::new(lo, hi, bins);
        h.extend(samples.iter().copied());
        h
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all added samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Lower bound of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * (i as f64 + 0.5) / self.counts.len() as f64
    }

    /// Index of the most populated bin (ties resolved to the lowest index).
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Value at the center of the most populated bin — the "most frequent IPC"
    /// that Figure 14's blue dots represent.
    pub fn mode_value(&self) -> f64 {
        self.bin_center(self.mode_bin())
    }

    /// Normalised frequencies per bin (sum to 1 when non-empty).
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Renders the histogram as ASCII rows (`bin_center count bar`), for the
    /// experiment harnesses.
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = (c as usize * width) / max as usize;
            out.push_str(&format!(
                "{:>8.3} | {:>8} | {}\n",
                self.bin_center(i),
                c,
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn samples_fall_into_expected_bins() {
        let mut h = Histogram::new(0.0, 2.0, 4);
        h.add(0.1); // bin 0
        h.add(0.6); // bin 1
        h.add(1.2); // bin 2
        h.add(1.9); // bin 3
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_saturates() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(10.0);
        h.add(1.0);
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    fn mode_and_mean() {
        let h = Histogram::from_samples(0.0, 4.0, 4, &[0.5, 2.5, 2.6, 2.7, 3.5]);
        assert_eq!(h.mode_bin(), 2);
        assert!((h.mode_value() - 2.5).abs() < 1e-12);
        assert!((h.mean() - (0.5 + 2.5 + 2.6 + 2.7 + 3.5) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let h = Histogram::from_samples(0.0, 1.0, 5, &[0.1, 0.3, 0.5, 0.7, 0.9, 0.95]);
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let empty = Histogram::new(0.0, 1.0, 5);
        assert_eq!(empty.frequencies(), vec![0.0; 5]);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn ascii_rendering_has_one_row_per_bin() {
        let h = Histogram::from_samples(0.0, 1.0, 3, &[0.1, 0.2, 0.9]);
        let text = h.to_ascii(10);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }

    proptest! {
        /// Every added sample is counted exactly once, wherever it lands.
        #[test]
        fn prop_total_matches_samples(samples in proptest::collection::vec(-10.0f64..10.0, 0..200)) {
            let h = Histogram::from_samples(0.0, 1.0, 7, &samples);
            prop_assert_eq!(h.total(), samples.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), samples.len() as u64);
        }

        /// Bin centers are within the histogram range and increasing.
        #[test]
        fn prop_bin_centers_monotonic(bins in 1usize..32) {
            let h = Histogram::new(-3.0, 5.0, bins);
            let centers: Vec<f64> = (0..bins).map(|i| h.bin_center(i)).collect();
            for w in centers.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(centers[0] > -3.0 && centers[bins - 1] < 5.0);
        }
    }
}
