//! Extrae-like event tracer.
//!
//! The paper obtains application metrics "by tracing the use cases using
//! Extrae and visualizing traces with Paraver". The reproduction's tracer
//! collects the same kind of per-thread event stream: thread state changes,
//! counter samples, CPU-mask changes and free-form user events. The
//! [`timeline`](crate::timeline) module turns the stream into state intervals
//! and utilization figures; [`export`](crate::export) writes it out.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use drom_cpuset::CpuSet;

use crate::timeline::ThreadState;
use crate::TimeUs;

/// What happened at a trace point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// The thread switched to a new state (running, idle, blocked, …).
    State(ThreadState),
    /// Counter sample covering the interval since the previous sample.
    Counters {
        /// Instructions retired since the previous counter event.
        instructions: u64,
        /// Cycles consumed since the previous counter event.
        cycles: u64,
    },
    /// The process's CPU mask changed (a DROM malleability event).
    MaskChange {
        /// The new mask.
        mask: CpuSet,
    },
    /// Free-form numeric event (the Extrae "user event" analogue).
    User {
        /// Event type identifier.
        key: u32,
        /// Event value.
        value: i64,
    },
}

/// One record of the trace: when, which thread, what.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Timestamp of the event.
    pub time: TimeUs,
    /// Process identifier (application-level, e.g. the MPI rank).
    pub process: usize,
    /// Thread identifier within the process.
    pub thread: usize,
    /// The event payload.
    pub kind: EventKind,
}

/// Thread-safe collector of trace events.
///
/// Cloning a `Tracer` clones a handle to the same underlying buffer, so every
/// thread of the traced application can record without further coordination.
#[derive(Clone, Default)]
pub struct Tracer {
    events: Arc<Mutex<Vec<TraceEvent>>>,
    enabled: Arc<Mutex<bool>>,
}

impl Tracer {
    /// Creates an enabled tracer with an empty buffer.
    pub fn new() -> Self {
        Tracer {
            events: Arc::new(Mutex::new(Vec::new())),
            enabled: Arc::new(Mutex::new(true)),
        }
    }

    /// Creates a tracer that discards every event (zero-overhead runs).
    pub fn disabled() -> Self {
        Tracer {
            events: Arc::new(Mutex::new(Vec::new())),
            enabled: Arc::new(Mutex::new(false)),
        }
    }

    /// `true` if events are being recorded.
    pub fn is_enabled(&self) -> bool {
        *self.enabled.lock()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&self, enabled: bool) {
        *self.enabled.lock() = enabled;
    }

    /// Records a raw event.
    pub fn record(&self, event: TraceEvent) {
        if self.is_enabled() {
            self.events.lock().push(event);
        }
    }

    /// Records a thread state change.
    pub fn state(&self, time: TimeUs, process: usize, thread: usize, state: ThreadState) {
        self.record(TraceEvent {
            time,
            process,
            thread,
            kind: EventKind::State(state),
        });
    }

    /// Records a counter sample.
    pub fn counters(
        &self,
        time: TimeUs,
        process: usize,
        thread: usize,
        instructions: u64,
        cycles: u64,
    ) {
        self.record(TraceEvent {
            time,
            process,
            thread,
            kind: EventKind::Counters {
                instructions,
                cycles,
            },
        });
    }

    /// Records a CPU-mask change of a process (thread 0 by convention).
    pub fn mask_change(&self, time: TimeUs, process: usize, mask: &CpuSet) {
        self.record(TraceEvent {
            time,
            process,
            thread: 0,
            kind: EventKind::MaskChange { mask: mask.clone() },
        });
    }

    /// Records a free-form user event.
    pub fn user(&self, time: TimeUs, process: usize, thread: usize, key: u32, value: i64) {
        self.record(TraceEvent {
            time,
            process,
            thread,
            kind: EventKind::User { key, value },
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` if no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Returns a copy of the events sorted by time (stable for equal times).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut events = self.events.lock().clone();
        events.sort_by_key(|e| e.time);
        events
    }

    /// Returns the events of one process, sorted by time.
    pub fn events_of_process(&self, process: usize) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.process == process)
            .collect()
    }

    /// Clears the buffer.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts_events() {
        let tracer = Tracer::new();
        tracer.state(200, 0, 1, ThreadState::Idle);
        tracer.state(100, 0, 0, ThreadState::Running);
        tracer.counters(150, 0, 0, 1000, 800);
        assert_eq!(tracer.len(), 3);
        let events = tracer.events();
        assert_eq!(events[0].time, 100);
        assert_eq!(events[1].time, 150);
        assert_eq!(events[2].time, 200);
    }

    #[test]
    fn disabled_tracer_discards() {
        let tracer = Tracer::disabled();
        tracer.state(0, 0, 0, ThreadState::Running);
        assert!(tracer.is_empty());
        tracer.set_enabled(true);
        tracer.state(1, 0, 0, ThreadState::Running);
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn clone_shares_buffer() {
        let tracer = Tracer::new();
        let clone = tracer.clone();
        clone.user(5, 1, 0, 42, -7);
        assert_eq!(tracer.len(), 1);
        assert_eq!(
            tracer.events()[0].kind,
            EventKind::User { key: 42, value: -7 }
        );
    }

    #[test]
    fn filter_by_process_and_clear() {
        let tracer = Tracer::new();
        tracer.state(1, 0, 0, ThreadState::Running);
        tracer.state(2, 1, 0, ThreadState::Running);
        tracer.mask_change(3, 1, &CpuSet::first_n(4));
        assert_eq!(tracer.events_of_process(1).len(), 2);
        assert_eq!(tracer.events_of_process(0).len(), 1);
        tracer.clear();
        assert!(tracer.is_empty());
    }
}
