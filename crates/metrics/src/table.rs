//! Aligned text tables for the experiment harness output.
//!
//! Every `fig*` harness binary prints the series the corresponding paper
//! figure plots; [`Table`] keeps that output readable and consistent, and can
//! also emit the same data as CSV for further processing.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already formatted cells.
    ///
    /// Rows shorter than the header are padded with empty cells; longer rows
    /// are kept as-is (the extra cells get their own width).
    pub fn add_row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of string slices.
    pub fn add_row_str(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn column_widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let widths = self.column_widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            out.push_str(&render_row(&self.headers, &widths));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (headers first, comma separated, quotes around
    /// cells containing commas).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row_str(&["short", "1"]);
        t.add_row_str(&["a-much-longer-name", "2"]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        let lines: Vec<&str> = text.lines().collect();
        // title + header + separator + 2 rows
        assert_eq!(lines.len(), 5);
        // The value column starts at the same offset in both data rows.
        let col1 = lines[3].find('1').unwrap();
        let col2 = lines[4].find('2').unwrap();
        assert_eq!(col1, col2);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a", "b"]);
        t.add_row_str(&["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "a,b");
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("t", &["a", "b", "c"]);
        t.add_row_str(&["only-one"]);
        let text = t.render();
        assert!(text.contains("only-one"));
    }
}
