//! Per-thread state timelines and utilization — the data behind the Paraver
//! views of Figures 5 and 13.
//!
//! Figure 5 of the paper shows "simulator's threads on Y-axis. When thread 16
//! is removed, its data is computed by first 4 threads, while the others report
//! lower utilization (white idle spaces)". A [`Timeline`] is that picture as
//! data: for each thread, the sequence of state intervals, from which
//! utilization (the fraction of time spent running) and per-thread busy time
//! are derived.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::tracer::{EventKind, TraceEvent};
use crate::TimeUs;

/// Execution state of a thread at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadState {
    /// Executing application work.
    Running,
    /// Alive but with nothing to execute (the "white idle spaces" of Fig. 5).
    Idle,
    /// Blocked in communication or synchronisation.
    Blocked,
    /// Removed from the team (the CPU was taken away by DROM).
    NotCreated,
}

/// A maximal interval during which a thread stayed in one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateInterval {
    /// Interval start.
    pub start: TimeUs,
    /// Interval end (exclusive).
    pub end: TimeUs,
    /// State during the interval.
    pub state: ThreadState,
}

impl StateInterval {
    /// Interval length in microseconds.
    pub fn duration(&self) -> TimeUs {
        self.end.saturating_sub(self.start)
    }
}

/// State timelines of every thread of one process (or of a whole workload when
/// threads are numbered globally).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Interval list per (process, thread) pair, keyed for deterministic order.
    intervals: BTreeMap<(usize, usize), Vec<StateInterval>>,
    /// End of the observation window.
    horizon: TimeUs,
}

impl Timeline {
    /// Creates an empty timeline with a given horizon (end of observation).
    pub fn new(horizon: TimeUs) -> Self {
        Timeline {
            intervals: BTreeMap::new(),
            horizon,
        }
    }

    /// Builds per-thread timelines from a trace event stream.
    ///
    /// Only [`EventKind::State`] events are considered. Each thread's last
    /// state is extended until `horizon` (or the last event time if later).
    pub fn from_events(events: &[TraceEvent], horizon: TimeUs) -> Self {
        let mut sorted: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::State(_)))
            .collect();
        sorted.sort_by_key(|e| e.time);
        let horizon = sorted
            .last()
            .map(|e| e.time.max(horizon))
            .unwrap_or(horizon);

        let mut timeline = Timeline::new(horizon);
        // Current open state per (process, thread).
        let mut open: BTreeMap<(usize, usize), (TimeUs, ThreadState)> = BTreeMap::new();
        for event in sorted {
            let key = (event.process, event.thread);
            let EventKind::State(state) = &event.kind else {
                continue;
            };
            if let Some((start, prev_state)) = open.insert(key, (event.time, *state)) {
                if event.time > start {
                    timeline.push(
                        key.0,
                        key.1,
                        StateInterval {
                            start,
                            end: event.time,
                            state: prev_state,
                        },
                    );
                }
            }
        }
        // Close every open interval at the horizon.
        for ((process, thread), (start, state)) in open {
            if horizon > start {
                timeline.push(
                    process,
                    thread,
                    StateInterval {
                        start,
                        end: horizon,
                        state,
                    },
                );
            }
        }
        timeline
    }

    /// Appends an interval to a thread's timeline.
    pub fn push(&mut self, process: usize, thread: usize, interval: StateInterval) {
        self.horizon = self.horizon.max(interval.end);
        self.intervals
            .entry((process, thread))
            .or_default()
            .push(interval);
    }

    /// End of the observation window.
    pub fn horizon(&self) -> TimeUs {
        self.horizon
    }

    /// The (process, thread) pairs present in the timeline, in order.
    pub fn threads(&self) -> Vec<(usize, usize)> {
        self.intervals.keys().copied().collect()
    }

    /// Intervals of a thread (empty if unknown).
    pub fn intervals(&self, process: usize, thread: usize) -> &[StateInterval] {
        self.intervals
            .get(&(process, thread))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Time a thread spent in `state`.
    pub fn time_in_state(&self, process: usize, thread: usize, state: ThreadState) -> TimeUs {
        self.intervals(process, thread)
            .iter()
            .filter(|i| i.state == state)
            .map(|i| i.duration())
            .sum()
    }

    /// Fraction of the observation window a thread spent running, in `[0, 1]`.
    pub fn utilization(&self, process: usize, thread: usize) -> f64 {
        if self.horizon == 0 {
            return 0.0;
        }
        self.time_in_state(process, thread, ThreadState::Running) as f64 / self.horizon as f64
    }

    /// Utilization of every thread, in thread order.
    pub fn utilization_per_thread(&self) -> Vec<((usize, usize), f64)> {
        self.threads()
            .into_iter()
            .map(|(p, t)| ((p, t), self.utilization(p, t)))
            .collect()
    }

    /// Average utilization over all threads (0 when empty).
    pub fn average_utilization(&self) -> f64 {
        let per_thread = self.utilization_per_thread();
        if per_thread.is_empty() {
            return 0.0;
        }
        per_thread.iter().map(|(_, u)| u).sum::<f64>() / per_thread.len() as f64
    }

    /// Imbalance metric: maximum running time across threads divided by the
    /// average running time (1.0 = perfectly balanced, like the paper's
    /// discussion of NEST's static data partition in Figure 5).
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<f64> = self
            .threads()
            .into_iter()
            .map(|(p, t)| self.time_in_state(p, t, ThreadState::Running) as f64)
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = busy.iter().cloned().fold(0.0f64, f64::max);
        let avg = busy.iter().sum::<f64>() / busy.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn interval_duration() {
        let i = StateInterval {
            start: 10,
            end: 30,
            state: ThreadState::Running,
        };
        assert_eq!(i.duration(), 20);
    }

    #[test]
    fn build_from_events_closes_at_horizon() {
        let tracer = Tracer::new();
        tracer.state(0, 0, 0, ThreadState::Running);
        tracer.state(50, 0, 0, ThreadState::Idle);
        tracer.state(0, 0, 1, ThreadState::Running);
        let timeline = Timeline::from_events(&tracer.events(), 100);
        assert_eq!(timeline.horizon(), 100);
        assert_eq!(timeline.threads(), vec![(0, 0), (0, 1)]);
        assert_eq!(timeline.time_in_state(0, 0, ThreadState::Running), 50);
        assert_eq!(timeline.time_in_state(0, 0, ThreadState::Idle), 50);
        assert_eq!(timeline.time_in_state(0, 1, ThreadState::Running), 100);
        assert!((timeline.utilization(0, 0) - 0.5).abs() < 1e-12);
        assert!((timeline.utilization(0, 1) - 1.0).abs() < 1e-12);
        assert!((timeline.average_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_uneven_work() {
        let mut timeline = Timeline::new(100);
        timeline.push(
            0,
            0,
            StateInterval {
                start: 0,
                end: 100,
                state: ThreadState::Running,
            },
        );
        timeline.push(
            0,
            1,
            StateInterval {
                start: 0,
                end: 50,
                state: ThreadState::Running,
            },
        );
        timeline.push(
            0,
            1,
            StateInterval {
                start: 50,
                end: 100,
                state: ThreadState::Idle,
            },
        );
        // max = 100, avg = 75 -> imbalance = 1.333…
        assert!((timeline.imbalance() - 100.0 / 75.0).abs() < 1e-9);
        // Perfectly balanced case.
        let mut even = Timeline::new(10);
        even.push(
            0,
            0,
            StateInterval {
                start: 0,
                end: 10,
                state: ThreadState::Running,
            },
        );
        even.push(
            0,
            1,
            StateInterval {
                start: 0,
                end: 10,
                state: ThreadState::Running,
            },
        );
        assert!((even.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_defaults() {
        let timeline = Timeline::new(0);
        assert_eq!(timeline.average_utilization(), 0.0);
        assert_eq!(timeline.imbalance(), 1.0);
        assert!(timeline.threads().is_empty());
        assert!(timeline.intervals(0, 0).is_empty());
        assert_eq!(timeline.utilization(3, 4), 0.0);
    }

    #[test]
    fn unordered_events_are_sorted() {
        let events = vec![
            TraceEvent {
                time: 50,
                process: 0,
                thread: 0,
                kind: EventKind::State(ThreadState::Blocked),
            },
            TraceEvent {
                time: 0,
                process: 0,
                thread: 0,
                kind: EventKind::State(ThreadState::Running),
            },
        ];
        let timeline = Timeline::from_events(&events, 80);
        assert_eq!(timeline.time_in_state(0, 0, ThreadState::Running), 50);
        assert_eq!(timeline.time_in_state(0, 0, ThreadState::Blocked), 30);
    }

    #[test]
    fn non_state_events_are_ignored() {
        let tracer = Tracer::new();
        tracer.counters(0, 0, 0, 100, 100);
        tracer.user(10, 0, 0, 1, 1);
        let timeline = Timeline::from_events(&tracer.events(), 100);
        assert!(timeline.threads().is_empty());
    }
}
