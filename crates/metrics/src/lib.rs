//! Metrics, tracing and reporting for the DROM reproduction.
//!
//! The paper's evaluation reports system-level metrics (total run time,
//! per-job response time, average response time) obtained from SLURM logs and
//! application-level metrics (IPC, cycles per microsecond, per-thread state
//! timelines) obtained by tracing with Extrae and visualising with Paraver.
//! This crate provides the equivalents:
//!
//! * [`counters`] — a simple hardware-counter model (instructions, cycles →
//!   IPC and cycles/µs), fed either by the executable mini-apps or by the
//!   analytical performance models.
//! * [`tracer`] — an Extrae-like per-thread event tracer.
//! * [`timeline`] — per-thread state timelines and utilization, the data behind
//!   the Paraver views of Figures 5 and 13.
//! * [`histogram`] — fixed-bin histograms, the data behind Figure 14.
//! * [`workload`] — job records, response times and workload reports, the data
//!   behind Figures 4, 6–12 and 15.
//! * [`export`] — CSV and Paraver-like text export plus ASCII charts for the
//!   experiment harnesses.
//! * [`table`] — aligned text tables used by every `fig*` harness binary.

#![forbid(unsafe_code)]

pub mod counters;
pub mod export;
pub mod histogram;
pub mod table;
pub mod timeline;
pub mod tracer;
pub mod workload;

pub use counters::{CounterSample, ThreadCounters};
pub use histogram::Histogram;
pub use table::Table;
pub use timeline::{StateInterval, ThreadState, Timeline};
pub use tracer::{EventKind, TraceEvent, Tracer};
pub use workload::{percentile, JobRecord, Scenario, UtilizationStat, WorkloadReport};

/// Virtual time in microseconds, used consistently across traces and reports.
pub type TimeUs = u64;
