//! Asynchronous mode: a helper thread that applies mask updates via callbacks.
//!
//! By default the receiver side of DROM is polling-based: the application (or
//! the intercepted programming-model runtime) calls `DLB_PollDROM` at its
//! malleability points. Section 3.1 of the paper notes this "relies exclusively
//! on the frequency of the programming model invocation" and that DLB
//! "alternatively implements an asynchronous mode for the receiver using a
//! helper thread and a callback system". [`AsyncListener`] is that mode: it
//! subscribes to the process's mask updates, consumes them as soon as they are
//! posted and invokes a user callback with the new mask.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::RecvTimeoutError;

use crate::error::DromResult;
use crate::process::DromProcess;
use drom_cpuset::CpuSet;

/// How often the helper thread re-checks the stop flag while idle.
const IDLE_CHECK_PERIOD: Duration = Duration::from_millis(10);

/// Helper thread applying DROM mask updates asynchronously.
///
/// The listener owns a subscription to the process's update channel. Whenever
/// an administrator posts a new mask the helper thread consumes it (performing
/// the `poll` on behalf of the application) and invokes the callback with the
/// new mask. Dropping the listener (or calling [`stop`](Self::stop)) shuts the
/// helper thread down.
pub struct AsyncListener {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
    process: Arc<DromProcess>,
}

impl AsyncListener {
    /// Spawns the helper thread for `process`, invoking `callback` with every
    /// new mask the process receives.
    pub fn spawn<F>(process: Arc<DromProcess>, callback: F) -> DromResult<Self>
    where
        F: Fn(&CpuSet) + Send + 'static,
    {
        let rx = process.shmem().subscribe(process.pid());
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_process = Arc::clone(&process);
        let handle = std::thread::Builder::new()
            .name(format!("drom-async-{}", process.pid()))
            .spawn(move || {
                let mut applied: u64 = 0;
                loop {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    match rx.recv_timeout(IDLE_CHECK_PERIOD) {
                        Ok(_update) => {
                            // Consume the pending mask on behalf of the
                            // application and notify it through the callback.
                            if let Ok(Some(mask)) = thread_process.poll_drom() {
                                callback(&mask);
                                applied += 1;
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                applied
            })
            .expect("spawning the DROM helper thread");
        Ok(AsyncListener {
            stop,
            handle: Some(handle),
            process,
        })
    }

    /// Stops the helper thread and returns how many updates it applied.
    pub fn stop(mut self) -> u64 {
        self.shutdown()
    }

    fn shutdown(&mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        self.process.shmem().unsubscribe(self.process.pid());
        match self.handle.take() {
            Some(handle) => handle.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for AsyncListener {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::DromAdmin;
    use crate::flags::DromFlags;
    use drom_shmem::NodeShmem;
    use parking_lot::Mutex;

    #[test]
    fn callback_receives_updates_without_polling() {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc = Arc::new(DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap());
        let observed: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let observed_cb = Arc::clone(&observed);
        let listener = AsyncListener::spawn(Arc::clone(&proc), move |mask| {
            observed_cb.lock().push(mask.count());
        })
        .unwrap();

        let admin = DromAdmin::attach(Arc::clone(&shmem));
        // Use the synchronous flag: the call returns once the helper thread
        // has consumed the update, so no explicit poll is ever needed.
        admin
            .set_process_mask(
                1,
                &CpuSet::from_range(0..8).unwrap(),
                DromFlags::default().with_sync_timeout(Duration::from_secs(2)),
            )
            .unwrap();
        admin
            .set_process_mask(
                1,
                &CpuSet::from_range(0..12).unwrap(),
                DromFlags::default().with_sync_timeout(Duration::from_secs(2)),
            )
            .unwrap();

        let applied = listener.stop();
        assert_eq!(applied, 2);
        assert_eq!(observed.lock().as_slice(), &[8, 12]);
        assert_eq!(proc.current_mask().count(), 12);
    }

    #[test]
    fn listener_stops_cleanly_when_idle() {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc = Arc::new(DromProcess::init(1, CpuSet::first_n(4), Arc::clone(&shmem)).unwrap());
        let listener = AsyncListener::spawn(Arc::clone(&proc), |_| {}).unwrap();
        assert_eq!(listener.stop(), 0);
    }

    #[test]
    fn drop_stops_the_helper_thread() {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc = Arc::new(DromProcess::init(1, CpuSet::first_n(4), Arc::clone(&shmem)).unwrap());
        {
            let _listener = AsyncListener::spawn(Arc::clone(&proc), |_| {}).unwrap();
        }
        // After the listener is gone a plain poll still works.
        assert_eq!(proc.poll_drom().unwrap(), None);
    }
}
