//! LeWI — the Lend When Idle module of DLB.
//!
//! DROM lives next to LeWI inside the DLB framework (Figure 1 of the paper):
//! LeWI "acts as a dynamic load balancer for a single application that suffers
//! from processes' load imbalance by adjusting the number of threads per
//! process when needed". The mechanism is simple: when a process enters a
//! blocking region (typically an MPI call) it *lends* its CPUs to a node-wide
//! idle pool; other processes of the node may *borrow* them; when the lender
//! resumes it *reclaims* its own CPUs.
//!
//! [`Lewi`] wraps a [`DromProcess`] with that policy. It is used by the MPI
//! interception layer (`drom-mpisim`) to lend CPUs around blocking collectives,
//! and exercised directly by the `lewi` benchmark.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use drom_cpuset::CpuSet;

use crate::error::DromResult;
use crate::process::DromProcess;

/// Counters describing LeWI activity for one process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LewiStats {
    /// Times the process entered a blocking region and lent CPUs.
    pub lend_events: u64,
    /// Total CPUs lent across all events.
    pub cpus_lent: u64,
    /// Times the process borrowed CPUs from the pool.
    pub borrow_events: u64,
    /// Total CPUs borrowed.
    pub cpus_borrowed: u64,
    /// Times the process reclaimed its CPUs on resume.
    pub reclaim_events: u64,
}

/// Lend-When-Idle policy wrapper around a DROM process.
pub struct Lewi {
    process: Arc<DromProcess>,
    enabled: AtomicBool,
    /// CPUs currently lent by this process (so we know what to reclaim).
    lent: Mutex<CpuSet>,
    stats: Mutex<LewiStats>,
}

impl Lewi {
    /// Creates the LeWI wrapper (enabled by default).
    pub fn new(process: Arc<DromProcess>) -> Self {
        Lewi {
            process,
            enabled: AtomicBool::new(true),
            lent: Mutex::new(CpuSet::new()),
            stats: Mutex::new(LewiStats::default()),
        }
    }

    /// The process this policy drives.
    pub fn process(&self) -> &Arc<DromProcess> {
        &self.process
    }

    /// Enables the policy (lend/borrow calls become effective).
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Disables the policy: subsequent calls become no-ops that lend or borrow
    /// nothing. Useful to compare "DLB loaded but idle" against the baseline.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// `true` if the policy is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Called when the process enters a blocking region: lends every CPU but
    /// `keep` (at least one) to the node idle pool. Returns the CPUs lent.
    pub fn enter_blocking(&self, keep: usize) -> DromResult<CpuSet> {
        if !self.is_enabled() {
            return Ok(CpuSet::new());
        }
        let keep = keep.max(1);
        let mask = self.process.current_mask();
        if mask.count() <= keep {
            return Ok(CpuSet::new());
        }
        let kept = mask.truncated(keep);
        let lendable = mask.difference(&kept);
        let lent = self.process.lend_cpus(&lendable)?;
        if !lent.is_empty() {
            let mut stats = self.stats.lock();
            stats.lend_events += 1;
            stats.cpus_lent += lent.count() as u64;
            let mut lent_set = self.lent.lock();
            *lent_set = lent_set.union(&lent);
        }
        Ok(lent)
    }

    /// Called when the process leaves a blocking region: reclaims its own CPUs
    /// (idle ones come back immediately as a pending update; borrowed ones are
    /// requested back from the borrowers).
    pub fn exit_blocking(&self) -> DromResult<CpuSet> {
        if !self.is_enabled() {
            return Ok(CpuSet::new());
        }
        let had_lent = { self.lent.lock().clone() };
        if had_lent.is_empty() {
            return Ok(CpuSet::new());
        }
        let recovered = self.process.reclaim_cpus()?;
        {
            let mut stats = self.stats.lock();
            stats.reclaim_events += 1;
        }
        // Consume the pending expansion so the caller sees its CPUs again.
        let _ = self.process.poll_drom()?;
        let mut lent_set = self.lent.lock();
        *lent_set = lent_set.difference(&self.process.current_mask());
        Ok(recovered)
    }

    /// Opportunistically borrows up to `max_cpus` from the node idle pool
    /// (e.g. when a process detects it is the bottleneck).
    pub fn borrow(&self, max_cpus: usize) -> DromResult<CpuSet> {
        if !self.is_enabled() {
            return Ok(CpuSet::new());
        }
        let borrowed = self.process.borrow_cpus(max_cpus)?;
        if !borrowed.is_empty() {
            let mut stats = self.stats.lock();
            stats.borrow_events += 1;
            stats.cpus_borrowed += borrowed.count() as u64;
        }
        Ok(borrowed)
    }

    /// Snapshot of the LeWI counters.
    pub fn stats(&self) -> LewiStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drom_shmem::NodeShmem;

    fn two_processes() -> (Arc<DromProcess>, Arc<DromProcess>) {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let a = Arc::new(
            DromProcess::init(1, CpuSet::from_range(0..8).unwrap(), Arc::clone(&shmem)).unwrap(),
        );
        let b = Arc::new(
            DromProcess::init(2, CpuSet::from_range(8..16).unwrap(), Arc::clone(&shmem)).unwrap(),
        );
        (a, b)
    }

    #[test]
    fn lend_borrow_reclaim_cycle() {
        let (a, b) = two_processes();
        let lewi_a = Lewi::new(Arc::clone(&a));
        let lewi_b = Lewi::new(Arc::clone(&b));

        // Process A enters MPI_Barrier: it lends all but one CPU.
        let lent = lewi_a.enter_blocking(1).unwrap();
        assert_eq!(lent.count(), 7);
        assert_eq!(a.num_cpus(), 1);

        // Process B is the straggler: it borrows four extra CPUs.
        let borrowed = lewi_b.borrow(4).unwrap();
        assert_eq!(borrowed.count(), 4);
        assert_eq!(b.num_cpus(), 12);

        // Process A leaves the barrier and reclaims.
        lewi_a.exit_blocking().unwrap();
        // The three CPUs still in the pool are back immediately.
        assert!(a.num_cpus() >= 4);
        // The borrower is asked to shrink at its next poll.
        let new_b = b.poll_drom().unwrap().unwrap();
        assert_eq!(new_b.count(), 8);

        let stats_a = lewi_a.stats();
        assert_eq!(stats_a.lend_events, 1);
        assert_eq!(stats_a.cpus_lent, 7);
        assert_eq!(stats_a.reclaim_events, 1);
        let stats_b = lewi_b.stats();
        assert_eq!(stats_b.borrow_events, 1);
        assert_eq!(stats_b.cpus_borrowed, 4);
    }

    #[test]
    fn disabled_lewi_is_a_noop() {
        let (a, _b) = two_processes();
        let lewi = Lewi::new(Arc::clone(&a));
        lewi.disable();
        assert!(!lewi.is_enabled());
        assert!(lewi.enter_blocking(1).unwrap().is_empty());
        assert!(lewi.borrow(4).unwrap().is_empty());
        assert!(lewi.exit_blocking().unwrap().is_empty());
        assert_eq!(a.num_cpus(), 8);
        assert_eq!(lewi.stats(), LewiStats::default());
        lewi.enable();
        assert!(lewi.is_enabled());
    }

    #[test]
    fn enter_blocking_keeps_at_least_one_cpu() {
        let (a, _b) = two_processes();
        let lewi = Lewi::new(Arc::clone(&a));
        lewi.enter_blocking(0).unwrap();
        assert_eq!(a.num_cpus(), 1);
        // Entering again with nothing left to lend is a no-op.
        assert!(lewi.enter_blocking(1).unwrap().is_empty());
    }

    #[test]
    fn exit_without_lend_is_noop() {
        let (a, _b) = two_processes();
        let lewi = Lewi::new(Arc::clone(&a));
        assert!(lewi.exit_blocking().unwrap().is_empty());
        assert_eq!(lewi.stats().reclaim_events, 0);
    }
}
