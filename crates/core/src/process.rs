//! The application-side DLB runtime: registration, polling and finalization.
//!
//! Every process of a DROM-managed application holds one [`DromProcess`]. In
//! the original implementation this state is created by `DLB_Init` (either
//! called explicitly by the application, as in Listing 1 of the paper, or
//! implicitly by the intercepted programming-model runtime) and the process
//! then observes administrator decisions through `DLB_PollDROM` — or through
//! the asynchronous helper thread, see [`crate::callbacks::AsyncListener`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use drom_cpuset::CpuSet;
use drom_shmem::{MaskUpdate, NodeShmem, Pid, SlotHint};

use crate::api::DromEnviron;
use crate::error::{DromError, DromResult};

/// Counters describing one process's interaction with DROM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// `poll_drom` invocations.
    pub polls: u64,
    /// Polls that returned a new mask.
    pub updates: u64,
}

/// Application-side handle of a DROM-managed process.
///
/// The handle caches the mask the process is currently running with; the cache
/// is refreshed by [`poll_drom`](Self::poll_drom). Dropping the handle
/// finalizes the process (unregistering it from the node shared memory) unless
/// [`finalize`](Self::finalize) was already called.
pub struct DromProcess {
    pid: Pid,
    shmem: Arc<NodeShmem>,
    /// Cached slot of this registration: polling through it is O(1) — one
    /// relaxed atomic load on the no-update path, no registry lock.
    slot: SlotHint,
    mask: Mutex<CpuSet>,
    finalized: AtomicBool,
    polls: AtomicU64,
    updates: AtomicU64,
}

impl DromProcess {
    /// Registers the process in the node's DROM shared memory (`DLB_Init`).
    ///
    /// If an administrator pre-initialized this pid, the pre-reserved mask is
    /// adopted and `initial_mask` is ignored (this is how a `DROM_PreInit` +
    /// `fork`/`exec` launch ends up with the mask the scheduler chose).
    pub fn init(pid: Pid, initial_mask: CpuSet, shmem: Arc<NodeShmem>) -> DromResult<Self> {
        let adopted = shmem.register(pid, initial_mask)?;
        let slot = shmem.slot_hint(pid)?;
        Ok(DromProcess {
            pid,
            shmem,
            slot,
            mask: Mutex::new(adopted),
            finalized: AtomicBool::new(false),
            polls: AtomicU64::new(0),
            updates: AtomicU64::new(0),
        })
    }

    /// Registers a process launched through `DROM_PreInit`, using the
    /// environment handed down by the administrator.
    pub fn init_from_environ(environ: &DromEnviron, shmem: Arc<NodeShmem>) -> DromResult<Self> {
        Self::init(environ.pid, environ.mask.clone(), shmem)
    }

    fn check_live(&self) -> DromResult<()> {
        if self.finalized.load(Ordering::Acquire) {
            Err(DromError::Finalized)
        } else {
            Ok(())
        }
    }

    /// The process identifier this handle registered with.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The node shared memory this process is registered in.
    pub fn shmem(&self) -> &Arc<NodeShmem> {
        &self.shmem
    }

    /// The mask the process is currently running with (local cached view).
    pub fn current_mask(&self) -> CpuSet {
        self.mask.lock().clone()
    }

    /// Number of CPUs the process is currently running with.
    pub fn num_cpus(&self) -> usize {
        self.mask.lock().count()
    }

    /// Polls the shared memory for a pending mask update (`DLB_PollDROM`).
    ///
    /// Returns `Ok(Some(mask))` when an administrator posted a new mask since
    /// the last poll — the caller must then adapt its thread count and
    /// affinity — and `Ok(None)` when nothing changed. The `Ok(None)` path is
    /// lock-free (a single relaxed atomic load of the cached slot's stamp),
    /// so calling this at every malleability point never contends with
    /// administrator traffic on the node.
    pub fn poll_drom(&self) -> DromResult<Option<CpuSet>> {
        self.check_live()?;
        // SAFETY(ordering): statistics counters; nothing synchronizes on
        // their values and stats() only needs eventual totals.
        self.polls.fetch_add(1, Ordering::Relaxed);
        match self.shmem.poll_hinted(self.slot, self.pid)? {
            Some(mask) => {
                // SAFETY(ordering): statistics counter, as above.
                self.updates.fetch_add(1, Ordering::Relaxed);
                *self.mask.lock() = mask.clone();
                Ok(Some(mask))
            }
            None => Ok(None),
        }
    }

    /// `true` if an administrator posted a mask this process has not applied
    /// yet (a poll would return `Some`). Lock-free, like
    /// [`poll_drom`](Self::poll_drom).
    pub fn has_pending_update(&self) -> DromResult<bool> {
        self.check_live()?;
        Ok(self.shmem.has_pending_hinted(self.slot, self.pid)?)
    }

    /// Unregisters the process from the shared memory (`DLB_Finalize`).
    ///
    /// Returns the expansions posted to the original owners of the CPUs this
    /// process releases. The handle becomes unusable afterwards.
    pub fn finalize(&self) -> DromResult<Vec<MaskUpdate>> {
        self.check_live()?;
        self.finalized.store(true, Ordering::Release);
        Ok(self.shmem.unregister(self.pid)?)
    }

    /// Interaction counters for this handle.
    pub fn stats(&self) -> ProcessStats {
        ProcessStats {
            // SAFETY(ordering): statistics snapshot; approximate totals are
            // acceptable and nothing orders against them.
            polls: self.polls.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // LeWI primitives (used by the `Lewi` policy wrapper)
    // ------------------------------------------------------------------

    /// Lends `cpus` to the node idle pool; returns the CPUs actually lent.
    pub fn lend_cpus(&self, cpus: &CpuSet) -> DromResult<CpuSet> {
        self.check_live()?;
        let lent = self.shmem.lend_cpus(self.pid, cpus)?;
        let mut mask = self.mask.lock();
        *mask = mask.difference(&lent);
        Ok(lent)
    }

    /// Borrows up to `max_cpus` CPUs from the node idle pool.
    pub fn borrow_cpus(&self, max_cpus: usize) -> DromResult<CpuSet> {
        self.check_live()?;
        let borrowed = self.shmem.borrow_cpus(self.pid, max_cpus)?;
        let mut mask = self.mask.lock();
        *mask = mask.union(&borrowed);
        Ok(borrowed)
    }

    /// Reclaims the CPUs this process originally owns; CPUs still idle return
    /// immediately (as a pending update), borrowed ones are posted as pending
    /// shrinks to the borrowers.
    pub fn reclaim_cpus(&self) -> DromResult<CpuSet> {
        self.check_live()?;
        Ok(self.shmem.reclaim_cpus(self.pid)?)
    }
}

impl Drop for DromProcess {
    fn drop(&mut self) {
        if !self.finalized.swap(true, Ordering::AcqRel) {
            let _ = self.shmem.unregister(self.pid);
        }
    }
}

impl std::fmt::Debug for DromProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DromProcess")
            .field("pid", &self.pid)
            .field("node", &self.shmem.node_name())
            .field("mask", &self.current_mask())
            // SAFETY(ordering): debug formatting; a stale flag only affects
            // the printed text.
            .field("finalized", &self.finalized.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::DromAdmin;
    use crate::flags::DromFlags;

    fn node() -> Arc<NodeShmem> {
        Arc::new(NodeShmem::new("n", 16))
    }

    #[test]
    fn init_poll_finalize() {
        let shmem = node();
        let proc = DromProcess::init(5, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
        assert_eq!(proc.pid(), 5);
        assert_eq!(proc.num_cpus(), 16);
        assert_eq!(proc.poll_drom().unwrap(), None);
        assert!(!proc.has_pending_update().unwrap());

        let admin = DromAdmin::attach(Arc::clone(&shmem));
        admin
            .set_process_mask(5, &CpuSet::first_n(4), DromFlags::default())
            .unwrap();
        assert!(proc.has_pending_update().unwrap());
        let mask = proc.poll_drom().unwrap().unwrap();
        assert_eq!(mask.count(), 4);
        assert_eq!(proc.current_mask(), mask);
        let stats = proc.stats();
        assert_eq!(stats.polls, 2);
        assert_eq!(stats.updates, 1);

        proc.finalize().unwrap();
        assert_eq!(proc.poll_drom(), Err(DromError::Finalized));
        assert_eq!(proc.finalize(), Err(DromError::Finalized));
    }

    #[test]
    fn double_init_same_pid_fails() {
        let shmem = node();
        let _a = DromProcess::init(5, CpuSet::first_n(4), Arc::clone(&shmem)).unwrap();
        assert_eq!(
            DromProcess::init(5, CpuSet::from_range(4..8).unwrap(), Arc::clone(&shmem))
                .unwrap_err(),
            DromError::AlreadyInitialized { pid: 5 }
        );
    }

    #[test]
    fn drop_unregisters() {
        let shmem = node();
        {
            let _proc = DromProcess::init(5, CpuSet::first_n(4), Arc::clone(&shmem)).unwrap();
            assert_eq!(shmem.pid_list(), vec![5]);
        }
        assert!(shmem.pid_list().is_empty());
    }

    #[test]
    fn lend_borrow_reclaim_through_process() {
        let shmem = node();
        let a =
            DromProcess::init(1, CpuSet::from_range(0..8).unwrap(), Arc::clone(&shmem)).unwrap();
        let b =
            DromProcess::init(2, CpuSet::from_range(8..16).unwrap(), Arc::clone(&shmem)).unwrap();

        let lent = a.lend_cpus(&CpuSet::from_range(4..8).unwrap()).unwrap();
        assert_eq!(lent.count(), 4);
        assert_eq!(a.num_cpus(), 4);

        let borrowed = b.borrow_cpus(4).unwrap();
        assert_eq!(borrowed.count(), 4);
        assert_eq!(b.num_cpus(), 12);

        a.reclaim_cpus().unwrap();
        // The borrower is asked to give the CPUs back at its next poll.
        let new_b = b.poll_drom().unwrap().unwrap();
        assert_eq!(new_b.count(), 8);
    }

    #[test]
    fn init_from_environ_adopts_reserved_mask() {
        let shmem = node();
        let _running = DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        let (environ, _) = admin
            .pre_init(
                2,
                &CpuSet::from_range(12..16).unwrap(),
                DromFlags::default().with_steal(),
            )
            .unwrap();
        let child = DromProcess::init_from_environ(&environ, Arc::clone(&shmem)).unwrap();
        assert_eq!(child.current_mask(), CpuSet::from_range(12..16).unwrap());
    }
}
