//! Victim-selection policies: which running processes give up CPUs when a new
//! job needs room in the node.
//!
//! The paper's SLURM integration always applies equipartition ("for fairness,
//! computational resources are equally partitioned among running jobs"), but
//! the conclusions explicitly call out that "the simplicity of DROM APIs gives
//! more freedom to the scheduler, that can implement malleable scheduling
//! techniques, for instance by choosing one or multiple specific jobs to share
//! computational nodes, or … by choosing as victim nodes the ones with lower
//! utilization". This module provides a small family of such policies so the
//! scheduler layer (and the ablation benchmarks) can compare them.

use drom_cpuset::CpuSet;
use drom_shmem::{Pid, ProcessEntry};

/// A shrink decision for one process: the mask it should be left with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkRequest {
    /// The process to shrink.
    pub pid: Pid,
    /// The mask the process keeps (a subset of its previous effective mask).
    pub new_mask: CpuSet,
    /// The CPUs taken away from it.
    pub taken: CpuSet,
}

/// How victims are chosen when `needed` CPUs must be freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimPolicy {
    /// Every process ends up with (roughly) the same number of CPUs: take from
    /// the largest until the requested amount is freed or everything is level.
    /// This is the paper's fairness policy.
    Equipartition,
    /// Take CPUs from the process with the most CPUs first, one round at a
    /// time, keeping at least one CPU per process.
    LargestFirst,
    /// Take CPUs from the most recently registered processes first (the idea
    /// being that older jobs have more accumulated state worth preserving).
    YoungestFirst,
}

/// Chooses which CPUs to take from the given processes so that `needed` CPUs
/// become free, following `policy`.
///
/// Only processes in the `entries` slice are candidates; every returned
/// [`ShrinkRequest::new_mask`] keeps at least one CPU. If the processes cannot
/// free `needed` CPUs without starving someone, as many CPUs as possible are
/// freed (the caller can check the total of `taken`).
pub fn choose_victims(
    entries: &[ProcessEntry],
    needed: usize,
    policy: VictimPolicy,
) -> Vec<ShrinkRequest> {
    if needed == 0 || entries.is_empty() {
        return Vec::new();
    }
    // Working copy of (pid, mask, registration order).
    let mut working: Vec<(Pid, CpuSet, u64)> = entries
        .iter()
        .map(|e| (e.pid, e.effective_mask().clone(), e.registration_seq))
        .collect();
    let original: Vec<(Pid, CpuSet)> = working
        .iter()
        .map(|(pid, mask, _)| (*pid, mask.clone()))
        .collect();

    let mut remaining = needed;
    match policy {
        VictimPolicy::Equipartition | VictimPolicy::LargestFirst => {
            // Repeatedly take one CPU from the process with the most CPUs.
            while remaining > 0 {
                let candidate = working
                    .iter_mut()
                    .filter(|(_, mask, _)| mask.count() > 1)
                    .max_by_key(|(_, mask, _)| mask.count());
                let Some((_, mask, _)) = candidate else { break };
                // Remove the highest CPU so the survivor keeps a stable prefix.
                let last = mask.last().expect("mask has more than one CPU");
                mask.clear(last).expect("cpu within range");
                remaining -= 1;
            }
        }
        VictimPolicy::YoungestFirst => {
            // Sort by registration order, newest first, and drain each down to
            // one CPU before moving to the next.
            let mut order: Vec<usize> = (0..working.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(working[i].2));
            'outer: for idx in order {
                while working[idx].1.count() > 1 {
                    if remaining == 0 {
                        break 'outer;
                    }
                    let last = working[idx].1.last().expect("non-empty mask");
                    working[idx].1.clear(last).expect("cpu within range");
                    remaining -= 1;
                }
            }
        }
    }

    // Emit one request per process whose mask actually changed.
    working
        .into_iter()
        .zip(original)
        .filter(|((_, new_mask, _), (_, old_mask))| new_mask != old_mask)
        .map(|((pid, new_mask, _), (_, old_mask))| ShrinkRequest {
            taken: old_mask.difference(&new_mask),
            pid,
            new_mask,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drom_shmem::NodeShmem;

    /// Builds process entries by registering pids with the given masks.
    fn entries(masks: &[(Pid, std::ops::Range<usize>)]) -> Vec<ProcessEntry> {
        let shmem = NodeShmem::new("n", 64);
        for (pid, range) in masks {
            shmem
                .register(*pid, CpuSet::from_range(range.clone()).unwrap())
                .unwrap();
        }
        masks
            .iter()
            .map(|(pid, _)| shmem.entry(*pid).unwrap())
            .collect()
    }

    fn total_taken(requests: &[ShrinkRequest]) -> usize {
        requests.iter().map(|r| r.taken.count()).sum()
    }

    #[test]
    fn equipartition_takes_from_largest() {
        let es = entries(&[(1, 0..12), (2, 12..16)]);
        let requests = choose_victims(&es, 4, VictimPolicy::Equipartition);
        assert_eq!(total_taken(&requests), 4);
        // All four CPUs come from pid 1 (12 CPUs vs 4).
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].pid, 1);
        assert_eq!(requests[0].new_mask.count(), 8);
        // The kept mask is a prefix of the original.
        assert!(requests[0]
            .new_mask
            .is_subset_of(&CpuSet::from_range(0..12).unwrap()));
    }

    #[test]
    fn equipartition_levels_several_processes() {
        let es = entries(&[(1, 0..8), (2, 8..16)]);
        let requests = choose_victims(&es, 8, VictimPolicy::Equipartition);
        assert_eq!(total_taken(&requests), 8);
        // Both processes end up with 4 CPUs.
        for r in &requests {
            assert_eq!(r.new_mask.count(), 4);
        }
    }

    #[test]
    fn never_starves_a_process() {
        let es = entries(&[(1, 0..2), (2, 2..4)]);
        // Asking for more than can be freed: each process keeps one CPU.
        let requests = choose_victims(&es, 10, VictimPolicy::Equipartition);
        assert_eq!(total_taken(&requests), 2);
        for r in &requests {
            assert_eq!(r.new_mask.count(), 1);
        }
    }

    #[test]
    fn youngest_first_drains_newest() {
        let es = entries(&[(1, 0..8), (2, 8..16)]);
        // pid 2 registered later, so it is drained first.
        let requests = choose_victims(&es, 6, VictimPolicy::YoungestFirst);
        assert_eq!(total_taken(&requests), 6);
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].pid, 2);
        assert_eq!(requests[0].new_mask.count(), 2);
    }

    #[test]
    fn youngest_first_spills_to_older() {
        let es = entries(&[(1, 0..8), (2, 8..16)]);
        // Need more than the youngest can give (it keeps one CPU).
        let requests = choose_victims(&es, 10, VictimPolicy::YoungestFirst);
        assert_eq!(total_taken(&requests), 10);
        let by_pid: std::collections::HashMap<Pid, &ShrinkRequest> =
            requests.iter().map(|r| (r.pid, r)).collect();
        assert_eq!(by_pid[&2].new_mask.count(), 1);
        assert_eq!(by_pid[&1].new_mask.count(), 5);
    }

    #[test]
    fn zero_needed_or_no_entries() {
        let es = entries(&[(1, 0..8)]);
        assert!(choose_victims(&es, 0, VictimPolicy::Equipartition).is_empty());
        assert!(choose_victims(&[], 4, VictimPolicy::Equipartition).is_empty());
    }

    #[test]
    fn taken_and_new_mask_partition_old_mask() {
        let es = entries(&[(1, 0..10), (2, 10..16)]);
        for policy in [
            VictimPolicy::Equipartition,
            VictimPolicy::LargestFirst,
            VictimPolicy::YoungestFirst,
        ] {
            let requests = choose_victims(&es, 5, policy);
            for r in &requests {
                let original = es.iter().find(|e| e.pid == r.pid).unwrap();
                let reunion = r.new_mask.union(&r.taken);
                assert_eq!(&reunion, original.effective_mask(), "policy {policy:?}");
                assert!(r.new_mask.is_disjoint(&r.taken));
                assert!(!r.new_mask.is_empty());
            }
            assert_eq!(total_taken(&requests), 5, "policy {policy:?}");
        }
    }
}
