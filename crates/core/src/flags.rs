//! Option flags for the DROM administrator calls.
//!
//! The C interface takes a `dlb_drom_flags_t` bitset that selects "whether the
//! function call is synchronous or asynchronous, whether to steal the CPUs from
//! other processes, etc." (Section 3.2). [`DromFlags`] reproduces that bitset
//! with a small builder-style API so call sites read naturally:
//!
//! ```
//! use drom_core::DromFlags;
//! let flags = DromFlags::default().with_steal().with_sync();
//! assert!(flags.steal());
//! assert!(flags.sync());
//! assert!(!flags.return_stolen());
//! ```

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Default timeout used by synchronous operations when none is given.
pub const DEFAULT_SYNC_TIMEOUT: Duration = Duration::from_secs(5);

/// Bitset of options accepted by the DROM administrator calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DromFlags {
    bits: u32,
    /// Timeout (in microseconds) used when [`sync`](Self::sync) is set; zero
    /// means [`DEFAULT_SYNC_TIMEOUT`].
    sync_timeout_us: u64,
}

impl DromFlags {
    const SYNC: u32 = 1 << 0;
    const STEAL: u32 = 1 << 1;
    const RETURN_STOLEN: u32 = 1 << 2;
    const NO_BLOCK: u32 = 1 << 3;

    /// No options: asynchronous, non-stealing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a synchronous call: the administrator blocks until the target
    /// process consumes the new mask (or the timeout expires).
    pub fn with_sync(mut self) -> Self {
        self.bits |= Self::SYNC;
        self
    }

    /// Synchronous call with an explicit timeout.
    pub fn with_sync_timeout(mut self, timeout: Duration) -> Self {
        self.bits |= Self::SYNC;
        self.sync_timeout_us = timeout.as_micros().min(u64::MAX as u128) as u64;
        self
    }

    /// Allows taking CPUs currently owned by other processes (posting them a
    /// pending shrink).
    pub fn with_steal(mut self) -> Self {
        self.bits |= Self::STEAL;
        self
    }

    /// When finalizing a pre-initialized process, return the CPUs it used to
    /// the processes they were stolen from.
    pub fn with_return_stolen(mut self) -> Self {
        self.bits |= Self::RETURN_STOLEN;
        self
    }

    /// Never block, even for operations that would normally wait briefly.
    pub fn with_no_block(mut self) -> Self {
        self.bits |= Self::NO_BLOCK;
        self
    }

    /// `true` if the call should block until the target applies the change.
    pub fn sync(&self) -> bool {
        self.bits & Self::SYNC != 0
    }

    /// `true` if CPUs may be stolen from other processes.
    pub fn steal(&self) -> bool {
        self.bits & Self::STEAL != 0
    }

    /// `true` if stolen CPUs should be returned on finalize.
    pub fn return_stolen(&self) -> bool {
        self.bits & Self::RETURN_STOLEN != 0
    }

    /// `true` if the call must never block.
    pub fn no_block(&self) -> bool {
        self.bits & Self::NO_BLOCK != 0
    }

    /// Timeout for synchronous calls.
    pub fn sync_timeout(&self) -> Duration {
        if self.sync_timeout_us == 0 {
            DEFAULT_SYNC_TIMEOUT
        } else {
            Duration::from_micros(self.sync_timeout_us)
        }
    }

    /// Raw bit representation (compatible with a C-style ABI).
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_flags_are_clear() {
        let f = DromFlags::default();
        assert!(!f.sync());
        assert!(!f.steal());
        assert!(!f.return_stolen());
        assert!(!f.no_block());
        assert_eq!(f.bits(), 0);
        assert_eq!(f.sync_timeout(), DEFAULT_SYNC_TIMEOUT);
    }

    #[test]
    fn builder_sets_bits() {
        let f = DromFlags::new().with_steal().with_return_stolen();
        assert!(f.steal());
        assert!(f.return_stolen());
        assert!(!f.sync());
    }

    #[test]
    fn sync_timeout_roundtrip() {
        let f = DromFlags::new().with_sync_timeout(Duration::from_millis(250));
        assert!(f.sync());
        assert_eq!(f.sync_timeout(), Duration::from_millis(250));
        // Plain sync falls back to the default timeout.
        let g = DromFlags::new().with_sync();
        assert_eq!(g.sync_timeout(), DEFAULT_SYNC_TIMEOUT);
    }

    #[test]
    fn flags_are_independent() {
        let f = DromFlags::new().with_no_block();
        assert!(f.no_block());
        assert!(!f.steal());
        let g = f.with_steal();
        assert!(g.no_block() && g.steal());
    }
}
