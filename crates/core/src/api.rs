//! The administrator-side DROM API (`DROM_Attach` … `DROM_PostFinalize`).
//!
//! An *administrator process* is any process that attaches to a node's DLB
//! shared memory to query or modify the masks of the processes running there:
//! SLURM's `slurmd`/`slurmstepd` in the paper's integration, or a user-written
//! tool. [`DromAdmin`] is that handle. One administrator manages one node; a
//! multi-node launcher creates one per node (Section 3.2: "one administrator
//! process must be created for each node that requires management").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use drom_cpuset::CpuSet;
use drom_shmem::{MaskUpdate, NodeShmem, Pid, ProcessEntry, ShmemStats};

use crate::error::{DromError, DromResult};
use crate::flags::DromFlags;

/// Outcome of a `set_process_mask` call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetMaskReport {
    /// `true` if a pending mask was posted; `false` when the requested mask was
    /// already the process's effective mask (the C API's `DLB_NOUPDT`).
    pub updated: bool,
    /// Shrinks posted to other processes whose CPUs were stolen.
    pub victims: Vec<MaskUpdate>,
}

/// The environment a pre-initialized child process needs to register itself
/// under the reserved entry — the analogue of the `next_environ` argument of
/// `DROM_PreInit` (in the C implementation this travels as environment
/// variables across `fork`/`exec`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DromEnviron {
    /// The pid reserved by the administrator.
    pub pid: Pid,
    /// The node whose shared memory holds the reservation.
    pub node: String,
    /// The mask reserved for the process.
    pub mask: CpuSet,
}

/// Administrator handle attached to one node's DROM shared memory.
///
/// Dropping the handle detaches automatically; calling any method after
/// [`detach`](Self::detach) returns [`DromError::Finalized`].
pub struct DromAdmin {
    shmem: Arc<NodeShmem>,
    attached: AtomicBool,
}

impl DromAdmin {
    /// Attaches to the node's shared memory (`DROM_Attach`).
    pub fn attach(shmem: Arc<NodeShmem>) -> Self {
        shmem.attach();
        DromAdmin {
            shmem,
            attached: AtomicBool::new(true),
        }
    }

    fn check_attached(&self) -> DromResult<()> {
        if self.attached.load(Ordering::Acquire) {
            Ok(())
        } else {
            Err(DromError::Finalized)
        }
    }

    /// Detaches from the shared memory (`DROM_Detach`).
    ///
    /// Further calls on this handle fail with [`DromError::Finalized`].
    pub fn detach(&self) -> DromResult<()> {
        self.check_attached()?;
        self.attached.store(false, Ordering::Release);
        self.shmem.detach()?;
        Ok(())
    }

    /// The node this administrator manages.
    pub fn node_name(&self) -> &str {
        self.shmem.node_name()
    }

    /// The shared-memory segment this administrator is attached to.
    pub fn shmem(&self) -> &Arc<NodeShmem> {
        &self.shmem
    }

    /// Lists the pids registered with DROM on this node (`DROM_GetPidList`).
    pub fn get_pid_list(&self) -> DromResult<Vec<Pid>> {
        self.check_attached()?;
        Ok(self.shmem.pid_list())
    }

    /// Returns the *effective* mask of `pid` — the mask it will run with once
    /// it consumes any pending update (`DROM_GetProcessMask`).
    pub fn get_process_mask(&self, pid: Pid, _flags: DromFlags) -> DromResult<CpuSet> {
        self.check_attached()?;
        Ok(self.shmem.effective_mask(pid)?)
    }

    /// Returns the mask `pid` is running with right now, ignoring pending
    /// updates.
    pub fn get_current_mask(&self, pid: Pid) -> DromResult<CpuSet> {
        self.check_attached()?;
        Ok(self.shmem.current_mask(pid)?)
    }

    /// Returns a full snapshot of the process entry (state, masks, counters).
    pub fn get_process_entry(&self, pid: Pid) -> DromResult<ProcessEntry> {
        self.check_attached()?;
        Ok(self.shmem.entry(pid)?)
    }

    /// Posts a new mask for `pid` (`DROM_SetProcessMask`).
    ///
    /// With [`DromFlags::with_steal`] the CPUs being added may be taken from
    /// other processes (they receive a pending shrink, reported in
    /// [`SetMaskReport::victims`]). With [`DromFlags::with_sync`] the call
    /// blocks until the target consumes the update or the flag's timeout
    /// expires.
    pub fn set_process_mask(
        &self,
        pid: Pid,
        mask: &CpuSet,
        flags: DromFlags,
    ) -> DromResult<SetMaskReport> {
        self.check_attached()?;
        let outcome = if flags.sync() {
            self.shmem.set_pending_mask_sync(
                pid,
                mask.clone(),
                flags.steal(),
                flags.sync_timeout(),
            )?
        } else {
            self.shmem
                .set_pending_mask(pid, mask.clone(), flags.steal())?
        };
        Ok(SetMaskReport {
            updated: outcome.updated,
            victims: outcome.victims,
        })
    }

    /// Reserves `mask` for a process about to be launched (`DROM_PreInit`).
    ///
    /// If the CPUs are currently held by running processes and
    /// [`DromFlags::with_steal`] is set, those processes are shrunk ("making
    /// room in the node", Section 3.2). The returned [`DromEnviron`] must be
    /// handed to the child so it registers under the reserved entry.
    pub fn pre_init(
        &self,
        pid: Pid,
        mask: &CpuSet,
        flags: DromFlags,
    ) -> DromResult<(DromEnviron, Vec<MaskUpdate>)> {
        self.check_attached()?;
        let victims = self.shmem.preregister(pid, mask.clone(), flags.steal())?;
        Ok((
            DromEnviron {
                pid,
                node: self.shmem.node_name().to_string(),
                mask: mask.clone(),
            },
            victims,
        ))
    }

    /// Finalizes a previously pre-initialized (or plainly registered) process
    /// (`DROM_PostFinalize`), cleaning its entry from the shared memory.
    ///
    /// Returns the pending expansions posted to the original owners of the
    /// released CPUs (empty if nobody is waiting for them). Calling it for a
    /// process that already cleaned up after itself returns
    /// [`DromError::NoSuchProcess`], which the caller may ignore — the paper
    /// notes "it is always recommended to call this function to clean the
    /// data" precisely because the job scheduler cannot know.
    pub fn post_finalize(&self, pid: Pid, _flags: DromFlags) -> DromResult<Vec<MaskUpdate>> {
        self.check_attached()?;
        Ok(self.shmem.unregister(pid)?)
    }

    /// CPUs of the node not assigned to any registered process.
    pub fn free_cpus(&self) -> DromResult<CpuSet> {
        self.check_attached()?;
        Ok(self.shmem.free_cpus())
    }

    /// Statistics of the node's shared memory.
    pub fn stats(&self) -> DromResult<ShmemStats> {
        self.check_attached()?;
        Ok(self.shmem.stats())
    }
}

impl Drop for DromAdmin {
    fn drop(&mut self) {
        if self.attached.swap(false, Ordering::AcqRel) {
            let _ = self.shmem.detach();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::DromProcess;

    fn node() -> Arc<NodeShmem> {
        Arc::new(NodeShmem::new("test-node", 16))
    }

    #[test]
    fn attach_query_detach() {
        let shmem = node();
        let app = DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        assert_eq!(admin.node_name(), "test-node");
        assert_eq!(admin.get_pid_list().unwrap(), vec![1]);
        assert_eq!(
            admin
                .get_process_mask(1, DromFlags::default())
                .unwrap()
                .count(),
            16
        );
        admin.detach().unwrap();
        assert_eq!(admin.get_pid_list(), Err(DromError::Finalized));
        assert_eq!(admin.detach(), Err(DromError::Finalized));
        drop(app);
    }

    #[test]
    fn drop_detaches() {
        let shmem = node();
        {
            let _admin = DromAdmin::attach(Arc::clone(&shmem));
            assert_eq!(shmem.attachments(), 1);
        }
        assert_eq!(shmem.attachments(), 0);
    }

    #[test]
    fn set_mask_reports_noupdate() {
        let shmem = node();
        let _app = DromProcess::init(1, CpuSet::first_n(8), Arc::clone(&shmem)).unwrap();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        let report = admin
            .set_process_mask(1, &CpuSet::first_n(8), DromFlags::default())
            .unwrap();
        assert!(!report.updated);
        let report = admin
            .set_process_mask(1, &CpuSet::first_n(4), DromFlags::default())
            .unwrap();
        assert!(report.updated);
        assert!(report.victims.is_empty());
    }

    #[test]
    fn set_mask_with_steal_reports_victims() {
        let shmem = node();
        let app1 =
            DromProcess::init(1, CpuSet::from_range(0..8).unwrap(), Arc::clone(&shmem)).unwrap();
        let _app2 =
            DromProcess::init(2, CpuSet::from_range(8..16).unwrap(), Arc::clone(&shmem)).unwrap();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        // Growing pid 2 into pid 1's CPUs requires the steal flag.
        let err = admin
            .set_process_mask(2, &CpuSet::from_range(4..16).unwrap(), DromFlags::default())
            .unwrap_err();
        assert!(matches!(err, DromError::Permission { owner: 1, .. }));
        let report = admin
            .set_process_mask(
                2,
                &CpuSet::from_range(4..16).unwrap(),
                DromFlags::default().with_steal(),
            )
            .unwrap();
        assert!(report.updated);
        assert_eq!(report.victims.len(), 1);
        assert_eq!(report.victims[0].pid, 1);
        assert_eq!(
            app1.poll_drom().unwrap().unwrap(),
            CpuSet::from_range(0..4).unwrap()
        );
    }

    #[test]
    fn preinit_and_postfinalize_cycle() {
        let shmem = node();
        let sim = DromProcess::init(10, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
        let admin = DromAdmin::attach(Arc::clone(&shmem));

        // Reserve half the node for a new process, stealing from pid 10.
        let (environ, victims) = admin
            .pre_init(
                20,
                &CpuSet::from_range(8..16).unwrap(),
                DromFlags::default().with_steal(),
            )
            .unwrap();
        assert_eq!(environ.pid, 20);
        assert_eq!(environ.node, "test-node");
        assert_eq!(victims.len(), 1);
        assert_eq!(sim.poll_drom().unwrap().unwrap().count(), 8);

        // The child registers through the environ and adopts the reservation.
        let child = DromProcess::init_from_environ(&environ, Arc::clone(&shmem)).unwrap();
        assert_eq!(child.current_mask().count(), 8);

        // The child finishes; the scheduler calls post_finalize and pid 10 is
        // offered its CPUs back.
        child.finalize().unwrap();
        let err = admin.post_finalize(20, DromFlags::default()).unwrap_err();
        assert_eq!(err, DromError::NoSuchProcess { pid: 20 });
        // pid 10 got a pending expansion when the child finalized itself.
        assert_eq!(sim.poll_drom().unwrap().unwrap().count(), 16);
    }

    #[test]
    fn post_finalize_cleans_entry_when_child_did_not() {
        let shmem = node();
        let _sim =
            DromProcess::init(10, CpuSet::from_range(0..8).unwrap(), Arc::clone(&shmem)).unwrap();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        admin
            .pre_init(
                30,
                &CpuSet::from_range(8..16).unwrap(),
                DromFlags::default(),
            )
            .unwrap();
        // The child never started; the scheduler still cleans the entry.
        assert!(admin.get_pid_list().unwrap().contains(&30));
        admin.post_finalize(30, DromFlags::default()).unwrap();
        assert!(!admin.get_pid_list().unwrap().contains(&30));
    }

    #[test]
    fn free_cpus_and_stats() {
        let shmem = node();
        let _app =
            DromProcess::init(1, CpuSet::from_range(0..8).unwrap(), Arc::clone(&shmem)).unwrap();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        assert_eq!(
            admin.free_cpus().unwrap(),
            CpuSet::from_range(8..16).unwrap()
        );
        assert_eq!(admin.stats().unwrap().registers, 1);
    }

    #[test]
    fn unknown_pid_errors() {
        let shmem = node();
        let admin = DromAdmin::attach(shmem);
        assert_eq!(
            admin.get_process_mask(99, DromFlags::default()),
            Err(DromError::NoSuchProcess { pid: 99 })
        );
        assert_eq!(
            admin.post_finalize(99, DromFlags::default()),
            Err(DromError::NoSuchProcess { pid: 99 })
        );
    }
}
