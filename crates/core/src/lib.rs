//! DROM — Dynamic Resource Ownership Management.
//!
//! This crate is the paper's primary contribution: an API that lets a resource
//! manager (or any *administrator process*) change, at run time, the CPUs owned
//! by processes attached to the DLB runtime, together with the application-side
//! runtime those processes use to observe the changes.
//!
//! The public surface mirrors the C interface of Section 3.2 of the paper:
//!
//! | Paper API | This crate |
//! |---|---|
//! | `DROM_Attach` / `DROM_Detach` | [`DromAdmin::attach`] / [`DromAdmin::detach`] |
//! | `DROM_GetPidList` | [`DromAdmin::get_pid_list`] |
//! | `DROM_GetProcessMask` / `DROM_SetProcessMask` | [`DromAdmin::get_process_mask`] / [`DromAdmin::set_process_mask`] |
//! | `DROM_PreInit` / `DROM_PostFinalize` | [`DromAdmin::pre_init`] / [`DromAdmin::post_finalize`] |
//! | `DLB_Init` / `DLB_Finalize` | [`DromProcess::init`] / [`DromProcess::finalize`] |
//! | `DLB_PollDROM` | [`DromProcess::poll_drom`] |
//! | asynchronous mode (helper thread + callbacks) | [`AsyncListener`] |
//! | LeWI (Lend When Idle) | [`Lewi`] |
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use drom_core::{DromAdmin, DromFlags, DromProcess};
//! use drom_shmem::NodeShmem;
//! use drom_cpuset::CpuSet;
//!
//! // One shared-memory segment per node (here: a 16-CPU node).
//! let shmem = Arc::new(NodeShmem::new("node1", 16));
//!
//! // An application initialises DLB with its starting mask.
//! let app = DromProcess::init(100, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
//!
//! // The resource manager attaches and shrinks the application to 8 CPUs.
//! let admin = DromAdmin::attach(Arc::clone(&shmem));
//! admin.set_process_mask(100, &CpuSet::from_range(0..8).unwrap(), DromFlags::default()).unwrap();
//!
//! // At its next malleability point the application picks up the new mask.
//! let update = app.poll_drom().unwrap().expect("an update is pending");
//! assert_eq!(update.count(), 8);
//! ```

#![forbid(unsafe_code)]

pub mod api;
pub mod callbacks;
pub mod error;
pub mod flags;
pub mod lewi;
pub mod policy;
pub mod process;

pub use api::{DromAdmin, DromEnviron, SetMaskReport};
pub use callbacks::AsyncListener;
pub use error::{DromError, DromResult};
pub use flags::DromFlags;
pub use lewi::{Lewi, LewiStats};
pub use policy::{choose_victims, ShrinkRequest, VictimPolicy};
pub use process::{DromProcess, ProcessStats};

/// Re-export of the pid type used across the DROM stack.
pub use drom_shmem::Pid;
