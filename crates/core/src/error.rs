//! DROM error codes.
//!
//! The original C interface returns integer DLB error codes (`DLB_SUCCESS`,
//! `DLB_ERR_NOPROC`, `DLB_ERR_PDIRTY`, `DLB_ERR_PERM`, `DLB_ERR_TIMEOUT`, …).
//! The Rust API returns `Result<T, DromError>`; [`DromError::code`] exposes the
//! numeric code for callers that mirror the C convention (e.g. trace tooling).

use std::fmt;

use drom_shmem::{Pid, ShmemError};

/// Convenience alias used across the crate.
pub type DromResult<T> = Result<T, DromError>;

/// Errors returned by the DROM API and the DLB application runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DromError {
    /// The target pid is not registered in the node (`DLB_ERR_NOPROC`).
    NoSuchProcess {
        /// The pid that was looked up.
        pid: Pid,
    },
    /// The process is already registered (`DLB_ERR_INIT`).
    AlreadyInitialized {
        /// The pid registered twice.
        pid: Pid,
    },
    /// The target still has an unconsumed pending mask (`DLB_ERR_PDIRTY`).
    PendingDirty {
        /// The pid with the unconsumed mask.
        pid: Pid,
    },
    /// The requested CPUs belong to another process and stealing was not
    /// requested (`DLB_ERR_PERM`).
    Permission {
        /// One offending CPU.
        cpu: usize,
        /// The process owning it.
        owner: Pid,
    },
    /// The mask refers to CPUs outside the node (`DLB_ERR_NOMEM` in DLB terms:
    /// the request does not fit the shared-memory node description).
    OutOfNode {
        /// The offending CPU.
        cpu: usize,
        /// Number of CPUs in the node.
        node_cpus: usize,
    },
    /// A synchronous operation timed out (`DLB_ERR_TIMEOUT`).
    Timeout {
        /// The unresponsive pid.
        pid: Pid,
    },
    /// The operation would leave a process with an empty mask, which DROM
    /// refuses (`DLB_ERR_PERM`).
    WouldStarve {
        /// The process that would end up with no CPUs.
        pid: Pid,
    },
    /// The node's process table is full (`DLB_ERR_NOMEM`): no slot is left
    /// for another registration until some process finalizes.
    NodeFull {
        /// The pid that could not be registered.
        pid: Pid,
        /// Capacity of the node's process table.
        capacity: usize,
    },
    /// The caller is not attached / not initialised (`DLB_ERR_NOINIT`).
    NotInitialized,
    /// The handle was already finalized and cannot be used again
    /// (`DLB_ERR_DISBLD`).
    Finalized,
}

impl DromError {
    /// The DLB-style numeric code of this error (negative, like the C API).
    pub fn code(&self) -> i32 {
        match self {
            DromError::NoSuchProcess { .. } => -10,
            DromError::AlreadyInitialized { .. } => -11,
            DromError::PendingDirty { .. } => -12,
            DromError::Permission { .. } => -13,
            DromError::OutOfNode { .. } => -14,
            DromError::Timeout { .. } => -15,
            DromError::WouldStarve { .. } => -16,
            DromError::NotInitialized => -17,
            DromError::Finalized => -18,
            DromError::NodeFull { .. } => -19,
        }
    }

    /// The symbolic DLB-style name of this error.
    pub fn name(&self) -> &'static str {
        match self {
            DromError::NoSuchProcess { .. } => "DLB_ERR_NOPROC",
            DromError::AlreadyInitialized { .. } => "DLB_ERR_INIT",
            DromError::PendingDirty { .. } => "DLB_ERR_PDIRTY",
            DromError::Permission { .. } => "DLB_ERR_PERM",
            DromError::OutOfNode { .. } => "DLB_ERR_NOMEM",
            DromError::Timeout { .. } => "DLB_ERR_TIMEOUT",
            DromError::WouldStarve { .. } => "DLB_ERR_PERM",
            DromError::NotInitialized => "DLB_ERR_NOINIT",
            DromError::Finalized => "DLB_ERR_DISBLD",
            DromError::NodeFull { .. } => "DLB_ERR_NOMEM",
        }
    }
}

impl fmt::Display for DromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DromError::NoSuchProcess { pid } => write!(f, "{}: pid {pid} not found", self.name()),
            DromError::AlreadyInitialized { pid } => {
                write!(f, "{}: pid {pid} already initialized", self.name())
            }
            DromError::PendingDirty { pid } => {
                write!(
                    f,
                    "{}: pid {pid} has an unconsumed pending mask",
                    self.name()
                )
            }
            DromError::Permission { cpu, owner } => {
                write!(f, "{}: cpu {cpu} owned by pid {owner}", self.name())
            }
            DromError::OutOfNode { cpu, node_cpus } => write!(
                f,
                "{}: cpu {cpu} outside node of {node_cpus} cpus",
                self.name()
            ),
            DromError::Timeout { pid } => {
                write!(
                    f,
                    "{}: pid {pid} did not reach a malleability point",
                    self.name()
                )
            }
            DromError::WouldStarve { pid } => {
                write!(
                    f,
                    "{}: operation would leave pid {pid} with no CPUs",
                    self.name()
                )
            }
            DromError::NotInitialized => write!(f, "{}: not attached/initialized", self.name()),
            DromError::Finalized => write!(f, "{}: handle already finalized", self.name()),
            DromError::NodeFull { pid, capacity } => write!(
                f,
                "{}: no free slot for pid {pid} (table capacity {capacity})",
                self.name()
            ),
        }
    }
}

impl std::error::Error for DromError {}

impl From<ShmemError> for DromError {
    fn from(err: ShmemError) -> Self {
        match err {
            ShmemError::ProcessNotFound { pid } => DromError::NoSuchProcess { pid },
            ShmemError::AlreadyRegistered { pid } => DromError::AlreadyInitialized { pid },
            ShmemError::PendingMaskNotConsumed { pid } => DromError::PendingDirty { pid },
            ShmemError::CpuConflict { cpu, owner } => DromError::Permission { cpu, owner },
            ShmemError::CpuOutOfNode { cpu, node_cpus } => DromError::OutOfNode { cpu, node_cpus },
            ShmemError::Timeout { pid } => DromError::Timeout { pid },
            ShmemError::EmptyMask { pid } => DromError::WouldStarve { pid },
            ShmemError::NodeFull { pid, capacity } => DromError::NodeFull { pid, capacity },
            ShmemError::NotAttached => DromError::NotInitialized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_negative_and_distinct() {
        let errors = [
            DromError::NoSuchProcess { pid: 1 },
            DromError::AlreadyInitialized { pid: 1 },
            DromError::PendingDirty { pid: 1 },
            DromError::Permission { cpu: 0, owner: 1 },
            DromError::OutOfNode {
                cpu: 0,
                node_cpus: 1,
            },
            DromError::Timeout { pid: 1 },
            DromError::WouldStarve { pid: 1 },
            DromError::NotInitialized,
            DromError::Finalized,
            DromError::NodeFull {
                pid: 1,
                capacity: 4,
            },
        ];
        let mut codes: Vec<i32> = errors.iter().map(|e| e.code()).collect();
        assert!(codes.iter().all(|&c| c < 0));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len());
    }

    #[test]
    fn conversion_from_shmem_errors() {
        assert_eq!(
            DromError::from(ShmemError::ProcessNotFound { pid: 3 }),
            DromError::NoSuchProcess { pid: 3 }
        );
        assert_eq!(
            DromError::from(ShmemError::CpuConflict { cpu: 2, owner: 9 }),
            DromError::Permission { cpu: 2, owner: 9 }
        );
        assert_eq!(
            DromError::from(ShmemError::NotAttached),
            DromError::NotInitialized
        );
        assert_eq!(
            DromError::from(ShmemError::EmptyMask { pid: 4 }),
            DromError::WouldStarve { pid: 4 }
        );
    }

    #[test]
    fn display_includes_symbolic_name() {
        let err = DromError::PendingDirty { pid: 7 };
        assert!(err.to_string().contains("DLB_ERR_PDIRTY"));
        assert!(err.to_string().contains('7'));
    }
}
