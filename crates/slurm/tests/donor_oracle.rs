//! Property battery for curve-driven donor selection (the model-aware
//! malleable policy).
//!
//! For arbitrary slot sets carrying arbitrary monotone speedup curves on one
//! node, the donors the malleable policies shrink must match an exhaustive
//! oracle that re-derives the greedy choice straight from the raw rate
//! tables, with the documented deterministic tie-breaks:
//!
//! 1. **cheapest first** — minimise the relative marginal cost
//!    `(rate(w) − rate(w−1)) · request · FP / full_rate` (a linear CPU is
//!    exactly `FP`);
//! 2. **widest spare** on equal cost (the pre-curve PR 2 rule, which is why
//!    all-linear slot sets reproduce the old policy bit for bit);
//! 3. **lowest slot index** on a full tie (slot order is running-list
//!    order, so the choice is independent of how candidates are stored).
//!
//! Each donation takes the victim's whole equal-marginal run (capped by the
//! remaining need), and the admission stands only if the newcomer's relative
//! rate gain covers the donors' aggregate loss. The oracle predicts the
//! policies' *entire* action list from those rules, and the indexed policy
//! must agree with the scan reference on every sample.
//!
//! The generated slot sets run at full width with the queued job strictly
//! bigger than the free pool, so every emitted action is attributable to the
//! carve-out under test (no expansion sweeps, no backfill reservations).

use proptest::prelude::*;

use drom_slurm::policy::{
    ClusterView, JobAllocation, MalleablePolicy, MalleableScanPolicy, QueuedJob, RunningJob,
    SchedulerAction, SchedulerPolicy, SpeedupCurve,
};

const NODE_CPUS: usize = 64;
const FP: u64 = SpeedupCurve::FP;

/// Clamped rate-table read: beyond the request the curve is flat.
fn rate(rates: &[u64], w: usize) -> u64 {
    rates[w.min(rates.len() - 1)]
}

/// Rate carried by the CPU that took the job from `w − 1` to `w`.
fn marginal(rates: &[u64], w: usize) -> u64 {
    if w == 0 {
        0
    } else {
        rate(rates, w) - rate(rates, w - 1)
    }
}

/// Relative marginal cost of width `w`'s last CPU, in fixed-point CPUs of
/// linear throughput — `FP` exactly when the job has no curve.
fn cost(rates: Option<&Vec<u64>>, request: usize, w: usize) -> u64 {
    match rates {
        None => FP,
        Some(r) => {
            let full = *r.last().unwrap();
            ((marginal(r, w) as u128 * request as u128 * FP as u128) / full as u128) as u64
        }
    }
}

/// Length of the equal-marginal run below `w`, capped at `limit` — what one
/// donation reclaims in one piece. A curve-less job donates its whole spare.
fn run_len(rates: Option<&Vec<u64>>, w: usize, limit: usize) -> usize {
    let limit = limit.min(w);
    match rates {
        None => limit,
        Some(r) => {
            if limit == 0 {
                return 0;
            }
            let top = marginal(r, w);
            let mut g = 1;
            while g < limit && marginal(r, w - g) == top {
                g += 1;
            }
            g
        }
    }
}

/// The exhaustive-scan oracle: greedy cheapest-first donations plus the
/// admission economics, predicting the exact action list (shrinks in slot
/// order, then the start) or `[]` when the admission is impossible or
/// uneconomic.
fn oracle(
    requests: &[usize],
    floors: &[usize],
    curves: &[Option<Vec<u64>>],
    free: usize,
    need: usize,
) -> Vec<SchedulerAction> {
    let n = requests.len();
    let mut widths = requests.to_vec();
    let avail: usize = free + (0..n).map(|i| widths[i] - floors[i]).sum::<usize>();
    if avail < need {
        return Vec::new();
    }
    let mut free_now = free;
    let mut loss: u128 = 0;
    while free_now < need {
        let mut victim: Option<usize> = None;
        for i in 0..n {
            let spare_i = widths[i] - floors[i];
            if spare_i == 0 {
                continue;
            }
            let better = match victim {
                None => true,
                Some(v) => {
                    let (cv, sv) = (
                        cost(curves[v].as_ref(), requests[v], widths[v]),
                        widths[v] - floors[v],
                    );
                    let ci = cost(curves[i].as_ref(), requests[i], widths[i]);
                    // Tie-break order: cheaper cost, then wider spare, then
                    // lower index (strict — the first minimum wins, so the
                    // upward scan never replaces an equal victim).
                    ci < cv || (ci == cv && spare_i > sv)
                }
            };
            if better {
                victim = Some(i);
            }
        }
        let v = victim.expect("avail covered the need");
        let spare_v = widths[v] - floors[v];
        let give = (need - free_now).min(run_len(curves[v].as_ref(), widths[v], spare_v));
        loss += give as u128 * cost(curves[v].as_ref(), requests[v], widths[v]) as u128;
        widths[v] -= give;
        free_now += give;
    }
    // The newcomer is rigid and curve-less: it brings `need` linear CPUs.
    if (need as u128 * FP as u128) < loss {
        return Vec::new();
    }
    let mut actions: Vec<SchedulerAction> = (0..n)
        .filter(|&i| widths[i] < requests[i])
        .map(|i| SchedulerAction::Resize {
            job_id: i as u64 + 1,
            cpus_per_node: widths[i],
        })
        .collect();
    actions.push(SchedulerAction::Start {
        job_id: 100,
        node_indices: vec![0],
        cpus_per_node: need,
    });
    actions
}

/// Builds a monotone rate table of the given request width from per-step
/// increments (zeros create flat runs), `kind`-shaped:
/// 0 → no curve (linear fallback), 1 → as sampled, 2 → the top half of the
/// increments zeroed (a guaranteed saturated tail, the STREAM shape).
fn build_curve(kind: usize, request: usize, increments: &[u64]) -> Option<Vec<u64>> {
    if kind == 0 {
        return None;
    }
    let mut rates = vec![0u64];
    for w in 1..=request {
        let inc = if kind == 2 && w > request / 2 {
            0
        } else if w == 1 {
            increments[0].max(1)
        } else {
            increments[w - 1]
        };
        rates.push(rates[w - 1] + inc);
    }
    Some(rates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Both malleable policies reproduce the oracle's full action list on
    /// arbitrary one-node slot sets, and agree with each other.
    #[test]
    fn donor_selection_matches_the_exhaustive_oracle(
        shapes in proptest::collection::vec(
            (2usize..=12, 1usize..=12, proptest::collection::vec(0u64..4, 12), 0usize..3),
            1..=4,
        ),
        extra in 1usize..=16,
    ) {
        let n = shapes.len();
        let mut requests = Vec::with_capacity(n);
        let mut floors = Vec::with_capacity(n);
        let mut curves: Vec<Option<Vec<u64>>> = Vec::with_capacity(n);
        let mut holders = Vec::with_capacity(n);
        for (i, (request, floor_raw, increments, kind)) in shapes.iter().enumerate() {
            let request = *request;
            // The policy's effective shrink floor: the declared minimum, but
            // never below half the request (the DROM depth bound).
            let declared = (*floor_raw).min(request);
            let floor = declared.max(request.div_ceil(2));
            let curve = build_curve(*kind, request, increments);
            let mut job = QueuedJob::new(i as u64 + 1, 1, request).malleable(declared);
            if let Some(rates) = &curve {
                job = job.with_speedup(SpeedupCurve::from_rates(rates.clone()));
            }
            holders.push(RunningJob {
                job,
                alloc: JobAllocation {
                    job_id: i as u64 + 1,
                    node_indices: vec![0],
                    cpus_per_node: request,
                },
                start_us: 0,
                expected_end_us: None,
            });
            requests.push(request);
            floors.push(floor);
            curves.push(curve);
        }
        let free = NODE_CPUS - requests.iter().sum::<usize>();
        // Strictly bigger than the free pool (so admission always requires
        // donors), capped at the node: an uncappable need is simply refused.
        let need = (free + extra).min(NODE_CPUS);
        let queue = vec![QueuedJob::new(100, 1, need)];
        let expected = oracle(&requests, &floors, &curves, free, need);

        let free_vec = [free];
        let view = ClusterView {
            node_cpus: NODE_CPUS,
            free: &free_vec,
            running: &holders,
            index: None,
            order: None,
        };
        let indexed = MalleablePolicy::default().schedule(&view, &queue, 0);
        let scanned = MalleableScanPolicy::default().schedule(&view, &queue, 0);
        prop_assert_eq!(&indexed, &expected, "indexed policy diverged from the oracle");
        prop_assert_eq!(&scanned, &expected, "scan reference diverged from the oracle");
    }
}
