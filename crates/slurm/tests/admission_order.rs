//! Differential battery for the incremental admission order and the
//! dirty-tracked probe memo (PR 8's tentpole machinery).
//!
//! Two properties pin the new fast paths to the old exhaustive ones:
//!
//! 1. **Order equivalence** — over arbitrary interleavings of submissions,
//!    scheduling ticks, completions and requeues, the admission order the
//!    controller maintains incrementally (O(log queue) per event) equals a
//!    from-scratch sort of the live queue by the documented key
//!    `(priority desc, submit time asc, id asc)`. The reference sort is
//!    re-derived *here*, independently of the library's own `queue_order`,
//!    so a tie-break slip in either implementation fails the property
//!    (mutation check: flip any component of the key and this test fails
//!    within a handful of cases).
//!
//! 2. **Probe-skip equivalence** — a dirty-tracked scheduler and an
//!    always-probe twin fed the exact same event stream emit byte-identical
//!    applied-action lists at every tick, for all three policies. Every
//!    skip the memo takes must therefore be decision-free (mutation check:
//!    widening a skip — e.g. ignoring a generation — diverges; the two
//!    in-crate `Unsound*` hazard variants demonstrate exactly that).
//!
//! The generators force ties on purpose: tiny priority/submit ranges, so
//! the id tie-break is exercised constantly, and enough completions and
//! requeues that positions churn through the controller's swap-remove path.

use proptest::prelude::*;

use drom_slurm::policy::{QueuedJob, SchedulerPolicy};
use drom_slurm::{BackfillPolicy, FirstFitPolicy, MalleablePolicy, PolicyScheduler};

/// One step of the driver interleaving, decoded from raw proptest fuel.
#[derive(Debug, Clone, Copy)]
enum Op {
    Submit { fuel_a: u64, fuel_b: u64 },
    Tick { advance: u64 },
    Finish { pick: u64 },
    Requeue { pick: u64 },
}

fn decode(kind: u8, a: u64, b: u64) -> Op {
    match kind {
        0 | 1 => Op::Submit {
            fuel_a: a,
            fuel_b: b,
        },
        2 => Op::Tick {
            advance: a % 1_000 + 1,
        },
        3 => Op::Finish { pick: a },
        _ => Op::Requeue { pick: a },
    }
}

/// Builds the submission for a `Submit` op: small key ranges (3 priorities,
/// 4 submit instants) so ties on the id component are the common case, a
/// mix of malleable and rigid shapes, and a declared duration so backfill
/// has reservations to protect.
fn submission(id: u64, fuel_a: u64, fuel_b: u64) -> QueuedJob {
    let mut job = QueuedJob::new(id, (fuel_a % 2) as usize + 1, (fuel_b % 8) as usize + 1)
        .with_priority((fuel_a % 3) as u32)
        .with_submit_us(fuel_b % 4)
        .with_expected_duration_us((fuel_b % 5 + 1) * 500);
    if fuel_a % 2 == 0 {
        job = job.malleable(1);
    }
    job
}

/// The independent reference: ids of the live queue sorted from scratch by
/// the documented admission key.
fn reference_order(queue: &[QueuedJob]) -> Vec<u64> {
    let mut jobs: Vec<&QueuedJob> = queue.iter().collect();
    jobs.sort_by_key(|j| (std::cmp::Reverse(j.priority), j.submit_us, j.id));
    jobs.iter().map(|j| j.id).collect()
}

/// Ids of the live queue as the incrementally maintained order walks them.
fn incremental_order(sched: &PolicyScheduler) -> Vec<u64> {
    sched
        .admission_order()
        .positions()
        .map(|p| sched.queue()[p].id)
        .collect()
}

/// Applies one op to a scheduler; completions and requeues pick among the
/// currently running jobs so the op stream stays valid on any state.
fn apply(sched: &mut PolicyScheduler, op: Op, next_id: &mut u64, now: &mut u64) {
    match op {
        Op::Submit { fuel_a, fuel_b } => {
            sched
                .submit(submission(*next_id, fuel_a, fuel_b))
                .expect("generated submissions always fit the cluster shape");
            *next_id += 1;
        }
        Op::Tick { advance } => {
            *now += advance;
            sched
                .tick(*now)
                .expect("tick never fails on policy actions");
            // Refresh completion estimates the way the simulator driver
            // does, deterministically from the job id so paired schedulers
            // stay identical.
            let running: Vec<u64> = sched.running().iter().map(|r| r.job.id).collect();
            for id in running {
                sched.set_expected_end(id, Some(*now + (id % 7 + 1) * 700));
            }
        }
        Op::Finish { pick } => {
            let running: Vec<u64> = sched.running().iter().map(|r| r.job.id).collect();
            if !running.is_empty() {
                let id = running[pick as usize % running.len()];
                sched.job_finished(id).expect("picked a live job");
            }
        }
        Op::Requeue { pick } => {
            let running: Vec<u64> = sched.running().iter().map(|r| r.job.id).collect();
            if !running.is_empty() {
                let id = running[pick as usize % running.len()];
                sched.requeue(id).expect("picked a live job");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Property 1: the incremental admission order equals the from-scratch
    /// reference sort after **every** event of an arbitrary interleaving.
    #[test]
    fn incremental_order_matches_the_reference_sort(
        ops in proptest::collection::vec((0u8..5, any::<u64>(), any::<u64>()), 1..60),
    ) {
        let mut sched = PolicyScheduler::new(4, 16, Box::new(MalleablePolicy::default()));
        let (mut next_id, mut now) = (1u64, 0u64);
        for (kind, a, b) in ops {
            apply(&mut sched, decode(kind, a, b), &mut next_id, &mut now);
            prop_assert_eq!(
                incremental_order(&sched),
                reference_order(sched.queue()),
                "incremental admission order diverged from the reference sort"
            );
            prop_assert_eq!(sched.admission_order().len(), sched.queue().len());
        }
    }

    /// Property 2: dirty-tracked and always-probe schedulers replay the
    /// same event stream to identical applied actions and identical state,
    /// for all three policies. This is the action-list differential the
    /// trace digests enforce end-to-end, shrunk to minimal counterexamples.
    #[test]
    fn dirty_tracked_passes_match_always_probe(
        ops in proptest::collection::vec((0u8..5, any::<u64>(), any::<u64>()), 1..50),
    ) {
        let pairs: [(Box<dyn SchedulerPolicy>, Box<dyn SchedulerPolicy>); 3] = [
            (Box::new(FirstFitPolicy::default()), Box::new(FirstFitPolicy::always_probe())),
            (Box::new(BackfillPolicy::default()), Box::new(BackfillPolicy::always_probe())),
            (Box::new(MalleablePolicy::default()), Box::new(MalleablePolicy::always_probe())),
        ];
        for (tracked, probed) in pairs {
            let name = tracked.name();
            let mut a = PolicyScheduler::new(4, 16, tracked);
            let mut b = PolicyScheduler::new(4, 16, probed);
            let (mut id_a, mut id_b) = (1u64, 1u64);
            let (mut now_a, mut now_b) = (0u64, 0u64);
            for &(kind, x, y) in &ops {
                let op = decode(kind, x, y);
                if let Op::Tick { advance } = op {
                    now_a += advance;
                    now_b += advance;
                    let acted_a = a.tick(now_a).unwrap();
                    let acted_b = b.tick(now_b).unwrap();
                    prop_assert_eq!(
                        &acted_a, &acted_b,
                        "{}: a dirty-tracked skip changed a decision", name
                    );
                    let running: Vec<u64> = a.running().iter().map(|r| r.job.id).collect();
                    for id in running {
                        a.set_expected_end(id, Some(now_a + (id % 7 + 1) * 700));
                        b.set_expected_end(id, Some(now_b + (id % 7 + 1) * 700));
                    }
                } else {
                    apply(&mut a, op, &mut id_a, &mut now_a);
                    apply(&mut b, op, &mut id_b, &mut now_b);
                }
                prop_assert_eq!(a.free_cpus(), b.free_cpus(), "{}: free drifted", name);
                let qa: Vec<u64> = a.queue().iter().map(|j| j.id).collect();
                let qb: Vec<u64> = b.queue().iter().map(|j| j.id).collect();
                prop_assert_eq!(qa, qb, "{}: queue drifted", name);
            }
        }
    }
}

/// The documented tie-break, pinned exactly: priority descending, then
/// submit instant ascending, then id ascending — submitted in scrambled
/// order, read back in admission order.
#[test]
fn admission_order_tie_breaks_priority_then_submit_then_id() {
    let mut sched = PolicyScheduler::new(1, 16, Box::new(FirstFitPolicy::default()));
    for job in [
        QueuedJob::new(9, 1, 16).with_priority(1).with_submit_us(10),
        QueuedJob::new(2, 1, 16).with_priority(1).with_submit_us(10),
        QueuedJob::new(7, 1, 16).with_priority(2).with_submit_us(99),
        QueuedJob::new(3, 1, 16).with_priority(1).with_submit_us(5),
        QueuedJob::new(5, 1, 16).with_priority(1).with_submit_us(10),
        QueuedJob::new(4, 1, 16), // priority 0: last despite the low id
    ] {
        sched.submit(job).unwrap();
    }
    let order: Vec<u64> = sched
        .admission_order()
        .positions()
        .map(|p| sched.queue()[p].id)
        .collect();
    assert_eq!(
        order,
        vec![7, 3, 2, 5, 9, 4],
        "priority wins, then the earlier submit, then the lower id"
    );
}
