//! Cluster inventory: nodes, their topology and their DROM shared memory.

use std::sync::Arc;

use drom_cpuset::Topology;
use drom_shmem::{NodeShmem, ShmemManager};

use crate::error::SlurmError;

/// Hardware description of one compute node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeHw {
    /// Node name (hostname).
    pub name: String,
    /// CPU topology of the node.
    pub topology: Topology,
}

/// The set of nodes SLURM manages, plus the per-node DROM shared memory.
pub struct Cluster {
    nodes: Vec<NodeHw>,
    shmem: ShmemManager,
}

impl Cluster {
    /// Builds a cluster from explicit node descriptions.
    pub fn new(nodes: Vec<NodeHw>) -> Self {
        let shmem = ShmemManager::new();
        for node in &nodes {
            shmem.get_or_create(&node.name, node.topology.num_cpus());
        }
        Cluster { nodes, shmem }
    }

    /// A MareNostrum III partition of `num_nodes` nodes named
    /// `node0`, `node1`, … (two 8-core sockets each), matching the paper's
    /// two-node evaluation environment.
    pub fn marenostrum3(num_nodes: usize) -> Self {
        Cluster::new(
            (0..num_nodes)
                .map(|i| NodeHw {
                    name: format!("node{i}"),
                    topology: Topology::marenostrum3_node(),
                })
                .collect(),
        )
    }

    /// The nodes of the cluster, in declaration order.
    pub fn nodes(&self) -> &[NodeHw] {
        &self.nodes
    }

    /// Node names in declaration order.
    pub fn node_names(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.name.clone()).collect()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total CPUs across the cluster.
    pub fn total_cpus(&self) -> usize {
        self.nodes.iter().map(|n| n.topology.num_cpus()).sum()
    }

    /// Looks up a node by name.
    pub fn node(&self, name: &str) -> Result<&NodeHw, SlurmError> {
        self.nodes
            .iter()
            .find(|n| n.name == name)
            .ok_or_else(|| SlurmError::UnknownNode { node: name.into() })
    }

    /// The DROM shared-memory segment of a node.
    pub fn shmem(&self, name: &str) -> Result<Arc<NodeShmem>, SlurmError> {
        self.node(name)?;
        Ok(self
            .shmem
            .get(name)
            .expect("segment created for every node at construction"))
    }

    /// The shared-memory manager (one segment per node).
    pub fn shmem_manager(&self) -> &ShmemManager {
        &self.shmem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mn3_cluster_shape() {
        let cluster = Cluster::marenostrum3(2);
        assert_eq!(cluster.num_nodes(), 2);
        assert_eq!(cluster.node_names(), vec!["node0", "node1"]);
        assert_eq!(cluster.total_cpus(), 32);
        assert_eq!(cluster.node("node1").unwrap().topology.num_cpus(), 16);
        assert_eq!(cluster.shmem("node0").unwrap().node_cpus(), 16);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let cluster = Cluster::marenostrum3(1);
        assert!(matches!(
            cluster.node("node9"),
            Err(SlurmError::UnknownNode { .. })
        ));
        assert!(cluster.shmem("node9").is_err());
    }

    #[test]
    fn custom_cluster() {
        let cluster = Cluster::new(vec![NodeHw {
            name: "fat-node".into(),
            topology: Topology::homogeneous(4, 16, 512).unwrap(),
        }]);
        assert_eq!(cluster.total_cpus(), 64);
        assert_eq!(cluster.shmem("fat-node").unwrap().node_cpus(), 64);
    }
}
