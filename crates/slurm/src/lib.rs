//! A SLURM-like node manager with a DROM-enabled `task/affinity` plugin.
//!
//! Section 5 of the paper integrates DROM into SLURM without touching the
//! cluster controller: "Slurmctld … is unchanged, as the purpose is to give a
//! proof of integration of DROM APIs, not to present new scheduling policies.
//! … the implementation is enclosed in the SLURM's task/affinity plugin, in
//! charge of distributing the resources assigned by slurmctld to the job's
//! tasks." This crate reproduces exactly that division of labour:
//!
//! * [`SlurmCtld`] — a minimal controller: a job queue, first-fit node
//!   selection, and the Serial / DROM co-allocation admission rule.
//! * [`Slurmd`] — the per-node daemon. Its `launch_request` computes the CPU
//!   masks for the starting job's tasks and, when another job already runs on
//!   the node, new (shrunk) masks for the running tasks (equipartition,
//!   socket-aware).
//! * [`SlurmStepd`] — the step daemon: `pre_launch` reserves the computed mask
//!   through `DROM_PreInit` (shrinking the victims), `post_term` cleans up with
//!   `DROM_PostFinalize`.
//! * [`Srun`] — the launcher tying the two together for a whole job across
//!   nodes, plus `release_resources` redistributing CPUs when a job ends.
//! * [`Cluster`] — node inventory (topology + per-node DROM shared memory).
//! * [`policy`] — the step beyond the paper: a pluggable [`SchedulerPolicy`]
//!   trait with first-fit, conservative-backfill and malleable
//!   (shrink-to-admit) implementations, driven by [`PolicyScheduler`] and
//!   benchmarked at cluster scale by `drom-sim`'s trace engine. See
//!   `docs/scheduling.md` for the policy semantics.
//!
//! # Example: co-allocating two jobs on one node
//!
//! ```
//! use std::sync::Arc;
//! use drom_slurm::{Cluster, JobSpec, Srun};
//! use drom_core::DromProcess;
//!
//! let cluster = Arc::new(Cluster::marenostrum3(1));
//! let srun = Srun::new(Arc::clone(&cluster), true);
//!
//! // Job 1: one task using the whole 16-CPU node.
//! let job1 = JobSpec::new(1, "simulation").with_tasks(1);
//! let launched1 = srun.launch(&job1, &["node0".into()]).unwrap();
//! let proc1 = DromProcess::init_from_environ(
//!     &launched1.tasks[0].environ,
//!     cluster.shmem("node0").unwrap(),
//! ).unwrap();
//! assert_eq!(proc1.num_cpus(), 16);
//!
//! // Job 2 arrives: the plugin shrinks job 1 and gives half the node to job 2.
//! let job2 = JobSpec::new(2, "analytics").with_tasks(2);
//! let launched2 = srun.launch(&job2, &["node0".into()]).unwrap();
//! assert_eq!(launched2.tasks.len(), 2);
//! // Job 1 observes the shrink at its next malleability point.
//! assert_eq!(proc1.poll_drom().unwrap().unwrap().count(), 8);
//! ```
//!
//! # Example: a custom scheduling policy
//!
//! Policies are pure decision procedures over a [`ClusterView`]; the
//! [`PolicyScheduler`] validates and applies whatever they return. A complete
//! policy fits in a few lines — here, one that only ever starts single-node
//! jobs, at full width, on the emptiest node:
//!
//! ```
//! use drom_slurm::policy::{
//!     ClusterView, QueuedJob, SchedulerAction, SchedulerPolicy,
//! };
//! use drom_slurm::PolicyScheduler;
//!
//! struct SmallJobsOnly;
//!
//! impl SchedulerPolicy for SmallJobsOnly {
//!     fn name(&self) -> &'static str {
//!         "small-jobs-only"
//!     }
//!     fn schedule(
//!         &mut self,
//!         view: &ClusterView<'_>,
//!         queue: &[QueuedJob],
//!         _now_us: u64,
//!     ) -> Vec<SchedulerAction> {
//!         let mut free = view.free.to_vec();
//!         let mut actions = Vec::new();
//!         for job in queue.iter().filter(|j| j.nodes == 1) {
//!             // Emptiest node first; ties break on the lower index.
//!             let Some((node, _)) = free
//!                 .iter()
//!                 .enumerate()
//!                 .max_by_key(|&(i, &f)| (f, std::cmp::Reverse(i)))
//!             else {
//!                 break;
//!             };
//!             if free[node] < job.cpus_per_node {
//!                 continue;
//!             }
//!             free[node] -= job.cpus_per_node;
//!             actions.push(SchedulerAction::Start {
//!                 job_id: job.id,
//!                 node_indices: vec![node],
//!                 cpus_per_node: job.cpus_per_node,
//!             });
//!         }
//!         actions
//!     }
//! }
//!
//! let mut sched = PolicyScheduler::new(4, 16, Box::new(SmallJobsOnly));
//! sched.submit(QueuedJob::new(1, 1, 8)).unwrap();
//! sched.submit(QueuedJob::new(2, 2, 8)).unwrap(); // two nodes: never picked
//! let applied = sched.tick(0).unwrap();
//! assert_eq!(applied.len(), 1);
//! assert_eq!(sched.queue_len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod affinity;
pub mod cluster;
pub mod controller;
pub mod error;
pub mod job;
pub mod launcher;
pub mod policy;
pub mod slurmd;
pub mod stepd;

pub use affinity::{AffinityPlugin, NodeLaunchPlan};
pub use cluster::{Cluster, NodeHw};
pub use controller::{PolicyScheduler, SchedulerStats, SchedulingMode, SlurmCtld};
pub use error::SlurmError;
pub use job::{JobSpec, JobState};
pub use launcher::{LaunchedJob, LaunchedTask, Srun};
pub use policy::{
    AdmissionOrder, BackfillPolicy, ClusterView, FirstFitPolicy, JobAllocation, MalleablePolicy,
    MalleableScanPolicy, QueuedJob, RunningJob, SchedIndex, SchedulerAction, SchedulerPolicy,
    SpeedupCurve,
};
pub use slurmd::Slurmd;
pub use stepd::SlurmStepd;
