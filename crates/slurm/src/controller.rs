//! Cluster controllers: the paper's minimal `slurmctld` and the
//! policy-driven [`PolicyScheduler`].
//!
//! The paper leaves slurmctld untouched ("the purpose is to give a proof of
//! integration of DROM APIs, not to present new scheduling policies"), so
//! [`SlurmCtld`] is deliberately simple: first-come-first-served over a
//! priority queue, first-fit node selection. The only difference between the
//! two evaluation scenarios is the admission rule:
//!
//! * **Serial** — a job only starts when it can have its nodes exclusively;
//! * **DROM co-allocation** — a node may be shared by up to a configurable
//!   number of jobs (two in the paper's experiments), relying on the
//!   task/affinity plugin to partition the CPUs.
//!
//! [`PolicyScheduler`] is the step beyond the paper: a CPU-granular
//! controller that delegates every decision to a pluggable
//! [`SchedulerPolicy`] and validates the returned actions before applying
//! them, so no policy can oversubscribe a node or resize a job outside its
//! malleable range.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use drom_metrics::TimeUs;

use crate::error::SlurmError;
use crate::job::JobSpec;
use crate::policy::{
    AdmissionOrder, ClusterView, JobAllocation, QueuedJob, RunningJob, SchedIndex, SchedulerAction,
    SchedulerPolicy,
};

/// Admission rule used by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingMode {
    /// Nodes are exclusive: a job waits until enough idle nodes exist.
    Serial,
    /// Nodes may be shared by up to `max_jobs_per_node` jobs (DROM).
    DromShared {
        /// Maximum number of jobs co-allocated on one node.
        max_jobs_per_node: usize,
    },
}

impl SchedulingMode {
    /// The paper's DROM configuration: at most two jobs per node.
    pub fn drom_default() -> Self {
        SchedulingMode::DromShared {
            max_jobs_per_node: 2,
        }
    }
}

/// The cluster controller: tracks which jobs run where and decides when a
/// pending job can start.
#[derive(Debug, Clone)]
pub struct SlurmCtld {
    node_names: Vec<String>,
    mode: SchedulingMode,
    /// job id → nodes it occupies.
    running: HashMap<u64, Vec<String>>,
}

impl SlurmCtld {
    /// Creates a controller over the given nodes with the given admission rule.
    pub fn new(node_names: Vec<String>, mode: SchedulingMode) -> Self {
        SlurmCtld {
            node_names,
            mode,
            running: HashMap::new(),
        }
    }

    /// The admission rule in force.
    pub fn mode(&self) -> SchedulingMode {
        self.mode
    }

    /// Number of jobs currently occupying `node`.
    pub fn jobs_on(&self, node: &str) -> usize {
        self.running
            .values()
            .filter(|nodes| nodes.iter().any(|n| n == node))
            .count()
    }

    /// Job ids currently running anywhere.
    pub fn running_jobs(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.running.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Nodes a running job occupies (empty if unknown).
    pub fn nodes_of(&self, job_id: u64) -> Vec<String> {
        self.running.get(&job_id).cloned().unwrap_or_default()
    }

    fn node_is_eligible(&self, node: &str) -> bool {
        match self.mode {
            SchedulingMode::Serial => self.jobs_on(node) == 0,
            SchedulingMode::DromShared { max_jobs_per_node } => {
                self.jobs_on(node) < max_jobs_per_node
            }
        }
    }

    /// Decides whether `job` can start now; returns the nodes it would get.
    ///
    /// Node selection is first-fit over the least-loaded eligible nodes, which
    /// for the two-node evaluation reproduces the paper's placement (a new job
    /// shares both nodes with the running one).
    pub fn can_start(&self, job: &JobSpec) -> Option<Vec<String>> {
        let mut eligible: Vec<&String> = self
            .node_names
            .iter()
            .filter(|n| self.node_is_eligible(n))
            .collect();
        if eligible.len() < job.nodes {
            return None;
        }
        // Least-loaded first, then declaration order (stable for ties).
        eligible.sort_by_key(|n| self.jobs_on(n));
        Some(eligible.into_iter().take(job.nodes).cloned().collect())
    }

    /// Records that a job started on the given nodes.
    pub fn job_started(&mut self, job_id: u64, nodes: Vec<String>) {
        self.running.insert(job_id, nodes);
    }

    /// Records that a job finished, freeing its nodes.
    pub fn job_finished(&mut self, job_id: u64) {
        self.running.remove(&job_id);
    }

    /// Picks the next job to start from `pending` (highest priority first,
    /// then earliest submission, then lowest id) that the admission rule
    /// accepts right now. Returns the job id and its nodes.
    pub fn next_startable(&self, pending: &[JobSpec]) -> Option<(u64, Vec<String>)> {
        let mut ordered: Vec<&JobSpec> = pending.iter().collect();
        ordered.sort_by_key(|j| (std::cmp::Reverse(j.priority), j.submit_time, j.id));
        for job in ordered {
            if let Some(nodes) = self.can_start(job) {
                return Some((job.id, nodes));
            }
        }
        None
    }
}

/// Counters of everything a [`PolicyScheduler`] did, reported next to the
/// workload metrics so a policy's behaviour (how often it shrank, expanded,
/// raced a completion) is visible in the experiment tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Jobs started.
    pub started: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Shrink resizes applied.
    pub shrinks: u64,
    /// Expand resizes applied.
    pub expands: u64,
    /// Resize actions that raced a completion (the job was already gone) and
    /// were dropped. Benign: the policy decided on a snapshot that a
    /// same-instant completion invalidated.
    pub resize_races: u64,
    /// Running jobs put back into the waiting queue via
    /// [`PolicyScheduler::requeue`].
    pub requeues: u64,
}

/// A CPU-granular cluster controller driven by a pluggable scheduling policy.
///
/// The scheduler owns the authoritative cluster state (free CPUs per node,
/// running allocations, the pending queue) and, at every [`tick`], hands a
/// read-only [`ClusterView`] to its [`SchedulerPolicy`] and applies the
/// validated actions. It is the shared substrate of the trace-driven cluster
/// simulator (`drom-sim`) and of the real execution path, where a `Start`
/// maps onto [`Srun::launch`](crate::Srun::launch), a shrink onto
/// [`Slurmd::shrink_job`](crate::Slurmd::shrink_job) and an expand onto
/// [`Slurmd::release_resources`](crate::Slurmd::release_resources).
///
/// The scheduler also owns an incrementally maintained [`SchedIndex`] —
/// per-node free, reclaimable-CPU summary and donor lists — updated at every
/// applied start / resize / completion and handed to the policy through the
/// view, so an index-aware policy (the malleable one) never recomputes those
/// sums from the running set. In debug builds every [`tick`] cross-checks
/// the index against a from-scratch rebuild.
///
/// [`tick`]: PolicyScheduler::tick
pub struct PolicyScheduler {
    node_cpus: usize,
    index: SchedIndex,
    running: Vec<RunningJob>,
    /// Waiting jobs, in arbitrary storage order — `order` below holds the
    /// admission sequence, so removal is a `swap_remove` + one position
    /// fixup instead of an O(queue) shift.
    queue: Vec<QueuedJob>,
    /// The incrementally maintained admission order over `queue` (sort key
    /// → queue position), updated in O(log queue) at submission, admitted
    /// start and requeue, and handed to the policy through the view so a
    /// scheduling pass never re-sorts the queue.
    order: AdmissionOrder,
    policy: Box<dyn SchedulerPolicy>,
    stats: SchedulerStats,
}

impl PolicyScheduler {
    /// Creates a scheduler over `num_nodes` homogeneous nodes of `node_cpus`
    /// CPUs, delegating decisions to `policy`.
    pub fn new(num_nodes: usize, node_cpus: usize, policy: Box<dyn SchedulerPolicy>) -> Self {
        PolicyScheduler {
            node_cpus: node_cpus.max(1),
            index: SchedIndex::new(num_nodes.max(1), node_cpus.max(1)),
            running: Vec::new(),
            queue: Vec::new(),
            order: AdmissionOrder::new(),
            policy,
            stats: SchedulerStats::default(),
        }
    }

    /// The name of the policy in charge.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// CPUs per node.
    pub fn node_cpus(&self) -> usize {
        self.node_cpus
    }

    /// Free CPUs on each node.
    pub fn free_cpus(&self) -> &[usize] {
        self.index.free()
    }

    /// The event-maintained availability index (free / reclaimable CPUs and
    /// donor lists per node) the scheduler hands to its policy.
    pub fn sched_index(&self) -> &SchedIndex {
        &self.index
    }

    /// Total CPUs currently allocated to running jobs.
    pub fn allocated_cpus(&self) -> usize {
        self.running.iter().map(|r| r.alloc.total_cpus()).sum()
    }

    /// The running jobs with their current allocations.
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Jobs waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The waiting jobs, in **storage** order (arbitrary): index into it
    /// with [`admission_order`](Self::admission_order) positions to walk the
    /// admission sequence.
    pub fn queue(&self) -> &[QueuedJob] {
        &self.queue
    }

    /// The maintained admission order over [`queue`](Self::queue).
    pub fn admission_order(&self) -> &AdmissionOrder {
        &self.order
    }

    /// Counters of applied actions.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// The read-only view handed to the policy.
    pub fn view(&self) -> ClusterView<'_> {
        ClusterView {
            node_cpus: self.node_cpus,
            free: self.index.free(),
            running: &self.running,
            index: Some(&self.index),
            order: Some(&self.order),
        }
    }

    /// Queues a job.
    ///
    /// # Errors
    ///
    /// [`SlurmError::Unschedulable`] when no node of the cluster can ever
    /// satisfy the request — accepting such a job would block an FCFS queue
    /// forever, so submission fails instead of livelocking the scheduler.
    pub fn submit(&mut self, job: QueuedJob) -> Result<(), SlurmError> {
        if let Err(reason) = self.view().fits_ever(&job) {
            return Err(SlurmError::Unschedulable {
                job_id: job.id,
                reason,
            });
        }
        self.order.insert(&job, self.queue.len());
        self.queue.push(job);
        Ok(())
    }

    /// Puts a running job back into the waiting queue (e.g. a node failure
    /// or a preemption on the execution path): its allocation is unwound
    /// from the cluster state exactly like a completion, and it re-enters
    /// the admission order under its **original** priority and submission
    /// time — a requeue never changes the job's place in line relative to
    /// jobs it already outranked.
    ///
    /// # Errors
    ///
    /// [`SlurmError::UnknownJob`] if the job is not running.
    pub fn requeue(&mut self, job_id: u64) -> Result<(), SlurmError> {
        let pos = self
            .running
            .iter()
            .position(|r| r.alloc.job_id == job_id)
            .ok_or(SlurmError::UnknownJob { job_id })?;
        let job = self.running.remove(pos);
        self.index
            .on_complete(&job.job, &job.alloc.node_indices, job.alloc.cpus_per_node);
        self.stats.requeues += 1;
        self.order.insert(&job.job, self.queue.len());
        self.queue.push(job.job);
        Ok(())
    }

    /// Refreshes a running job's estimated completion time (the trace engine
    /// calls this whenever a resize changes the job's finish estimate, which
    /// keeps backfill reservations honest).
    pub fn set_expected_end(&mut self, job_id: u64, end_us: Option<TimeUs>) {
        if let Some(job) = self.running.iter_mut().find(|r| r.alloc.job_id == job_id) {
            job.expected_end_us = end_us;
            // Re-key the job in the index's release timeline so the next
            // pass's drain forecast walks the refreshed estimate.
            self.index.on_estimate(
                job.alloc.job_id,
                &job.alloc.node_indices,
                job.alloc.cpus_per_node,
                end_us,
            );
        }
    }

    /// Removes a completed job, freeing its CPUs, and returns its final state.
    ///
    /// # Errors
    ///
    /// [`SlurmError::UnknownJob`] if the job is not running.
    pub fn job_finished(&mut self, job_id: u64) -> Result<RunningJob, SlurmError> {
        let pos = self
            .running
            .iter()
            .position(|r| r.alloc.job_id == job_id)
            .ok_or(SlurmError::UnknownJob { job_id })?;
        let job = self.running.remove(pos);
        self.index
            .on_complete(&job.job, &job.alloc.node_indices, job.alloc.cpus_per_node);
        self.stats.completed += 1;
        Ok(job)
    }

    /// Runs one scheduling pass at virtual time `now_us`: asks the policy for
    /// its actions, validates each against the live state and applies the
    /// valid ones. Returns the actions actually applied, in order.
    ///
    /// A `Resize` naming a job that is no longer running is dropped and
    /// counted in [`SchedulerStats::resize_races`] — the policy decided on a
    /// snapshot, and a completion at the very same instant may have retired
    /// its victim (see `docs/scheduling.md` for how this mirrors the
    /// registry's pending-mask cancellation rules).
    ///
    /// # Errors
    ///
    /// [`SlurmError::InvalidAction`] when an action would overcommit a node,
    /// start an unknown job or resize outside the malleable range. State is
    /// untouched by the offending action.
    pub fn tick(&mut self, now_us: TimeUs) -> Result<Vec<SchedulerAction>, SlurmError> {
        debug_assert_eq!(
            self.index,
            SchedIndex::rebuild_from_capacity(
                self.index.free().len(),
                self.node_cpus,
                &self.running,
            ),
            "event-maintained index diverged from the running set"
        );
        let view = ClusterView {
            node_cpus: self.node_cpus,
            free: self.index.free(),
            running: &self.running,
            index: Some(&self.index),
            order: Some(&self.order),
        };
        let actions = self.policy.schedule(&view, &self.queue, now_us);
        let mut applied = Vec::with_capacity(actions.len());
        for action in actions {
            match action {
                SchedulerAction::Start {
                    job_id,
                    ref node_indices,
                    cpus_per_node,
                } => {
                    self.apply_start(job_id, node_indices, cpus_per_node, now_us)?;
                    applied.push(action);
                }
                SchedulerAction::Resize {
                    job_id,
                    cpus_per_node,
                } => {
                    if self.apply_resize(job_id, cpus_per_node)? {
                        applied.push(action);
                    }
                }
            }
        }
        Ok(applied)
    }

    // PANIC: validated actions index the controller's own free vector.
    fn apply_start(
        &mut self,
        job_id: u64,
        node_indices: &[usize],
        width: usize,
        now_us: TimeUs,
    ) -> Result<(), SlurmError> {
        let invalid = |reason: String| SlurmError::InvalidAction { job_id, reason };
        // The admission order doubles as the queue-position lookup; the
        // mapping is verified (and falls back to a linear scan) so a stale
        // or corrupt order can reject a valid start only by not finding it.
        let pos = self
            .order
            .position_of(job_id)
            .filter(|&p| self.queue.get(p).is_some_and(|j| j.id == job_id))
            .or_else(|| self.queue.iter().position(|j| j.id == job_id))
            .ok_or_else(|| invalid("start of a job that is not queued".into()))?;
        let job = &self.queue[pos];
        if node_indices.len() != job.nodes {
            return Err(invalid(format!(
                "allocated {} nodes, job wants {}",
                node_indices.len(),
                job.nodes
            )));
        }
        let free = self.index.free();
        let mut seen = vec![false; free.len()];
        for &idx in node_indices {
            if idx >= free.len() || seen[idx] {
                return Err(invalid(format!("bad or duplicate node index {idx}")));
            }
            seen[idx] = true;
            if free[idx] < width {
                return Err(invalid(format!(
                    "node {idx} has {} free CPUs, start needs {width}",
                    free[idx]
                )));
            }
        }
        let floor = if job.malleable {
            job.min_cpus_per_node
        } else {
            job.cpus_per_node
        };
        if width < floor.max(1) || width > job.cpus_per_node {
            return Err(invalid(format!(
                "width {width} outside the job's [{floor}, {}] range",
                job.cpus_per_node
            )));
        }
        // All validation passed: remove the admitted job in O(1) — the
        // queue's storage order carries no meaning (the admission order
        // does), so `swap_remove` plus one position fixup for the moved
        // tail job replaces the O(queue) shifting `remove`.
        let job = self.queue.swap_remove(pos);
        self.order.remove(job_id);
        if let Some(moved) = self.queue.get(pos) {
            self.order.set_pos(moved.id, pos);
        }
        // The initial completion estimate scales with the admitted width (a
        // job started at half width needs ~2× its declared duration — more
        // if its speedup curve says shrinking is worse than linear), so
        // backfill/drain reservations stay honest even when the driver never
        // refreshes estimates via set_expected_end. Computed before the
        // index hook: the timeline must key the job at the same estimate
        // the running entry records.
        let expected_end_us = job
            .expected_duration_us
            .map(|d| now_us.saturating_add(job.scaled_duration_us(d, width)));
        self.index
            .on_start(&job, node_indices, width, expected_end_us);
        self.running.push(RunningJob {
            alloc: JobAllocation {
                job_id,
                node_indices: node_indices.to_vec(),
                cpus_per_node: width,
            },
            job,
            start_us: now_us,
            expected_end_us,
        });
        self.stats.started += 1;
        Ok(())
    }

    /// Applies a resize; `Ok(false)` means the action was dropped as a benign
    /// completion race.
    // PANIC: validated actions index the controller's own free vector.
    fn apply_resize(&mut self, job_id: u64, width: usize) -> Result<bool, SlurmError> {
        let invalid = |reason: String| SlurmError::InvalidAction { job_id, reason };
        let Some(pos) = self.running.iter().position(|r| r.alloc.job_id == job_id) else {
            self.stats.resize_races += 1;
            return Ok(false);
        };
        let current = self.running[pos].alloc.cpus_per_node;
        if width == current {
            return Ok(false);
        }
        let job = &self.running[pos].job;
        if !job.malleable {
            return Err(invalid("resize of a rigid job".into()));
        }
        if width < job.min_cpus_per_node.max(1) || width > job.cpus_per_node {
            return Err(invalid(format!(
                "width {width} outside the job's [{}, {}] range",
                job.min_cpus_per_node, job.cpus_per_node
            )));
        }
        if width > current {
            let extra = width - current;
            for &idx in &self.running[pos].alloc.node_indices {
                if self.index.free()[idx] < extra {
                    return Err(invalid(format!(
                        "expand needs {extra} CPUs on node {idx}, only {} free",
                        self.index.free()[idx]
                    )));
                }
            }
            self.stats.expands += 1;
        } else {
            self.stats.shrinks += 1;
        }
        let resized = &self.running[pos];
        self.index
            .on_resize(&resized.job, &resized.alloc.node_indices, current, width);
        self.running[pos].alloc.cpus_per_node = width;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FirstFitPolicy, MalleablePolicy};

    fn two_node_ctld(mode: SchedulingMode) -> SlurmCtld {
        SlurmCtld::new(vec!["node0".into(), "node1".into()], mode)
    }

    #[test]
    fn serial_mode_requires_idle_nodes() {
        let mut ctld = two_node_ctld(SchedulingMode::Serial);
        let job1 = JobSpec::new(1, "sim").with_nodes(2);
        let job2 = JobSpec::new(2, "analytics").with_nodes(2);
        let nodes = ctld.can_start(&job1).unwrap();
        assert_eq!(nodes.len(), 2);
        ctld.job_started(1, nodes);
        // While job 1 runs, job 2 cannot start.
        assert!(ctld.can_start(&job2).is_none());
        ctld.job_finished(1);
        assert!(ctld.can_start(&job2).is_some());
    }

    #[test]
    fn drom_mode_allows_sharing_up_to_limit() {
        let mut ctld = two_node_ctld(SchedulingMode::drom_default());
        let job1 = JobSpec::new(1, "sim").with_nodes(2);
        let job2 = JobSpec::new(2, "analytics").with_nodes(2);
        let job3 = JobSpec::new(3, "third").with_nodes(2);
        ctld.job_started(1, ctld.can_start(&job1).unwrap());
        // Job 2 shares both nodes with job 1.
        let nodes2 = ctld.can_start(&job2).unwrap();
        assert_eq!(nodes2.len(), 2);
        ctld.job_started(2, nodes2);
        assert_eq!(ctld.jobs_on("node0"), 2);
        assert_eq!(ctld.jobs_on("node1"), 2);
        // A third job exceeds the two-jobs-per-node limit.
        assert!(ctld.can_start(&job3).is_none());
        ctld.job_finished(1);
        assert!(ctld.can_start(&job3).is_some());
        assert_eq!(ctld.running_jobs(), vec![2]);
        assert_eq!(ctld.nodes_of(2).len(), 2);
        assert!(ctld.nodes_of(99).is_empty());
    }

    #[test]
    fn single_node_jobs_prefer_least_loaded() {
        let mut ctld = two_node_ctld(SchedulingMode::drom_default());
        ctld.job_started(1, vec!["node0".into()]);
        let job = JobSpec::new(2, "small").with_nodes(1);
        let nodes = ctld.can_start(&job).unwrap();
        assert_eq!(nodes, vec!["node1".to_string()]);
    }

    #[test]
    fn next_startable_respects_priority_and_fifo() {
        let ctld = two_node_ctld(SchedulingMode::Serial);
        let pending = vec![
            JobSpec::new(1, "old").with_submit_time(0),
            JobSpec::new(2, "new").with_submit_time(10),
            JobSpec::new(3, "urgent")
                .with_submit_time(20)
                .with_priority(9),
        ];
        let (id, _) = ctld.next_startable(&pending).unwrap();
        assert_eq!(id, 3, "priority beats submission order");
        let no_prio = vec![
            JobSpec::new(1, "old").with_submit_time(5),
            JobSpec::new(2, "new").with_submit_time(1),
        ];
        let (id, _) = ctld.next_startable(&no_prio).unwrap();
        assert_eq!(id, 2, "earliest submission first");
        assert!(ctld.next_startable(&[]).is_none());
    }

    #[test]
    fn mode_accessor() {
        let ctld = two_node_ctld(SchedulingMode::Serial);
        assert_eq!(ctld.mode(), SchedulingMode::Serial);
        assert_eq!(
            SchedulingMode::drom_default(),
            SchedulingMode::DromShared {
                max_jobs_per_node: 2
            }
        );
    }

    #[test]
    fn policy_scheduler_first_fit_lifecycle() {
        let mut sched = PolicyScheduler::new(2, 16, Box::new(FirstFitPolicy::default()));
        assert_eq!(sched.policy_name(), "first-fit");
        assert_eq!(sched.node_cpus(), 16);
        sched.submit(QueuedJob::new(1, 2, 16)).unwrap();
        sched.submit(QueuedJob::new(2, 1, 8)).unwrap();
        let applied = sched.tick(0).unwrap();
        assert_eq!(applied.len(), 1, "job 2 blocks behind the full-cluster job");
        assert_eq!(sched.allocated_cpus(), 32);
        assert_eq!(sched.queue_len(), 1);
        assert_eq!(sched.free_cpus(), &[0, 0]);

        sched.job_finished(1).unwrap();
        let applied = sched.tick(10).unwrap();
        assert_eq!(applied.len(), 1);
        assert_eq!(sched.allocated_cpus(), 8);
        assert_eq!(sched.running().len(), 1);
        assert_eq!(sched.stats().started, 2);
        assert_eq!(sched.stats().completed, 1);
        assert!(matches!(
            sched.job_finished(99),
            Err(SlurmError::UnknownJob { job_id: 99 })
        ));
    }

    #[test]
    fn policy_scheduler_rejects_impossible_jobs() {
        let mut sched = PolicyScheduler::new(2, 16, Box::new(FirstFitPolicy::default()));
        let err = sched.submit(QueuedJob::new(1, 1, 32)).unwrap_err();
        assert!(matches!(err, SlurmError::Unschedulable { job_id: 1, .. }));
        let err = sched.submit(QueuedJob::new(2, 4, 1)).unwrap_err();
        assert!(matches!(err, SlurmError::Unschedulable { job_id: 2, .. }));
        assert_eq!(
            sched.queue_len(),
            0,
            "impossible jobs never enter the queue"
        );
    }

    #[test]
    fn policy_scheduler_malleable_shrink_and_reexpand() {
        let mut sched = PolicyScheduler::new(2, 16, Box::new(MalleablePolicy::default()));
        sched
            .submit(QueuedJob::new(1, 2, 16).malleable(4).with_submit_us(0))
            .unwrap();
        sched.tick(0).unwrap();
        assert_eq!(sched.allocated_cpus(), 32);

        // A rigid half-node job arrives: job 1 shrinks to admit it.
        sched
            .submit(QueuedJob::new(2, 1, 8).with_submit_us(5))
            .unwrap();
        sched.tick(5).unwrap();
        assert_eq!(sched.stats().shrinks, 1);
        assert_eq!(sched.running().len(), 2);
        let job1 = sched
            .running()
            .iter()
            .find(|r| r.alloc.job_id == 1)
            .unwrap();
        assert_eq!(job1.alloc.cpus_per_node, 8);
        assert!(job1.is_shrunk());

        // Job 2 completes: the next pass re-expands job 1 to full width.
        sched.job_finished(2).unwrap();
        sched.tick(50).unwrap();
        assert_eq!(sched.stats().expands, 1);
        let job1 = sched
            .running()
            .iter()
            .find(|r| r.alloc.job_id == 1)
            .unwrap();
        assert_eq!(job1.alloc.cpus_per_node, 16);
        assert_eq!(sched.free_cpus(), &[0, 0]);
    }

    /// Regression (shrunk-duration rounding): a job started below its
    /// request must get a completion estimate of ⌈duration · request /
    /// width⌉ — under linear speedup it cannot finish earlier. The old
    /// truncating division produced 141 here, one microsecond *before* the
    /// engine's actual completion, letting reservations promise CPUs the
    /// job still holds.
    #[test]
    fn shrunk_start_estimate_is_never_optimistic() {
        let mut sched = PolicyScheduler::new(1, 8, Box::new(MalleablePolicy::default()));
        sched.submit(QueuedJob::new(1, 1, 3)).unwrap();
        sched.tick(0).unwrap();
        // 5 CPUs free: job 2 (7 wide, floor 1, 101 µs) is admitted at 5.
        sched
            .submit(
                QueuedJob::new(2, 1, 7)
                    .malleable(1)
                    .with_expected_duration_us(101),
            )
            .unwrap();
        sched.tick(0).unwrap();
        let job2 = sched
            .running()
            .iter()
            .find(|r| r.alloc.job_id == 2)
            .unwrap();
        assert_eq!(job2.alloc.cpus_per_node, 5);
        assert_eq!(
            job2.expected_end_us,
            Some(142), // ⌈101 · 7 / 5⌉ = ⌈141.4⌉, not 141
            "estimate must round up, matching the engine's exact completion"
        );
    }

    /// A shrunk start whose job carries a speedup curve records the
    /// curve-scaled completion estimate, not the linear one — the controller
    /// and the policy must plan around the same instant.
    #[test]
    fn shrunk_start_estimate_consults_the_speedup_curve() {
        use crate::policy::SpeedupCurve;
        let rates: Vec<u64> = (0..=7u64)
            .map(|w| {
                if w == 7 {
                    SpeedupCurve::FP
                } else {
                    w * SpeedupCurve::FP / 14
                }
            })
            .collect();
        let mut sched = PolicyScheduler::new(1, 8, Box::new(MalleablePolicy::default()));
        sched.submit(QueuedJob::new(1, 1, 3)).unwrap();
        sched.tick(0).unwrap();
        sched
            .submit(
                QueuedJob::new(2, 1, 7)
                    .malleable(1)
                    .with_expected_duration_us(101)
                    .with_speedup(SpeedupCurve::from_rates(rates)),
            )
            .unwrap();
        sched.tick(0).unwrap();
        let job2 = sched
            .running()
            .iter()
            .find(|r| r.alloc.job_id == 2)
            .unwrap();
        assert_eq!(job2.alloc.cpus_per_node, 5);
        assert_eq!(
            job2.expected_end_us,
            Some(283), // ⌈101·FP / (5·FP/14)⌉, not the linear ⌈101·7/5⌉ = 142
            "the controller's estimate must follow the job's curve"
        );
    }

    /// The scheduler's event-maintained index stays equal to a from-scratch
    /// rebuild across a start / shrink / expand / complete lifecycle.
    #[test]
    fn policy_scheduler_keeps_index_consistent() {
        let mut sched = PolicyScheduler::new(2, 16, Box::new(MalleablePolicy::default()));
        sched
            .submit(QueuedJob::new(1, 2, 16).malleable(4).with_submit_us(0))
            .unwrap();
        sched.tick(0).unwrap();
        sched
            .submit(QueuedJob::new(2, 1, 8).with_submit_us(5))
            .unwrap();
        sched.tick(5).unwrap(); // shrinks job 1 to admit job 2
        let expected = SchedIndex::rebuild_from_capacity(2, 16, sched.running());
        assert_eq!(*sched.sched_index(), expected);
        assert_eq!(sched.sched_index().reclaim(), &[0, 0]); // both at their floors
        sched.job_finished(2).unwrap();
        sched.tick(50).unwrap(); // re-expands job 1
        let expected = SchedIndex::rebuild_from_capacity(2, 16, sched.running());
        assert_eq!(*sched.sched_index(), expected);
        assert_eq!(sched.sched_index().free(), &[0, 0]);
        assert_eq!(sched.sched_index().donors(0), &[1]);
        assert_eq!(sched.sched_index().donors(1), &[1]);
        sched.job_finished(1).unwrap();
        assert_eq!(*sched.sched_index(), SchedIndex::new(2, 16));
    }

    #[test]
    fn policy_scheduler_drops_racing_resize() {
        // A hand-written policy that resizes a job that no longer runs.
        struct RacingPolicy;
        impl crate::policy::SchedulerPolicy for RacingPolicy {
            fn name(&self) -> &'static str {
                "racing"
            }
            fn schedule(
                &mut self,
                _view: &ClusterView<'_>,
                _queue: &[QueuedJob],
                _now_us: TimeUs,
            ) -> Vec<SchedulerAction> {
                vec![SchedulerAction::Resize {
                    job_id: 77,
                    cpus_per_node: 4,
                }]
            }
        }
        let mut sched = PolicyScheduler::new(1, 16, Box::new(RacingPolicy));
        let applied = sched.tick(0).unwrap();
        assert!(applied.is_empty());
        assert_eq!(sched.stats().resize_races, 1);
    }

    #[test]
    fn policy_scheduler_rejects_overcommitting_policy() {
        struct GreedyPolicy;
        impl crate::policy::SchedulerPolicy for GreedyPolicy {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn schedule(
                &mut self,
                _view: &ClusterView<'_>,
                queue: &[QueuedJob],
                _now_us: TimeUs,
            ) -> Vec<SchedulerAction> {
                // Start everything on node 0 regardless of capacity.
                queue
                    .iter()
                    .map(|j| SchedulerAction::Start {
                        job_id: j.id,
                        node_indices: vec![0],
                        cpus_per_node: j.cpus_per_node,
                    })
                    .collect()
            }
        }
        let mut sched = PolicyScheduler::new(1, 16, Box::new(GreedyPolicy));
        sched.submit(QueuedJob::new(1, 1, 16)).unwrap();
        sched.submit(QueuedJob::new(2, 1, 16)).unwrap();
        let err = sched.tick(0).unwrap_err();
        assert!(matches!(err, SlurmError::InvalidAction { job_id: 2, .. }));
        // The valid first action was applied; the cluster state stayed sane.
        assert_eq!(sched.allocated_cpus(), 16);
        assert_eq!(sched.free_cpus(), &[0]);
    }
}
