//! A minimal `slurmctld`: job queue, node selection and the admission rule.
//!
//! The paper leaves slurmctld untouched ("the purpose is to give a proof of
//! integration of DROM APIs, not to present new scheduling policies"), so this
//! controller is deliberately simple: first-come-first-served over a priority
//! queue, first-fit node selection. The only difference between the two
//! evaluation scenarios is the admission rule:
//!
//! * **Serial** — a job only starts when it can have its nodes exclusively;
//! * **DROM co-allocation** — a node may be shared by up to a configurable
//!   number of jobs (two in the paper's experiments), relying on the
//!   task/affinity plugin to partition the CPUs.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::job::JobSpec;

/// Admission rule used by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingMode {
    /// Nodes are exclusive: a job waits until enough idle nodes exist.
    Serial,
    /// Nodes may be shared by up to `max_jobs_per_node` jobs (DROM).
    DromShared {
        /// Maximum number of jobs co-allocated on one node.
        max_jobs_per_node: usize,
    },
}

impl SchedulingMode {
    /// The paper's DROM configuration: at most two jobs per node.
    pub fn drom_default() -> Self {
        SchedulingMode::DromShared {
            max_jobs_per_node: 2,
        }
    }
}

/// The cluster controller: tracks which jobs run where and decides when a
/// pending job can start.
#[derive(Debug, Clone)]
pub struct SlurmCtld {
    node_names: Vec<String>,
    mode: SchedulingMode,
    /// job id → nodes it occupies.
    running: HashMap<u64, Vec<String>>,
}

impl SlurmCtld {
    /// Creates a controller over the given nodes with the given admission rule.
    pub fn new(node_names: Vec<String>, mode: SchedulingMode) -> Self {
        SlurmCtld {
            node_names,
            mode,
            running: HashMap::new(),
        }
    }

    /// The admission rule in force.
    pub fn mode(&self) -> SchedulingMode {
        self.mode
    }

    /// Number of jobs currently occupying `node`.
    pub fn jobs_on(&self, node: &str) -> usize {
        self.running
            .values()
            .filter(|nodes| nodes.iter().any(|n| n == node))
            .count()
    }

    /// Job ids currently running anywhere.
    pub fn running_jobs(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.running.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Nodes a running job occupies (empty if unknown).
    pub fn nodes_of(&self, job_id: u64) -> Vec<String> {
        self.running.get(&job_id).cloned().unwrap_or_default()
    }

    fn node_is_eligible(&self, node: &str) -> bool {
        match self.mode {
            SchedulingMode::Serial => self.jobs_on(node) == 0,
            SchedulingMode::DromShared { max_jobs_per_node } => {
                self.jobs_on(node) < max_jobs_per_node
            }
        }
    }

    /// Decides whether `job` can start now; returns the nodes it would get.
    ///
    /// Node selection is first-fit over the least-loaded eligible nodes, which
    /// for the two-node evaluation reproduces the paper's placement (a new job
    /// shares both nodes with the running one).
    pub fn can_start(&self, job: &JobSpec) -> Option<Vec<String>> {
        let mut eligible: Vec<&String> = self
            .node_names
            .iter()
            .filter(|n| self.node_is_eligible(n))
            .collect();
        if eligible.len() < job.nodes {
            return None;
        }
        // Least-loaded first, then declaration order (stable for ties).
        eligible.sort_by_key(|n| self.jobs_on(n));
        Some(
            eligible
                .into_iter()
                .take(job.nodes)
                .cloned()
                .collect(),
        )
    }

    /// Records that a job started on the given nodes.
    pub fn job_started(&mut self, job_id: u64, nodes: Vec<String>) {
        self.running.insert(job_id, nodes);
    }

    /// Records that a job finished, freeing its nodes.
    pub fn job_finished(&mut self, job_id: u64) {
        self.running.remove(&job_id);
    }

    /// Picks the next job to start from `pending` (highest priority first,
    /// then earliest submission, then lowest id) that the admission rule
    /// accepts right now. Returns the job id and its nodes.
    pub fn next_startable(&self, pending: &[JobSpec]) -> Option<(u64, Vec<String>)> {
        let mut ordered: Vec<&JobSpec> = pending.iter().collect();
        ordered.sort_by_key(|j| (std::cmp::Reverse(j.priority), j.submit_time, j.id));
        for job in ordered {
            if let Some(nodes) = self.can_start(job) {
                return Some((job.id, nodes));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_ctld(mode: SchedulingMode) -> SlurmCtld {
        SlurmCtld::new(vec!["node0".into(), "node1".into()], mode)
    }

    #[test]
    fn serial_mode_requires_idle_nodes() {
        let mut ctld = two_node_ctld(SchedulingMode::Serial);
        let job1 = JobSpec::new(1, "sim").with_nodes(2);
        let job2 = JobSpec::new(2, "analytics").with_nodes(2);
        let nodes = ctld.can_start(&job1).unwrap();
        assert_eq!(nodes.len(), 2);
        ctld.job_started(1, nodes);
        // While job 1 runs, job 2 cannot start.
        assert!(ctld.can_start(&job2).is_none());
        ctld.job_finished(1);
        assert!(ctld.can_start(&job2).is_some());
    }

    #[test]
    fn drom_mode_allows_sharing_up_to_limit() {
        let mut ctld = two_node_ctld(SchedulingMode::drom_default());
        let job1 = JobSpec::new(1, "sim").with_nodes(2);
        let job2 = JobSpec::new(2, "analytics").with_nodes(2);
        let job3 = JobSpec::new(3, "third").with_nodes(2);
        ctld.job_started(1, ctld.can_start(&job1).unwrap());
        // Job 2 shares both nodes with job 1.
        let nodes2 = ctld.can_start(&job2).unwrap();
        assert_eq!(nodes2.len(), 2);
        ctld.job_started(2, nodes2);
        assert_eq!(ctld.jobs_on("node0"), 2);
        assert_eq!(ctld.jobs_on("node1"), 2);
        // A third job exceeds the two-jobs-per-node limit.
        assert!(ctld.can_start(&job3).is_none());
        ctld.job_finished(1);
        assert!(ctld.can_start(&job3).is_some());
        assert_eq!(ctld.running_jobs(), vec![2]);
        assert_eq!(ctld.nodes_of(2).len(), 2);
        assert!(ctld.nodes_of(99).is_empty());
    }

    #[test]
    fn single_node_jobs_prefer_least_loaded() {
        let mut ctld = two_node_ctld(SchedulingMode::drom_default());
        ctld.job_started(1, vec!["node0".into()]);
        let job = JobSpec::new(2, "small").with_nodes(1);
        let nodes = ctld.can_start(&job).unwrap();
        assert_eq!(nodes, vec!["node1".to_string()]);
    }

    #[test]
    fn next_startable_respects_priority_and_fifo() {
        let ctld = two_node_ctld(SchedulingMode::Serial);
        let pending = vec![
            JobSpec::new(1, "old").with_submit_time(0),
            JobSpec::new(2, "new").with_submit_time(10),
            JobSpec::new(3, "urgent").with_submit_time(20).with_priority(9),
        ];
        let (id, _) = ctld.next_startable(&pending).unwrap();
        assert_eq!(id, 3, "priority beats submission order");
        let no_prio = vec![
            JobSpec::new(1, "old").with_submit_time(5),
            JobSpec::new(2, "new").with_submit_time(1),
        ];
        let (id, _) = ctld.next_startable(&no_prio).unwrap();
        assert_eq!(id, 2, "earliest submission first");
        assert!(ctld.next_startable(&[]).is_none());
    }

    #[test]
    fn mode_accessor() {
        let ctld = two_node_ctld(SchedulingMode::Serial);
        assert_eq!(ctld.mode(), SchedulingMode::Serial);
        assert_eq!(
            SchedulingMode::drom_default(),
            SchedulingMode::DromShared { max_jobs_per_node: 2 }
        );
    }
}
