//! Errors of the SLURM-like node manager.

use std::fmt;

use drom_core::DromError;

/// Errors returned by the scheduler, the node daemons and the launcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlurmError {
    /// The requested node does not exist in the cluster.
    UnknownNode {
        /// The unknown node name.
        node: String,
    },
    /// The node already runs a job and DROM co-allocation is disabled.
    NodeBusy {
        /// The busy node.
        node: String,
    },
    /// The job asks for more tasks than the node can hold (every task needs at
    /// least one CPU).
    NotEnoughCpus {
        /// The node that cannot satisfy the request.
        node: String,
        /// Tasks requested on that node.
        requested_tasks: usize,
        /// CPUs physically available.
        available_cpus: usize,
    },
    /// The job is unknown to the daemon (e.g. completing a job twice).
    UnknownJob {
        /// The unknown job id.
        job_id: u64,
    },
    /// No node of the cluster can ever satisfy the job's request, even with
    /// every CPU free: admitting it to the queue would livelock the scheduler,
    /// so submission must fail instead.
    Unschedulable {
        /// The job that can never start.
        job_id: u64,
        /// Human-readable explanation of the impossible requirement.
        reason: String,
    },
    /// A scheduling policy emitted an action the cluster state cannot honour
    /// (overcommitted node, resize outside the job's malleable range, …).
    /// The action is rejected before any state changes.
    InvalidAction {
        /// The job the action referred to.
        job_id: u64,
        /// What was wrong with the action.
        reason: String,
    },
    /// An underlying DROM call failed.
    Drom(DromError),
}

impl fmt::Display for SlurmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlurmError::UnknownNode { node } => write!(f, "unknown node {node}"),
            SlurmError::NodeBusy { node } => {
                write!(f, "node {node} is busy and co-allocation is disabled")
            }
            SlurmError::NotEnoughCpus {
                node,
                requested_tasks,
                available_cpus,
            } => write!(
                f,
                "node {node} cannot host {requested_tasks} tasks with only {available_cpus} cpus"
            ),
            SlurmError::UnknownJob { job_id } => write!(f, "unknown job {job_id}"),
            SlurmError::Unschedulable { job_id, reason } => {
                write!(f, "job {job_id} can never be scheduled: {reason}")
            }
            SlurmError::InvalidAction { job_id, reason } => {
                write!(f, "invalid scheduler action for job {job_id}: {reason}")
            }
            SlurmError::Drom(err) => write!(f, "DROM error: {err}"),
        }
    }
}

impl std::error::Error for SlurmError {}

impl From<DromError> for SlurmError {
    fn from(err: DromError) -> Self {
        SlurmError::Drom(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        assert!(SlurmError::UnknownNode { node: "n7".into() }
            .to_string()
            .contains("n7"));
        assert!(SlurmError::NodeBusy { node: "n1".into() }
            .to_string()
            .contains("busy"));
        assert!(SlurmError::UnknownJob { job_id: 42 }
            .to_string()
            .contains("42"));
        let unsched = SlurmError::Unschedulable {
            job_id: 7,
            reason: "wants 32 CPUs per node, nodes have 16".into(),
        };
        assert!(unsched.to_string().contains("never"));
        assert!(unsched.to_string().contains("32"));
        let err: SlurmError = DromError::NotInitialized.into();
        assert!(matches!(err, SlurmError::Drom(_)));
        assert!(err.to_string().contains("DROM"));
    }
}
