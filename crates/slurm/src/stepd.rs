//! The step daemon: applying the computed masks through the DROM API.
//!
//! In SLURM, `slurmstepd` is "a daemon that controls correct task launch and
//! execution. At launch point, the plugin picks the mask assigned by slurmd and
//! actually sets it." In the DROM integration that means calling
//! `DROM_PreInit` before the task starts (reserving its CPUs and shrinking any
//! victim) and `DROM_PostFinalize` after it terminates.

use std::sync::Arc;

use drom_core::{DromAdmin, DromEnviron, DromFlags, Pid};
use drom_cpuset::CpuSet;
use drom_shmem::NodeShmem;

use crate::error::SlurmError;

/// Per-node step daemon: wraps a DROM administrator attachment.
pub struct SlurmStepd {
    node: String,
    admin: DromAdmin,
}

impl SlurmStepd {
    /// Attaches a step daemon to a node's DROM shared memory.
    pub fn new(node: impl Into<String>, shmem: Arc<NodeShmem>) -> Self {
        SlurmStepd {
            node: node.into(),
            admin: DromAdmin::attach(shmem),
        }
    }

    /// The node this daemon manages.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The underlying DROM administrator (exposed for tests and tooling).
    pub fn admin(&self) -> &DromAdmin {
        &self.admin
    }

    /// `pre_launch` (Figure 2, step 2): reserves `mask` for the task with
    /// process id `pid`, shrinking any running process that currently holds
    /// those CPUs, and returns the environment the task will register with.
    pub fn pre_launch(&self, pid: Pid, mask: &CpuSet) -> Result<DromEnviron, SlurmError> {
        let (environ, _victims) = self.admin.pre_init(
            pid,
            mask,
            DromFlags::default().with_steal().with_return_stolen(),
        )?;
        Ok(environ)
    }

    /// `post_term` (Figure 2, step 4): cleans the task's entry from the DROM
    /// shared memory. A task that already finalized itself is not an error —
    /// the paper notes the scheduler cannot know and should call it anyway.
    pub fn post_term(&self, pid: Pid) -> Result<(), SlurmError> {
        match self
            .admin
            .post_finalize(pid, DromFlags::default().with_return_stolen())
        {
            Ok(_) => Ok(()),
            Err(drom_core::DromError::NoSuchProcess { .. }) => Ok(()),
            Err(err) => Err(err.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drom_core::DromProcess;

    #[test]
    fn pre_launch_reserves_and_shrinks() {
        let shmem = Arc::new(NodeShmem::new("node0", 16));
        let running =
            Arc::new(DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap());
        let stepd = SlurmStepd::new("node0", Arc::clone(&shmem));
        assert_eq!(stepd.node(), "node0");

        let environ = stepd
            .pre_launch(50, &CpuSet::from_range(8..16).unwrap())
            .unwrap();
        assert_eq!(environ.pid, 50);
        assert_eq!(environ.mask.count(), 8);
        // The running process is asked to shrink.
        assert_eq!(running.poll_drom().unwrap().unwrap().count(), 8);

        // The new task registers and later terminates; post_term cleans up.
        let child = DromProcess::init_from_environ(&environ, Arc::clone(&shmem)).unwrap();
        drop(child);
        stepd.post_term(50).unwrap();
        // Calling it again (entry already gone) is still fine.
        stepd.post_term(50).unwrap();
        assert_eq!(stepd.admin().get_pid_list().unwrap(), vec![1]);
    }
}
