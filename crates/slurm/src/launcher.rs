//! `srun`: launching a job's tasks across its allocated nodes.
//!
//! The launcher drives the per-node daemons: for every node of the allocation
//! it asks `slurmd` for the launch plan, lets the step daemon reserve the masks
//! through `DROM_PreInit`, and hands back the environments the application
//! processes register with. When the job completes, it runs `post_term` for
//! every task and `release_resources` on every node.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use drom_core::{DromEnviron, Pid};
use drom_cpuset::CpuSet;

use crate::cluster::Cluster;
use crate::error::SlurmError;
use crate::job::JobSpec;
use crate::slurmd::Slurmd;

/// One launched task: where it runs, which pid it was given and the
/// environment it must register with.
#[derive(Debug, Clone)]
pub struct LaunchedTask {
    /// Node the task runs on.
    pub node: String,
    /// Global task index within the job.
    pub task_index: usize,
    /// The synthetic pid assigned by the launcher.
    pub pid: Pid,
    /// The mask the task was given.
    pub mask: CpuSet,
    /// The registration environment (`DROM_PreInit`'s `next_environ`).
    pub environ: DromEnviron,
}

/// A launched job: the job description plus every task placement.
#[derive(Debug, Clone)]
pub struct LaunchedJob {
    /// The job that was launched.
    pub job: JobSpec,
    /// The nodes of the allocation, in order.
    pub nodes: Vec<String>,
    /// Every task of the job.
    pub tasks: Vec<LaunchedTask>,
}

impl LaunchedJob {
    /// The tasks placed on one node.
    pub fn tasks_on(&self, node: &str) -> Vec<&LaunchedTask> {
        self.tasks.iter().filter(|t| t.node == node).collect()
    }

    /// Total CPUs currently assigned to the job (sum of task masks).
    pub fn total_cpus(&self) -> usize {
        self.tasks.iter().map(|t| t.mask.count()).sum()
    }
}

/// The job launcher: one `Slurmd` per node, a pid counter and the launch /
/// complete entry points.
pub struct Srun {
    cluster: Arc<Cluster>,
    slurmds: Mutex<HashMap<String, Arc<Slurmd>>>,
    drom_enabled: bool,
    next_pid: AtomicU32,
}

impl Srun {
    /// Creates the launcher. `drom_enabled` selects the modified SLURM
    /// (co-allocation through DROM) or the baseline behaviour.
    pub fn new(cluster: Arc<Cluster>, drom_enabled: bool) -> Self {
        Srun {
            cluster,
            slurmds: Mutex::new(HashMap::new()),
            drom_enabled,
            next_pid: AtomicU32::new(1000),
        }
    }

    /// The cluster this launcher manages.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// `true` if DROM co-allocation is enabled.
    pub fn drom_enabled(&self) -> bool {
        self.drom_enabled
    }

    /// The per-node daemon of `node`, creating it on first use.
    pub fn slurmd(&self, node: &str) -> Result<Arc<Slurmd>, SlurmError> {
        let mut slurmds = self.slurmds.lock();
        if let Some(d) = slurmds.get(node) {
            return Ok(Arc::clone(d));
        }
        let hw = self.cluster.node(node)?.clone();
        let shmem = self.cluster.shmem(node)?;
        let daemon = Arc::new(Slurmd::new(hw, shmem, self.drom_enabled));
        slurmds.insert(node.to_string(), Arc::clone(&daemon));
        Ok(daemon)
    }

    /// Launches `job` on the given nodes: computes masks, pre-initialises every
    /// task and returns the placements. Tasks are distributed over the nodes in
    /// blocks (the paper's configuration always splits tasks evenly).
    pub fn launch(&self, job: &JobSpec, nodes: &[String]) -> Result<LaunchedJob, SlurmError> {
        assert!(!nodes.is_empty(), "a job needs at least one node");
        // Block distribution of tasks over the allocation.
        let per_node = {
            let base = job.num_tasks / nodes.len();
            let extra = job.num_tasks % nodes.len();
            (0..nodes.len())
                .map(|i| base + usize::from(i < extra))
                .collect::<Vec<_>>()
        };

        let mut tasks = Vec::with_capacity(job.num_tasks);
        let mut task_index = 0usize;
        for (node, &ntasks) in nodes.iter().zip(per_node.iter()) {
            if ntasks == 0 {
                continue;
            }
            let slurmd = self.slurmd(node)?;
            let plan = slurmd.launch_request(job.id, ntasks)?;
            for mask in plan.task_masks.iter() {
                // SAFETY(ordering): pid allocator; only uniqueness matters.
                let pid = self.next_pid.fetch_add(1, Ordering::Relaxed);
                let environ = slurmd.pre_launch(job.id, pid, mask)?;
                tasks.push(LaunchedTask {
                    node: node.clone(),
                    task_index,
                    pid,
                    mask: mask.clone(),
                    environ,
                });
                task_index += 1;
            }
        }
        Ok(LaunchedJob {
            job: job.clone(),
            nodes: nodes.to_vec(),
            tasks,
        })
    }

    /// Applies a malleable-policy shrink to a launched job: on every node of
    /// the allocation the job's tasks are shrunk so they collectively hold
    /// `cpus_per_node` CPUs (posted through the DROM pending-mask machinery;
    /// tasks adapt at their next malleability point). Returns the total CPUs
    /// freed across the allocation.
    ///
    /// This is how a [`SchedulerPolicy`](crate::policy::SchedulerPolicy)
    /// `Resize` decision reaches the registry on the execution path; the
    /// matching expansion is [`complete`](Self::complete)'s
    /// `release_resources` pass when a co-runner finishes.
    ///
    /// The shrink is validated on *every* node before it is applied on any,
    /// so a task that has not consumed a previous update (`PendingDirty` on
    /// one node) cannot leave the allocation at non-uniform widths — the
    /// whole call fails and the scheduler retries at its next pass.
    pub fn shrink(
        &self,
        launched: &LaunchedJob,
        cpus_per_node: usize,
    ) -> Result<usize, SlurmError> {
        // Phase 1: plan (and thereby validate) the shrink on every node;
        // phase 2: apply exactly the validated plans.
        let mut plans = Vec::with_capacity(launched.nodes.len());
        for node in &launched.nodes {
            let slurmd = self.slurmd(node)?;
            let plan = slurmd.shrink_plan(launched.job.id, cpus_per_node)?;
            plans.push((slurmd, plan));
        }
        let mut freed = 0;
        for (slurmd, (posts, node_freed)) in &plans {
            slurmd.apply_shrink_posts(posts)?;
            freed += node_freed;
        }
        Ok(freed)
    }

    /// Completes a launched job: `post_term` for every task, then
    /// `release_resources` on every node so surviving jobs expand.
    pub fn complete(&self, launched: &LaunchedJob) -> Result<(), SlurmError> {
        for task in &launched.tasks {
            let slurmd = self.slurmd(&task.node)?;
            slurmd.post_term(launched.job.id, task.pid)?;
        }
        for node in &launched.nodes {
            let slurmd = self.slurmd(node)?;
            slurmd.release_resources(launched.job.id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drom_core::DromProcess;

    fn setup(drom: bool) -> (Arc<Cluster>, Srun) {
        let cluster = Arc::new(Cluster::marenostrum3(2));
        let srun = Srun::new(Arc::clone(&cluster), drom);
        (cluster, srun)
    }

    #[test]
    fn launch_two_node_job() {
        let (cluster, srun) = setup(true);
        let job = JobSpec::new(1, "NEST Conf. 1").with_tasks(2).with_nodes(2);
        let launched = srun
            .launch(&job, &["node0".into(), "node1".into()])
            .unwrap();
        assert_eq!(launched.tasks.len(), 2);
        assert_eq!(launched.tasks_on("node0").len(), 1);
        assert_eq!(launched.tasks_on("node1").len(), 1);
        assert_eq!(launched.total_cpus(), 32);
        // The processes can register and adopt their masks.
        for task in &launched.tasks {
            let shmem = cluster.shmem(&task.node).unwrap();
            let proc = DromProcess::init_from_environ(&task.environ, shmem).unwrap();
            assert_eq!(proc.num_cpus(), 16);
            proc.finalize().unwrap();
        }
        srun.complete(&launched).unwrap();
        assert!(srun.slurmd("node0").unwrap().running_jobs().is_empty());
        assert!(srun.drom_enabled());
    }

    #[test]
    fn coallocation_shares_both_nodes() {
        let (cluster, srun) = setup(true);
        let nodes = vec!["node0".to_string(), "node1".to_string()];
        // Long simulation: 4 tasks over 2 nodes, whole machine.
        let sim = JobSpec::new(1, "simulation").with_tasks(4).with_nodes(2);
        let launched_sim = srun.launch(&sim, &nodes).unwrap();
        let sim_procs: Vec<_> = launched_sim
            .tasks
            .iter()
            .map(|t| {
                DromProcess::init_from_environ(&t.environ, cluster.shmem(&t.node).unwrap()).unwrap()
            })
            .collect();
        assert_eq!(launched_sim.total_cpus(), 32);

        // Analytics job: 2 tasks over the same 2 nodes.
        let analytics = JobSpec::new(2, "analytics").with_tasks(2).with_nodes(2);
        let launched_ana = srun.launch(&analytics, &nodes).unwrap();
        assert_eq!(launched_ana.tasks.len(), 2);
        // Fair sharing: the analytics gets half of each node.
        assert_eq!(launched_ana.total_cpus(), 16);

        // The simulation's tasks shrink at their next malleability point.
        let total_after: usize = sim_procs
            .iter()
            .map(|p| {
                p.poll_drom().unwrap();
                p.num_cpus()
            })
            .sum();
        assert_eq!(total_after, 16);

        // Analytics finishes: the simulation gets everything back.
        srun.complete(&launched_ana).unwrap();
        let total_restored: usize = sim_procs
            .iter()
            .map(|p| {
                p.poll_drom().unwrap();
                p.num_cpus()
            })
            .sum();
        assert_eq!(total_restored, 32);
    }

    #[test]
    fn shrink_spans_the_whole_allocation() {
        let (cluster, srun) = setup(true);
        let nodes = vec!["node0".to_string(), "node1".to_string()];
        let job = JobSpec::new(1, "wide").with_tasks(2).with_nodes(2);
        let launched = srun.launch(&job, &nodes).unwrap();
        let procs: Vec<_> = launched
            .tasks
            .iter()
            .map(|t| {
                DromProcess::init_from_environ(&t.environ, cluster.shmem(&t.node).unwrap()).unwrap()
            })
            .collect();
        // Shrink to half width on both nodes: 8 CPUs freed per node.
        assert_eq!(srun.shrink(&launched, 8).unwrap(), 16);
        for proc in &procs {
            assert_eq!(proc.poll_drom().unwrap().unwrap().count(), 8);
        }
        // Shrinking to the current width frees nothing further.
        assert_eq!(srun.shrink(&launched, 8).unwrap(), 0);
        srun.complete(&launched).unwrap();
    }

    #[test]
    fn shrink_with_unconsumed_update_fails_atomically() {
        let (cluster, srun) = setup(true);
        let nodes = vec!["node0".to_string(), "node1".to_string()];
        let job = JobSpec::new(1, "wide").with_tasks(2).with_nodes(2);
        let launched = srun.launch(&job, &nodes).unwrap();
        let procs: Vec<_> = launched
            .tasks
            .iter()
            .map(|t| {
                DromProcess::init_from_environ(&t.environ, cluster.shmem(&t.node).unwrap()).unwrap()
            })
            .collect();
        assert_eq!(srun.shrink(&launched, 8).unwrap(), 16);
        // Only node0's task polls; node1's still carries the pending shrink.
        procs[0].poll_drom().unwrap();
        let err = srun.shrink(&launched, 4).unwrap_err();
        assert!(
            matches!(
                err,
                SlurmError::Drom(drom_core::DromError::PendingDirty { .. })
            ),
            "got {err:?}"
        );
        // Nothing was applied anywhere: node0's task has no new pending and
        // node1's still carries the ORIGINAL 8-CPU shrink, not a 4-CPU one.
        assert!(procs[0].poll_drom().unwrap().is_none());
        assert_eq!(procs[1].poll_drom().unwrap().unwrap().count(), 8);
        // Once every task polled, the retried shrink goes through.
        assert_eq!(srun.shrink(&launched, 4).unwrap(), 8);
        srun.complete(&launched).unwrap();
    }

    #[test]
    fn serial_launcher_refuses_busy_nodes() {
        let (_cluster, srun) = setup(false);
        let nodes = vec!["node0".to_string()];
        let job1 = JobSpec::new(1, "first").with_tasks(1);
        let _launched = srun.launch(&job1, &nodes).unwrap();
        let job2 = JobSpec::new(2, "second").with_tasks(1);
        let err = srun.launch(&job2, &nodes).unwrap_err();
        assert!(matches!(err, SlurmError::NodeBusy { .. }));
    }

    #[test]
    fn unknown_node_fails() {
        let (_cluster, srun) = setup(true);
        let job = JobSpec::new(1, "x");
        assert!(matches!(
            srun.launch(&job, &["nope".into()]),
            Err(SlurmError::UnknownNode { .. })
        ));
    }

    #[test]
    fn more_nodes_than_tasks() {
        let (_cluster, srun) = setup(true);
        let job = JobSpec::new(1, "tiny").with_tasks(1).with_nodes(2);
        let launched = srun
            .launch(&job, &["node0".into(), "node1".into()])
            .unwrap();
        assert_eq!(launched.tasks.len(), 1);
        assert_eq!(launched.tasks[0].node, "node0");
    }
}
