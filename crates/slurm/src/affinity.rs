//! The `task/affinity` plugin: CPU-mask computation for (co-)allocated jobs.
//!
//! This is the only part of SLURM the paper modifies. Given the node topology,
//! the tasks already running on the node and the number of tasks of the
//! starting job, the plugin computes:
//!
//! * one mask per new task, balanced and socket-aware;
//! * the shrunk masks of the running tasks when the node has to be shared
//!   ("our implementation calculates a new mask for both the new and the
//!   running job, where the mask of the running job is a subset of its
//!   original mask").
//!
//! The actual mask changes are applied later by the step daemon through
//! `DROM_PreInit`; the plugin is pure computation, which keeps it reusable by
//! the discrete-event simulator.

use drom_cpuset::distribution::{
    co_allocate, equipartition, redistribute_freed, DistributionPolicy, RunningTask,
};
use drom_cpuset::{CpuSet, Topology};

use crate::error::SlurmError;

/// The plugin's decision for launching some tasks on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeLaunchPlan {
    /// Mask for each new task, in task order.
    pub task_masks: Vec<CpuSet>,
    /// New (shrunk) masks for the tasks that were already running.
    pub running_updates: Vec<RunningTask>,
}

/// The mask-computation half of the DROM-enabled `task/affinity` plugin.
#[derive(Debug, Clone)]
pub struct AffinityPlugin {
    topology: Topology,
    policy: DistributionPolicy,
}

impl AffinityPlugin {
    /// Creates the plugin for a node topology with the paper's socket-aware
    /// policy.
    pub fn new(topology: Topology) -> Self {
        AffinityPlugin {
            topology,
            policy: DistributionPolicy::SocketAware,
        }
    }

    /// Overrides the distribution policy (used by the ablation benchmarks).
    pub fn with_policy(mut self, policy: DistributionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The distribution policy in use.
    pub fn policy(&self) -> DistributionPolicy {
        self.policy
    }

    /// The node topology the plugin works on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Computes masks for `new_tasks` tasks starting on a node where `running`
    /// tasks already execute (empty slice for an idle node).
    ///
    /// # Errors
    ///
    /// Returns [`SlurmError::NotEnoughCpus`] if the node cannot give at least
    /// one CPU to every task (old and new).
    pub fn launch_request(
        &self,
        node: &str,
        running: &[RunningTask],
        new_tasks: usize,
    ) -> Result<NodeLaunchPlan, SlurmError> {
        let node_cpus = self.topology.num_cpus();
        if running.len() + new_tasks > node_cpus {
            return Err(SlurmError::NotEnoughCpus {
                node: node.to_string(),
                requested_tasks: new_tasks,
                available_cpus: node_cpus,
            });
        }
        let node_mask = self.topology.node_mask();
        if running.is_empty() {
            // Idle node: the whole node is equipartitioned among the new tasks.
            return Ok(NodeLaunchPlan {
                task_masks: equipartition(&node_mask, new_tasks, &self.topology, self.policy),
                running_updates: Vec::new(),
            });
        }
        let plan = co_allocate(&node_mask, running, new_tasks, &self.topology, self.policy);
        Ok(NodeLaunchPlan {
            task_masks: plan.new_tasks,
            running_updates: plan.updated_running,
        })
    }

    /// Computes the shrunk per-task masks of one job's tasks on this node:
    /// the job keeps the lowest `target_cpus` of its current CPUs (so the
    /// surviving threads do not migrate), equipartitioned among its tasks
    /// with the plugin's policy. CPUs above the target are released.
    ///
    /// This is the mask arithmetic behind a malleable-policy *shrink*
    /// decision; [`Slurmd::shrink_job`](crate::Slurmd::shrink_job) applies
    /// the result through the DROM pending-mask machinery.
    ///
    /// # Errors
    ///
    /// Returns [`SlurmError::NotEnoughCpus`] if `target_cpus` would leave a
    /// task without a CPU.
    pub fn shrink_request(
        &self,
        node: &str,
        tasks: &[RunningTask],
        target_cpus: usize,
    ) -> Result<Vec<CpuSet>, SlurmError> {
        if target_cpus < tasks.len() {
            return Err(SlurmError::NotEnoughCpus {
                node: node.to_string(),
                requested_tasks: tasks.len(),
                available_cpus: target_cpus,
            });
        }
        let mut union = CpuSet::new();
        for task in tasks {
            union = union.union(&task.mask);
        }
        let keep = union.truncated(target_cpus);
        Ok(equipartition(
            &keep,
            tasks.len(),
            &self.topology,
            self.policy,
        ))
    }

    /// Redistributes the CPUs freed by a finished job among the tasks that
    /// keep running (`release_resources` in the paper's Figure 2).
    pub fn release_resources(&self, running: &[RunningTask], freed: &CpuSet) -> Vec<RunningTask> {
        redistribute_freed(running, freed, &self.topology, self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plugin() -> AffinityPlugin {
        AffinityPlugin::new(Topology::marenostrum3_node())
    }

    fn task(job: u64, id: usize, range: std::ops::Range<usize>) -> RunningTask {
        RunningTask {
            job_id: job,
            task_id: id,
            mask: CpuSet::from_range(range).unwrap(),
        }
    }

    #[test]
    fn idle_node_equipartition() {
        let plan = plugin().launch_request("node0", &[], 2).unwrap();
        assert!(plan.running_updates.is_empty());
        assert_eq!(plan.task_masks.len(), 2);
        assert_eq!(plan.task_masks[0].count(), 8);
        assert_eq!(plan.task_masks[1].count(), 8);
        assert!(plan.task_masks[0].is_disjoint(&plan.task_masks[1]));
    }

    #[test]
    fn busy_node_shrinks_running_job() {
        // Figure 2 scenario: job 1 (one task) owns the node, job 2 brings one task.
        let running = vec![task(1, 0, 0..16)];
        let plan = plugin().launch_request("node0", &running, 1).unwrap();
        assert_eq!(plan.running_updates.len(), 1);
        assert_eq!(plan.running_updates[0].mask.count(), 8);
        assert!(plan.running_updates[0].mask.is_subset_of(&running[0].mask));
        assert_eq!(plan.task_masks.len(), 1);
        assert_eq!(plan.task_masks[0].count(), 8);
        assert!(plan.task_masks[0].is_disjoint(&plan.running_updates[0].mask));
    }

    #[test]
    fn too_many_tasks_rejected() {
        let err = plugin().launch_request("node0", &[], 17).unwrap_err();
        assert!(matches!(err, SlurmError::NotEnoughCpus { .. }));
        let running: Vec<RunningTask> = (0..10).map(|i| task(1, i, i..i + 1)).collect();
        let err = plugin().launch_request("node0", &running, 7).unwrap_err();
        assert!(matches!(err, SlurmError::NotEnoughCpus { .. }));
    }

    #[test]
    fn shrink_request_keeps_a_prefix() {
        let running = vec![task(1, 0, 0..8), task(1, 1, 8..16)];
        let masks = plugin().shrink_request("node0", &running, 8).unwrap();
        assert_eq!(masks.len(), 2);
        assert_eq!(masks[0].count() + masks[1].count(), 8);
        let union = masks[0].union(&masks[1]);
        assert_eq!(union, CpuSet::from_range(0..8).unwrap());
        assert!(masks[0].is_disjoint(&masks[1]));
        // Shrinking below one CPU per task is refused.
        let err = plugin().shrink_request("node0", &running, 1).unwrap_err();
        assert!(matches!(err, SlurmError::NotEnoughCpus { .. }));
    }

    #[test]
    fn release_resources_expands_survivors() {
        let running = vec![task(2, 0, 0..4), task(2, 1, 4..8)];
        let freed = CpuSet::from_range(8..16).unwrap();
        let updated = plugin().release_resources(&running, &freed);
        assert_eq!(updated.len(), 2);
        assert_eq!(updated[0].mask.count(), 8);
        assert_eq!(updated[1].mask.count(), 8);
    }

    #[test]
    fn policy_override() {
        let p = plugin().with_policy(DistributionPolicy::Packed);
        assert_eq!(p.policy(), DistributionPolicy::Packed);
        assert_eq!(p.topology().num_cpus(), 16);
    }
}
