//! Job descriptions and life-cycle states.

use serde::{Deserialize, Serialize};

use drom_metrics::TimeUs;

/// Life-cycle of a job from the controller's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Executing on its allocated nodes.
    Running,
    /// Finished (successfully or not — the evaluation has no failing jobs).
    Completed,
}

/// A job submission: what the user asked for.
///
/// The fields mirror the knobs the paper's evaluation varies (Table 1): how
/// many MPI tasks, how many OpenMP threads per task, how many nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job identifier.
    pub id: u64,
    /// Human-readable name (e.g. `"NEST Conf. 1"`).
    pub name: String,
    /// Total number of MPI tasks of the job.
    pub num_tasks: usize,
    /// OpenMP threads each task would like (informational: the actual thread
    /// count follows the CPUs the task ends up owning).
    pub threads_per_task: usize,
    /// Number of nodes requested.
    pub nodes: usize,
    /// Submission time (virtual).
    pub submit_time: TimeUs,
    /// `true` if the job tolerates having its CPUs changed at run time.
    pub malleable: bool,
    /// Scheduling priority (larger is more urgent). The high-priority use case
    /// (Section 6.2) submits its second job with a higher priority.
    pub priority: u32,
    /// User-declared wall-clock limit (virtual µs), if any. Backfilling
    /// policies use it as the job's expected duration; `None` means the job
    /// gives the scheduler no estimate and can never be backfilled around.
    pub time_limit_us: Option<TimeUs>,
}

impl JobSpec {
    /// Creates a job with one task, one thread, one node, priority 0,
    /// malleable, submitted at time 0. Use the builder methods to adjust.
    pub fn new(id: u64, name: impl Into<String>) -> Self {
        JobSpec {
            id,
            name: name.into(),
            num_tasks: 1,
            threads_per_task: 1,
            nodes: 1,
            submit_time: 0,
            malleable: true,
            priority: 0,
            time_limit_us: None,
        }
    }

    /// Sets the number of MPI tasks.
    pub fn with_tasks(mut self, tasks: usize) -> Self {
        self.num_tasks = tasks.max(1);
        self
    }

    /// Sets the requested OpenMP threads per task.
    pub fn with_threads_per_task(mut self, threads: usize) -> Self {
        self.threads_per_task = threads.max(1);
        self
    }

    /// Sets the number of nodes requested.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes.max(1);
        self
    }

    /// Sets the submission time.
    pub fn with_submit_time(mut self, time: TimeUs) -> Self {
        self.submit_time = time;
        self
    }

    /// Marks the job as rigid (non-malleable): its masks must never change.
    pub fn rigid(mut self) -> Self {
        self.malleable = false;
        self
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Declares a wall-clock limit (virtual µs), enabling backfill estimates.
    pub fn with_time_limit_us(mut self, limit: TimeUs) -> Self {
        self.time_limit_us = Some(limit);
        self
    }

    /// Tasks this job places on each of its nodes (block distribution, like
    /// the evaluation: "All applications ask for 2 nodes and distribute MPI
    /// processes among them").
    pub fn tasks_per_node(&self) -> Vec<usize> {
        let base = self.num_tasks / self.nodes;
        let extra = self.num_tasks % self.nodes;
        (0..self.nodes)
            .map(|i| base + usize::from(i < extra))
            .collect()
    }

    /// Total CPUs the job would like (tasks × threads).
    pub fn requested_cpus(&self) -> usize {
        self.num_tasks * self.threads_per_task
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let job = JobSpec::new(7, "NEST Conf. 1")
            .with_tasks(4)
            .with_threads_per_task(8)
            .with_nodes(2)
            .with_submit_time(1_000)
            .with_priority(5);
        assert_eq!(job.id, 7);
        assert_eq!(job.name, "NEST Conf. 1");
        assert_eq!(job.num_tasks, 4);
        assert_eq!(job.threads_per_task, 8);
        assert_eq!(job.nodes, 2);
        assert_eq!(job.submit_time, 1_000);
        assert_eq!(job.priority, 5);
        assert!(job.malleable);
        assert_eq!(job.requested_cpus(), 32);
    }

    #[test]
    fn rigid_jobs() {
        let job = JobSpec::new(1, "legacy").rigid();
        assert!(!job.malleable);
    }

    #[test]
    fn time_limit_is_optional() {
        assert_eq!(JobSpec::new(1, "x").time_limit_us, None);
        let job = JobSpec::new(2, "y").with_time_limit_us(5_000_000);
        assert_eq!(job.time_limit_us, Some(5_000_000));
    }

    #[test]
    fn zero_values_are_clamped() {
        let job = JobSpec::new(1, "x")
            .with_tasks(0)
            .with_threads_per_task(0)
            .with_nodes(0);
        assert_eq!(job.num_tasks, 1);
        assert_eq!(job.threads_per_task, 1);
        assert_eq!(job.nodes, 1);
    }

    #[test]
    fn tasks_per_node_block_distribution() {
        let job = JobSpec::new(1, "x").with_tasks(4).with_nodes(2);
        assert_eq!(job.tasks_per_node(), vec![2, 2]);
        let odd = JobSpec::new(2, "y").with_tasks(5).with_nodes(2);
        assert_eq!(odd.tasks_per_node(), vec![3, 2]);
        let single = JobSpec::new(3, "z").with_tasks(2).with_nodes(1);
        assert_eq!(single.tasks_per_node(), vec![2]);
    }

    #[test]
    fn job_state_variants() {
        assert_ne!(JobState::Pending, JobState::Running);
        assert_ne!(JobState::Running, JobState::Completed);
    }
}
