//! The per-node daemon: bookkeeping of the jobs running on a node, mask
//! computation on launch and CPU redistribution on job completion.
//!
//! `slurmd` is "in charge of managing single computing node resources, and
//! thanks to the plugin, calculating and distributing CPU masks to tasks of
//! the scheduled job". The DROM-enabled flow (Figure 2) is:
//!
//! 1. `launch_request` — compute masks for the starting tasks and shrunk masks
//!    for the running tasks;
//! 2. `pre_launch` (delegated to [`SlurmStepd`]) — apply them via
//!    `DROM_PreInit`;
//! 3. `post_term` — clean up via `DROM_PostFinalize` when a task ends;
//! 4. `release_resources` — when a whole job ends, hand its CPUs to the jobs
//!    that keep running.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use drom_core::{DromFlags, Pid};
use drom_cpuset::distribution::RunningTask;
use drom_cpuset::DistributionPolicy;
use drom_shmem::NodeShmem;

use crate::affinity::{AffinityPlugin, NodeLaunchPlan};
use crate::cluster::NodeHw;
use crate::error::SlurmError;
use crate::stepd::SlurmStepd;

/// The per-node SLURM daemon with the DROM-enabled task/affinity plugin.
pub struct Slurmd {
    node: NodeHw,
    shmem: Arc<NodeShmem>,
    plugin: AffinityPlugin,
    stepd: SlurmStepd,
    drom_enabled: bool,
    /// Tasks of each job running on this node: job id → pids.
    running: Mutex<HashMap<u64, Vec<Pid>>>,
}

impl Slurmd {
    /// Creates the daemon of one node. `drom_enabled` selects between the
    /// modified SLURM (co-allocation allowed) and the baseline (a busy node
    /// refuses new jobs).
    pub fn new(node: NodeHw, shmem: Arc<NodeShmem>, drom_enabled: bool) -> Self {
        let plugin = AffinityPlugin::new(node.topology.clone());
        let stepd = SlurmStepd::new(node.name.clone(), Arc::clone(&shmem));
        Slurmd {
            node,
            shmem,
            plugin,
            stepd,
            drom_enabled,
            running: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the plugin's distribution policy (ablation studies).
    pub fn with_policy(mut self, policy: DistributionPolicy) -> Self {
        self.plugin = self.plugin.with_policy(policy);
        self
    }

    /// The node this daemon manages.
    pub fn node_name(&self) -> &str {
        &self.node.name
    }

    /// `true` if DROM co-allocation is enabled on this node.
    pub fn drom_enabled(&self) -> bool {
        self.drom_enabled
    }

    /// The node's DROM shared memory.
    pub fn shmem(&self) -> &Arc<NodeShmem> {
        &self.shmem
    }

    /// The step daemon of this node.
    pub fn stepd(&self) -> &SlurmStepd {
        &self.stepd
    }

    /// Job ids currently running on this node.
    pub fn running_jobs(&self) -> Vec<u64> {
        let mut jobs: Vec<u64> = self.running.lock().keys().copied().collect();
        jobs.sort_unstable();
        jobs
    }

    /// Snapshot of the running tasks with their current (effective) masks.
    fn running_tasks(&self) -> Vec<RunningTask> {
        let running = self.running.lock();
        let mut tasks = Vec::new();
        for (&job_id, pids) in running.iter() {
            for (task_id, &pid) in pids.iter().enumerate() {
                if let Ok(mask) = self.shmem.effective_mask(pid) {
                    tasks.push(RunningTask {
                        job_id,
                        task_id,
                        mask,
                    });
                }
            }
        }
        tasks.sort_by_key(|t| (t.job_id, t.task_id));
        tasks
    }

    /// Computes the launch plan for `new_tasks` tasks of `job_id` on this node
    /// (Figure 2, step 1).
    ///
    /// # Errors
    ///
    /// * [`SlurmError::NodeBusy`] when another job runs here and DROM is off.
    /// * [`SlurmError::NotEnoughCpus`] when the node cannot host the tasks.
    pub fn launch_request(
        &self,
        job_id: u64,
        new_tasks: usize,
    ) -> Result<NodeLaunchPlan, SlurmError> {
        let running = self.running_tasks();
        if !running.is_empty() && !self.drom_enabled {
            return Err(SlurmError::NodeBusy {
                node: self.node.name.clone(),
            });
        }
        let _ = job_id;
        self.plugin
            .launch_request(&self.node.name, &running, new_tasks)
    }

    /// Reserves `mask` for task `pid` of `job_id` through the step daemon and
    /// records it as running on this node (Figure 2, step 2/2.1).
    pub fn pre_launch(
        &self,
        job_id: u64,
        pid: Pid,
        mask: &drom_cpuset::CpuSet,
    ) -> Result<drom_core::DromEnviron, SlurmError> {
        let environ = self.stepd.pre_launch(pid, mask)?;
        self.running.lock().entry(job_id).or_default().push(pid);
        Ok(environ)
    }

    /// Cleans up one finished task (Figure 2, step 4/4.1).
    pub fn post_term(&self, job_id: u64, pid: Pid) -> Result<(), SlurmError> {
        self.stepd.post_term(pid)?;
        let mut running = self.running.lock();
        if let Some(pids) = running.get_mut(&job_id) {
            pids.retain(|&p| p != pid);
            if pids.is_empty() {
                running.remove(&job_id);
            }
        }
        Ok(())
    }

    /// Computes the mask posts a shrink of `job_id` to `target_cpus` would
    /// make on this node, validating every one of them *before* anything is
    /// mutated: a task still carrying an unconsumed update (it has not
    /// polled since the last change) fails the whole plan with
    /// `DLB_ERR_PDIRTY`, so a multi-task shrink is all-or-nothing like
    /// PR 2's steals. Returns the posts plus the CPUs the shrink frees.
    pub(crate) fn shrink_plan(
        &self,
        job_id: u64,
        target_cpus: usize,
    ) -> Result<(Vec<(Pid, drom_cpuset::CpuSet)>, usize), SlurmError> {
        let tasks: Vec<RunningTask> = self
            .running_tasks()
            .into_iter()
            .filter(|t| t.job_id == job_id)
            .collect();
        if tasks.is_empty() {
            return Err(SlurmError::UnknownJob { job_id });
        }
        let held: usize = tasks.iter().map(|t| t.mask.count()).sum();
        if held <= target_cpus {
            return Ok((Vec::new(), 0));
        }
        let masks = self
            .plugin
            .shrink_request(&self.node.name, &tasks, target_cpus)?;
        let admin = self.stepd.admin();
        let mut posts = Vec::new();
        for (task, mask) in tasks.iter().zip(masks.iter()) {
            if mask != &task.mask {
                if let Some(pid) = self.pid_of(task.job_id, task.task_id) {
                    match admin.get_process_entry(pid) {
                        // A task that finalized between the snapshot and here
                        // is completing on its own; its CPUs come back through
                        // post_term / release_resources, not this shrink.
                        Err(drom_core::DromError::NoSuchProcess { .. }) => continue,
                        Err(err) => return Err(err.into()),
                        Ok(entry) if entry.pending_mask.is_some() => {
                            return Err(drom_core::DromError::PendingDirty { pid }.into());
                        }
                        Ok(_) => posts.push((pid, mask.clone())),
                    }
                }
            }
        }
        Ok((posts, held - target_cpus))
    }

    /// Applies a previously computed shrink plan. A task that finalized in
    /// the meantime is skipped — its own completion path returns the CPUs.
    pub(crate) fn apply_shrink_posts(
        &self,
        posts: &[(Pid, drom_cpuset::CpuSet)],
    ) -> Result<(), SlurmError> {
        let admin = self.stepd.admin();
        for (pid, mask) in posts {
            match admin.set_process_mask(*pid, mask, DromFlags::default()) {
                Ok(_) => {}
                Err(drom_core::DromError::NoSuchProcess { .. }) => {}
                Err(err) => return Err(err.into()),
            }
        }
        Ok(())
    }

    /// Shrinks a running job's tasks on this node so they collectively hold
    /// `target_cpus` CPUs, posting the smaller masks through the DROM
    /// pending-mask machinery (each task adapts at its next malleability
    /// point). The freed CPUs become available for a subsequent
    /// [`launch_request`](Self::launch_request) — this is the execution-path
    /// form of a malleable-policy *shrink-to-admit* decision.
    ///
    /// Every post is validated before any is applied, so the node's tasks
    /// are never left partially shrunk: if any task still carries an
    /// unconsumed update, the whole call fails with
    /// [`DromError::PendingDirty`](drom_core::DromError::PendingDirty)
    /// (DLB's `DLB_ERR_PDIRTY`) and the scheduler simply retries at its next
    /// pass, after the task's next malleability point. (Validation and
    /// application race only with *other* administrators; on the execution
    /// path the node's lone slurmd is the only mask writer.)
    ///
    /// Returns the number of CPUs freed (0 when the job already holds at
    /// most `target_cpus`).
    ///
    /// # Errors
    ///
    /// * [`SlurmError::UnknownJob`] when the job has no tasks on this node.
    /// * [`SlurmError::NotEnoughCpus`] when `target_cpus` would leave a task
    ///   without a CPU.
    /// * [`SlurmError::Drom`] (`PendingDirty`) when a task has not yet
    ///   consumed a previous update.
    pub fn shrink_job(&self, job_id: u64, target_cpus: usize) -> Result<usize, SlurmError> {
        let (posts, freed) = self.shrink_plan(job_id, target_cpus)?;
        self.apply_shrink_posts(&posts)?;
        Ok(freed)
    }

    /// Redistributes the CPUs freed by `finished_job` among the jobs that keep
    /// running on this node (Figure 2, step 5/5.1). Returns the number of CPUs
    /// that were handed out.
    pub fn release_resources(&self, finished_job: u64) -> Result<usize, SlurmError> {
        // The finished job's tasks must already be post_term'd; anything left
        // under its id is stale bookkeeping.
        self.running.lock().remove(&finished_job);
        let survivors = self.running_tasks();
        if survivors.is_empty() {
            return Ok(0);
        }
        let freed = self.shmem.free_cpus();
        if freed.is_empty() {
            return Ok(0);
        }
        let updated = self.plugin.release_resources(&survivors, &freed);
        let admin = self.stepd.admin();
        let mut handed_out = 0usize;
        for (before, after) in survivors.iter().zip(updated.iter()) {
            if after.mask != before.mask {
                let pid = self.pid_of(after.job_id, after.task_id);
                if let Some(pid) = pid {
                    handed_out += after.mask.count() - before.mask.count();
                    admin.set_process_mask(pid, &after.mask, DromFlags::default())?;
                }
            }
        }
        Ok(handed_out)
    }

    fn pid_of(&self, job_id: u64, task_id: usize) -> Option<Pid> {
        self.running
            .lock()
            .get(&job_id)
            .and_then(|pids| pids.get(task_id))
            .copied()
    }

    /// Fraction of the node's CPUs currently assigned to running processes.
    pub fn utilization(&self) -> f64 {
        let total = self.node.topology.num_cpus();
        if total == 0 {
            return 0.0;
        }
        let free = self.shmem.free_cpus().count();
        (total - free) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drom_core::DromProcess;
    use drom_cpuset::{CpuSet, Topology};

    fn make_slurmd(drom: bool) -> (Slurmd, Arc<NodeShmem>) {
        let shmem = Arc::new(NodeShmem::new("node0", 16));
        let node = NodeHw {
            name: "node0".into(),
            topology: Topology::marenostrum3_node(),
        };
        (Slurmd::new(node, Arc::clone(&shmem), drom), shmem)
    }

    #[test]
    fn launch_on_idle_node() {
        let (slurmd, _shmem) = make_slurmd(true);
        let plan = slurmd.launch_request(1, 2).unwrap();
        assert_eq!(plan.task_masks.len(), 2);
        assert!(plan.running_updates.is_empty());
        assert_eq!(slurmd.node_name(), "node0");
        assert!(slurmd.drom_enabled());
        assert_eq!(slurmd.utilization(), 0.0);
    }

    #[test]
    fn full_coallocation_lifecycle() {
        let (slurmd, shmem) = make_slurmd(true);

        // Job 1: one task on the whole node.
        let plan1 = slurmd.launch_request(1, 1).unwrap();
        let env1 = slurmd.pre_launch(1, 100, &plan1.task_masks[0]).unwrap();
        let proc1 = Arc::new(DromProcess::init_from_environ(&env1, Arc::clone(&shmem)).unwrap());
        assert_eq!(proc1.num_cpus(), 16);
        assert_eq!(slurmd.running_jobs(), vec![1]);
        assert!((slurmd.utilization() - 1.0).abs() < 1e-12);

        // Job 2: two tasks co-allocated; job 1 must shrink to half the node.
        let plan2 = slurmd.launch_request(2, 2).unwrap();
        assert_eq!(plan2.running_updates.len(), 1);
        assert_eq!(plan2.running_updates[0].mask.count(), 8);
        let mut procs2 = Vec::new();
        for (i, mask) in plan2.task_masks.iter().enumerate() {
            let env = slurmd.pre_launch(2, 200 + i as u32, mask).unwrap();
            procs2.push(DromProcess::init_from_environ(&env, Arc::clone(&shmem)).unwrap());
        }
        assert_eq!(slurmd.running_jobs(), vec![1, 2]);
        // Job 1 observes the shrink at its next malleability point.
        assert_eq!(proc1.poll_drom().unwrap().unwrap().count(), 8);
        assert_eq!(procs2[0].num_cpus() + procs2[1].num_cpus(), 8);

        // Job 2 finishes: post_term both tasks, release resources to job 1.
        for (i, proc) in procs2.into_iter().enumerate() {
            proc.finalize().unwrap();
            slurmd.post_term(2, 200 + i as u32).unwrap();
        }
        let handed = slurmd.release_resources(2).unwrap();
        // Job 1 already got its owned CPUs back through PostFinalize's
        // return-to-owner path, so release_resources may have nothing left.
        let _ = handed;
        assert_eq!(proc1.poll_drom().unwrap().unwrap().count(), 16);
        assert_eq!(slurmd.running_jobs(), vec![1]);
    }

    #[test]
    fn owner_finishes_first_survivor_expands() {
        let (slurmd, shmem) = make_slurmd(true);
        // Job 1 owns the whole node.
        let plan1 = slurmd.launch_request(1, 1).unwrap();
        let env1 = slurmd.pre_launch(1, 100, &plan1.task_masks[0]).unwrap();
        let proc1 = DromProcess::init_from_environ(&env1, Arc::clone(&shmem)).unwrap();
        // Job 2 co-allocates one task.
        let plan2 = slurmd.launch_request(2, 1).unwrap();
        let env2 = slurmd.pre_launch(2, 200, &plan2.task_masks[0]).unwrap();
        let proc2 = DromProcess::init_from_environ(&env2, Arc::clone(&shmem)).unwrap();
        proc1.poll_drom().unwrap();
        assert_eq!(proc2.num_cpus(), 8);

        // Job 1 (the CPU owner) finishes first.
        proc1.finalize().unwrap();
        slurmd.post_term(1, 100).unwrap();
        let handed = slurmd.release_resources(1).unwrap();
        assert_eq!(
            handed, 8,
            "the survivor acquires the freed half of the node"
        );
        assert_eq!(proc2.poll_drom().unwrap().unwrap().count(), 16);
    }

    #[test]
    fn shrink_job_frees_cpus_for_admission() {
        let (slurmd, shmem) = make_slurmd(true);
        // Job 1: two tasks owning the whole node.
        let plan1 = slurmd.launch_request(1, 2).unwrap();
        let mut procs1 = Vec::new();
        for (i, mask) in plan1.task_masks.iter().enumerate() {
            let env = slurmd.pre_launch(1, 100 + i as u32, mask).unwrap();
            procs1.push(DromProcess::init_from_environ(&env, Arc::clone(&shmem)).unwrap());
        }
        // A malleable-policy shrink: job 1 down to 8 CPUs.
        let freed = slurmd.shrink_job(1, 8).unwrap();
        assert_eq!(freed, 8);
        // The tasks observe the shrink at their next malleability point.
        let total: usize = procs1
            .iter()
            .map(|p| {
                p.poll_drom().unwrap();
                p.num_cpus()
            })
            .sum();
        assert_eq!(total, 8);
        // The freed CPUs admit a new job without stealing anything further.
        let plan2 = slurmd.launch_request(2, 1).unwrap();
        assert_eq!(plan2.task_masks[0].count(), 8);

        // Shrinking to the current width is a no-op; unknown jobs error.
        assert_eq!(slurmd.shrink_job(1, 8).unwrap(), 0);
        assert!(matches!(
            slurmd.shrink_job(42, 4),
            Err(SlurmError::UnknownJob { job_id: 42 })
        ));
        assert!(matches!(
            slurmd.shrink_job(1, 1),
            Err(SlurmError::NotEnoughCpus { .. })
        ));
    }

    #[test]
    fn busy_node_without_drom_is_refused() {
        let (slurmd, _shmem) = make_slurmd(false);
        let plan1 = slurmd.launch_request(1, 1).unwrap();
        slurmd.pre_launch(1, 100, &plan1.task_masks[0]).unwrap();
        let err = slurmd.launch_request(2, 1).unwrap_err();
        assert!(matches!(err, SlurmError::NodeBusy { .. }));
        assert!(!slurmd.drom_enabled());
    }

    #[test]
    fn release_with_no_survivors_is_zero() {
        let (slurmd, _shmem) = make_slurmd(true);
        assert_eq!(slurmd.release_resources(9).unwrap(), 0);
    }

    #[test]
    fn post_term_unknown_pid_is_tolerated() {
        let (slurmd, _shmem) = make_slurmd(true);
        slurmd.post_term(1, 999).unwrap();
        assert!(slurmd.running_jobs().is_empty());
    }

    #[test]
    fn policy_override_is_applied() {
        let (slurmd, _shmem) = make_slurmd(true);
        let slurmd = slurmd.with_policy(DistributionPolicy::Packed);
        let plan = slurmd.launch_request(1, 2).unwrap();
        assert_eq!(plan.task_masks[0], CpuSet::from_range(0..8).unwrap());
    }
}
