//! Pluggable cluster-scheduling policies over a CPU-level cluster view.
//!
//! The paper deliberately leaves `slurmctld` untouched ("the purpose is to
//! give a proof of integration of DROM APIs, not to present new scheduling
//! policies"). This module is the step beyond that proof: it defines the
//! [`SchedulerPolicy`] trait — a cluster-wide decision procedure fed a
//! [`ClusterView`] and a queue of [`QueuedJob`]s — and three implementations:
//!
//! * [`FirstFitPolicy`] — the baseline: FCFS order, first-fit placement,
//!   head-of-line blocking. This is the paper's unmodified-controller
//!   behaviour lifted to CPU granularity.
//! * [`BackfillPolicy`] — conservative EASY-style backfill: one reservation
//!   for the blocked head job; only jobs with a declared time limit that
//!   finish before the reservation may jump the queue.
//! * [`MalleablePolicy`] — the DROM-enabled policy: when the head job does not
//!   fit, running malleable jobs are *shrunk* (down to their per-node floor)
//!   to admit it, and re-expanded toward their full request whenever CPUs free
//!   up. On the execution path the shrink/expand actions map onto the
//!   `DROM_PreInit` steal and pending-mask machinery (see
//!   [`Slurmd::shrink_job`](crate::Slurmd::shrink_job) and
//!   [`Slurmd::release_resources`](crate::Slurmd::release_resources)); in the
//!   trace-driven simulator they map onto virtual-time reallocation.
//!
//! Policies are pure decision procedures: they never mutate cluster state.
//! The [`PolicyScheduler`](crate::PolicyScheduler) applies (and validates)
//! the returned [`SchedulerAction`]s, so a buggy policy cannot oversubscribe
//! a node. The scheduler also maintains a [`SchedIndex`] — per-node free /
//! reclaimable CPUs and donor lists, updated event-by-event — that the
//! malleable policy reads instead of rescanning the running set, which is
//! what makes its pass sub-linear in cluster size ([`MalleableScanPolicy`]
//! preserves the pre-index reference for differential tests and benches).
//! `docs/scheduling.md` documents the exact semantics of each policy, the
//! complexity budget, and how a shrink composes with the registry's
//! pending-mask rules.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use drom_metrics::TimeUs;

use crate::job::JobSpec;

/// Fixed-point speedup curve of one job: how fast the job progresses at each
/// per-node width, relative to its full request width.
///
/// `rates[w]` is the job's progress rate at `w` CPUs per node, in fixed-point
/// work units per microsecond; index `rates.len() - 1` is the request width.
/// A job running at full width for `duration_us` delivers exactly
/// `duration_us × full_rate()` work units, so only rate *ratios* matter —
/// the absolute scale is the curve builder's choice. The curve
/// is application-agnostic — the scheduler never sees the model that
/// produced it, only the integer rate table — which is what lets the
/// calibrated `drom-apps` performance models (static data partitions,
/// memory-bound saturation, init phases) drive scheduler estimates without a
/// `drom-slurm → drom-apps` dependency edge. `drom_sim::rate` builds curves
/// from the models; a job without a curve scales linearly
/// (`rate ∝ width`), which reproduces the PR 3/4 behaviour bit for bit.
///
/// Invariants (checked by [`from_rates`](Self::from_rates)): rates are
/// monotone non-decreasing in the width (an expand can never slow a job
/// down), every rate above width 0 is non-zero, and `rates[0]` is 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpeedupCurve {
    rates: Vec<u64>,
}

impl SpeedupCurve {
    /// Fixed-point unit: the rate at the full request width. 2^20 keeps the
    /// quantization error of a rate ratio below one part per million while
    /// `duration × FP` stays far from u64/u128 overflow for any virtual
    /// duration the traces use.
    pub const FP: u64 = 1 << 20;

    /// Builds a curve from the per-width rate table (`rates[w]` = rate at
    /// `w` CPUs per node; the last index is the request width).
    ///
    /// # Panics
    ///
    /// Panics if the table has fewer than two entries (a request width of at
    /// least 1 plus the zero-width entry), if `rates[0] != 0`, if any rate
    /// above width 0 is zero, or if the table is not monotone non-decreasing.
    pub fn from_rates(rates: Vec<u64>) -> Self {
        assert!(rates.len() >= 2, "a curve needs at least width 0 and 1");
        assert_eq!(rates[0], 0, "zero CPUs deliver zero work");
        for w in 1..rates.len() {
            assert!(rates[w] > 0, "rate at width {w} must be positive");
            assert!(
                rates[w] >= rates[w - 1],
                "rates must be monotone: expanding to width {w} may not slow the job"
            );
        }
        SpeedupCurve { rates }
    }

    /// The linear curve for `request` CPUs per node: `rate(w) = w × FP`,
    /// quantization-free at every width (`⌈d·request·FP / (w·FP)⌉` equals
    /// `⌈d·request / w⌉` exactly), so a linear curve is byte-identical to no
    /// curve at all. Only used by tests and differential checks — an absent
    /// curve already means linear.
    pub fn linear(request: usize) -> Self {
        Self::from_rates((0..=request.max(1) as u64).map(|w| w * Self::FP).collect())
    }

    /// The request width the curve was built for.
    pub fn request_width(&self) -> usize {
        self.rates.len() - 1
    }

    /// Progress rate (fixed-point work units per µs) at `width` CPUs per
    /// node. Widths beyond the request clamp to the full rate: per the
    /// static-partition cap, CPUs beyond the launch width cannot speed the
    /// job up further.
    // PANIC: the width clamps to the table's last index, never out of bounds.
    pub fn rate(&self, width: usize) -> u64 {
        self.rates[width.min(self.rates.len() - 1)]
    }

    /// The rate at the full request width ([`Self::FP`] for curves built by
    /// `drom_sim::rate`, `request × FP` for [`linear`](Self::linear) ones).
    // PANIC: `from_rates` rejects empty tables.
    pub fn full_rate(&self) -> u64 {
        *self.rates.last().expect("from_rates guarantees non-empty")
    }

    /// Expected duration at `width` CPUs per node of a job declared to take
    /// `duration_us` at full width: `⌈duration × full_rate / rate(width)⌉`.
    /// Rounds **up** for the same reason the linear estimate does — a
    /// truncated estimate promises CPUs an instant before the engine's exact
    /// completion releases them.
    pub fn scaled_duration_us(&self, duration_us: TimeUs, width: usize) -> TimeUs {
        let rate = self.rate(width).max(1);
        let scaled = (duration_us as u128 * self.full_rate() as u128).div_ceil(rate as u128);
        TimeUs::try_from(scaled).unwrap_or(TimeUs::MAX)
    }

    /// Rate carried by the CPU that took the job from `width - 1` to `width`.
    /// 0 at width 0 and beyond the request width (where the table clamps
    /// flat); never negative, by the monotonicity invariant.
    pub fn marginal_rate(&self, width: usize) -> u64 {
        if width == 0 {
            0
        } else {
            self.rate(width) - self.rate(width - 1)
        }
    }

    /// Relative marginal cost (fixed-point) of the CPU that took the job
    /// from `width - 1` to `width`:
    /// `marginal_rate(width) × request_width × FP / full_rate`, normalised
    /// so one CPU of a linear job is worth exactly [`Self::FP`].
    ///
    /// This is the malleable policy's victim-ranking and expansion-targeting
    /// key: "what fraction of a linear CPU's throughput does this CPU
    /// actually carry". The division truncates toward zero on the FP grid —
    /// exact for linear curves (the numerator is a multiple of `full_rate`)
    /// and at worst one FP-grid step (< 1 ppm of a CPU) low for model
    /// curves, far below the gaps the ranking discriminates.
    pub fn relative_marginal_cost(&self, width: usize) -> u64 {
        let num =
            self.marginal_rate(width) as u128 * self.request_width() as u128 * Self::FP as u128;
        (num / self.full_rate() as u128) as u64
    }

    /// Relative rate (fixed-point) at `width`:
    /// `rate(width) × request_width × FP / full_rate`, truncating — exactly
    /// `width × FP` for a linear curve. The gain side of the malleable
    /// policy's shrink-economics comparison, in the same normalised units as
    /// [`relative_marginal_cost`](Self::relative_marginal_cost).
    pub fn relative_rate(&self, width: usize) -> u64 {
        let num = self.rate(width) as u128 * self.request_width() as u128 * Self::FP as u128;
        (num / self.full_rate() as u128) as u64
    }

    /// Length of the zero-marginal tail below `width`, capped at `limit`:
    /// the largest `g ≤ limit` with `rate(width - g) == rate(width)` — CPUs
    /// the job can give up without losing any throughput at all. 0 for a
    /// linear curve.
    pub fn zero_cost_run(&self, width: usize, limit: usize) -> usize {
        let limit = limit.min(width);
        let mut g = 0;
        while g < limit && self.rate(width - g - 1) == self.rate(width) {
            g += 1;
        }
        g
    }

    /// Length of the equal-marginal run below `width`, capped at `limit`:
    /// the largest `g ≤ limit` such that each of the `g` CPUs donated on the
    /// way from `width` down to `width - g` carries the same marginal rate
    /// as the first one. The malleable carve-out shrinks a victim by whole
    /// runs; for a linear curve the run is all of `limit`, which is exactly
    /// the pre-curve chunked-donation behaviour.
    pub fn equal_cost_run(&self, width: usize, limit: usize) -> usize {
        let limit = limit.min(width);
        if limit == 0 {
            return 0;
        }
        let top = self.marginal_rate(width);
        let mut g = 1;
        while g < limit && self.marginal_rate(width - g) == top {
            g += 1;
        }
        g
    }

    /// `true` when the curve is flat from `width` through the request: more
    /// CPUs cannot speed the job up, so expansion must skip it.
    pub fn saturated_at(&self, width: usize) -> bool {
        self.rate(width) == self.full_rate()
    }
}

/// A job submission as the scheduling policies see it: pure resource shape,
/// no application payload.
///
/// Widths are *per node*: a job asks for `nodes × cpus_per_node` CPUs and a
/// malleable job may run anywhere between `nodes × min_cpus_per_node` and its
/// full request (the allocation width is uniform across its nodes, matching
/// the block task distribution every workload of the paper uses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    /// Unique job identifier.
    pub id: u64,
    /// Submission time (virtual µs).
    pub submit_us: TimeUs,
    /// Number of nodes requested.
    pub nodes: usize,
    /// CPUs requested on each of those nodes.
    pub cpus_per_node: usize,
    /// Smallest per-node width the job tolerates (= `cpus_per_node` for a
    /// rigid job; typically one CPU per task for a malleable one).
    pub min_cpus_per_node: usize,
    /// `true` if the job tolerates having its CPUs changed at run time.
    pub malleable: bool,
    /// Scheduling priority (larger is more urgent).
    pub priority: u32,
    /// Expected duration (virtual µs) at full request width, if declared.
    /// Backfill reservations treat `None` as "unbounded".
    pub expected_duration_us: Option<TimeUs>,
    /// The job's speedup curve, when its application model is known. `None`
    /// means linear speedup (`rate ∝ width`) — the PR 3/4 behaviour. Every
    /// duration estimate the policies and the controller derive for a
    /// non-full width consults this curve, so drain reservations stay honest
    /// when shrinking a static-partition job costs more than linear.
    pub speedup: Option<SpeedupCurve>,
}

impl QueuedJob {
    /// Creates a rigid job: `nodes × cpus_per_node`, no time limit.
    pub fn new(id: u64, nodes: usize, cpus_per_node: usize) -> Self {
        QueuedJob {
            id,
            submit_us: 0,
            nodes: nodes.max(1),
            cpus_per_node: cpus_per_node.max(1),
            min_cpus_per_node: cpus_per_node.max(1),
            malleable: false,
            priority: 0,
            expected_duration_us: None,
            speedup: None,
        }
    }

    /// Marks the job malleable, able to shrink to `min_cpus_per_node`.
    pub fn malleable(mut self, min_cpus_per_node: usize) -> Self {
        self.malleable = true;
        self.min_cpus_per_node = min_cpus_per_node.clamp(1, self.cpus_per_node);
        self
    }

    /// Sets the submission time.
    pub fn with_submit_us(mut self, submit_us: TimeUs) -> Self {
        self.submit_us = submit_us;
        self
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Declares the expected duration (enables backfilling around this job).
    pub fn with_expected_duration_us(mut self, duration_us: TimeUs) -> Self {
        self.expected_duration_us = Some(duration_us);
        self
    }

    /// Attaches the job's speedup curve (model-aware scaling for every
    /// shrunk-width duration estimate).
    pub fn with_speedup(mut self, curve: SpeedupCurve) -> Self {
        self.speedup = Some(curve);
        self
    }

    /// Expected duration (µs) of this job granted `width` CPUs per node
    /// instead of its full request: the speedup curve when the job carries
    /// one, linear `⌈duration × request / width⌉` scaling otherwise. Rounds
    /// **up** — a truncated (optimistic) estimate lets a drain reservation
    /// promise an instant the shrunk job itself still occupies.
    pub fn scaled_duration_us(&self, duration_us: TimeUs, width: usize) -> TimeUs {
        match &self.speedup {
            Some(curve) => curve.scaled_duration_us(duration_us, width),
            None => scaled_duration(duration_us, self.cpus_per_node, width),
        }
    }

    /// Derives the policy-level shape from a [`JobSpec`]: the per-node width
    /// is the widest node's `tasks × threads`, the malleable floor is one CPU
    /// per task, and the expected duration is the declared time limit.
    pub fn from_spec(spec: &JobSpec) -> Self {
        let tasks_widest = spec.tasks_per_node().into_iter().max().unwrap_or(1).max(1);
        let request = tasks_widest * spec.threads_per_task.max(1);
        QueuedJob {
            id: spec.id,
            submit_us: spec.submit_time,
            nodes: spec.nodes.max(1),
            cpus_per_node: request,
            min_cpus_per_node: if spec.malleable {
                tasks_widest
            } else {
                request
            },
            malleable: spec.malleable,
            priority: spec.priority,
            expected_duration_us: spec.time_limit_us,
            speedup: None,
        }
    }

    /// Total CPUs of the full request.
    pub fn total_cpus(&self) -> usize {
        self.nodes * self.cpus_per_node
    }
}

/// Where a running job's CPUs live: a set of nodes and the uniform per-node
/// width currently granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobAllocation {
    /// The allocated job.
    pub job_id: u64,
    /// Indices (into the cluster's node list) of the allocated nodes.
    pub node_indices: Vec<usize>,
    /// CPUs currently granted on each of those nodes.
    pub cpus_per_node: usize,
}

impl JobAllocation {
    /// Total CPUs of the allocation.
    pub fn total_cpus(&self) -> usize {
        self.node_indices.len() * self.cpus_per_node
    }
}

/// A running job in the [`ClusterView`]: its request, its current allocation
/// and the controller's completion estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunningJob {
    /// The job's original request.
    pub job: QueuedJob,
    /// Current allocation.
    pub alloc: JobAllocation,
    /// When the job started (virtual µs).
    pub start_us: TimeUs,
    /// Estimated completion time, refreshed by the engine driving the
    /// scheduler; `None` when no estimate exists.
    pub expected_end_us: Option<TimeUs>,
}

impl RunningJob {
    /// `true` if the job currently holds fewer CPUs than it requested.
    pub fn is_shrunk(&self) -> bool {
        self.alloc.cpus_per_node < self.job.cpus_per_node
    }

    /// CPUs per node this job could still give up (0 for rigid jobs).
    pub fn reclaimable_per_node(&self) -> usize {
        if self.job.malleable {
            self.alloc
                .cpus_per_node
                .saturating_sub(self.job.min_cpus_per_node)
        } else {
            0
        }
    }
}

/// What a policy may ask the cluster to do. Actions are validated and applied
/// by [`PolicyScheduler::tick`](crate::PolicyScheduler::tick).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerAction {
    /// Start a queued job on the given nodes at the given per-node width
    /// (which may be below its request if the job is malleable).
    Start {
        /// The queued job to start.
        job_id: u64,
        /// Node indices of the allocation.
        node_indices: Vec<usize>,
        /// CPUs granted on each node.
        cpus_per_node: usize,
    },
    /// Change a running malleable job's per-node width (shrink or expand),
    /// keeping its node set.
    Resize {
        /// The running job to resize.
        job_id: u64,
        /// The new per-node width.
        cpus_per_node: usize,
    },
}

/// Read-only cluster state handed to a policy: homogeneous node capacity,
/// free CPUs per node and every running job.
#[derive(Debug)]
pub struct ClusterView<'a> {
    /// CPUs per node (the cluster is homogeneous, like the paper's).
    pub node_cpus: usize,
    /// Free CPUs on each node, indexed by node.
    pub free: &'a [usize],
    /// Every running job with its current allocation.
    pub running: &'a [RunningJob],
    /// The incrementally maintained availability index, when the driver keeps
    /// one ([`PolicyScheduler`](crate::PolicyScheduler) always does). `None`
    /// for hand-built views; policies that use the index fall back to a
    /// one-shot rebuild from `running`, so decisions are identical either way
    /// — the index only removes the per-pass recomputation cost.
    pub index: Option<&'a SchedIndex>,
    /// The incrementally maintained admission order over the queue, when the
    /// driver keeps one ([`PolicyScheduler`](crate::PolicyScheduler) always
    /// does). `None` for hand-built views; policies fall back to a one-shot
    /// `queue_order` sort, so decisions are identical either way — the
    /// maintained order only removes the per-pass O(queue log queue) sort.
    pub order: Option<&'a AdmissionOrder>,
}

impl ClusterView<'_> {
    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.free.len()
    }

    /// Total free CPUs across the cluster.
    pub fn total_free(&self) -> usize {
        self.free.iter().sum()
    }

    /// Checks that `job` could start if every CPU of the cluster were free.
    /// Returns the reason it never can, if so — the admission guard that
    /// keeps impossible jobs out of the queue (error, not livelock).
    pub fn fits_ever(&self, job: &QueuedJob) -> Result<(), String> {
        if job.cpus_per_node == 0 || job.nodes == 0 {
            return Err("job requests zero CPUs".into());
        }
        if job.nodes > self.num_nodes() {
            return Err(format!(
                "wants {} nodes, cluster has {}",
                job.nodes,
                self.num_nodes()
            ));
        }
        if job.cpus_per_node > self.node_cpus {
            return Err(format!(
                "wants {} CPUs per node, nodes have {}",
                job.cpus_per_node, self.node_cpus
            ));
        }
        if job.min_cpus_per_node > job.cpus_per_node {
            return Err(format!(
                "malleable floor {} exceeds request {}",
                job.min_cpus_per_node, job.cpus_per_node
            ));
        }
        Ok(())
    }
}

/// The release timeline: per-node CPU release deltas keyed by estimated
/// completion instant, over the running jobs that carry an estimate.
///
/// This is the input of the drain-reservation forecast shared by
/// [`BackfillPolicy`] and [`MalleablePolicy`]: instead of re-sorting every
/// running allocation by end time and replaying the releases with a
/// first-fit probe per candidate instant (O(candidates × nodes) per
/// forecast — the reservation-heavy scaling wall at 1024+ nodes), the
/// forecast walks these pre-aggregated deltas in end order and maintains a
/// *count* of nodes satisfying the probe width, probing placement exactly
/// once (`earliest_timeline_fit`). [`SchedIndex`] keeps one up to date in
/// O(job's nodes × log running) per applied start / resize / completion /
/// estimate change, so a pass never pays the sort either.
///
/// Canonical form (what [`PartialEq`] compares, and what the debug rebuild
/// oracle re-derives from the running set): one entry per distinct estimated
/// end instant, mapping each node to the **sum** of the estimated widths
/// releasing there; zero-width node entries and empty instants are never
/// stored. Jobs without an estimate simply do not appear — the walk treats
/// their CPUs as never released, exactly like the replay it replaces.
/// Widths are positive by construction (no allocation is zero-wide).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReleaseTimeline {
    /// `by_end[t][node]` = CPUs released on `node` at estimated instant `t`.
    by_end: BTreeMap<TimeUs, BTreeMap<usize, usize>>,
    /// The instant each estimated job is currently keyed under — what lets
    /// an estimate change re-key the job without knowing its old estimate.
    ends: HashMap<u64, TimeUs>,
}

impl ReleaseTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of estimated jobs on the timeline.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// `true` when no job carries an estimate.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    fn add_deltas(&mut self, end_us: TimeUs, node_indices: &[usize], width: usize) {
        let at = self.by_end.entry(end_us).or_default();
        for &n in node_indices {
            *at.entry(n).or_insert(0) += width;
        }
    }

    // PANIC: callers subtract exactly what `add` inserted, so the end instant
    // and its per-node deltas are present (the SchedIndex timeline invariant).
    fn sub_deltas(&mut self, end_us: TimeUs, node_indices: &[usize], width: usize) {
        let at = self
            .by_end
            .get_mut(&end_us)
            .expect("an indexed job's end instant is on the timeline");
        for &n in node_indices {
            let d = at.get_mut(&n).expect("an indexed job's nodes carry deltas");
            *d -= width;
            if *d == 0 {
                at.remove(&n);
            }
        }
        if at.is_empty() {
            self.by_end.remove(&end_us);
        }
    }

    /// Enters a job holding `width` CPUs on each of `node_indices` until
    /// `end_us`. A job without an estimate (`None`) is not tracked — call
    /// [`set_end`](Self::set_end) when it gains one.
    pub fn add(
        &mut self,
        job_id: u64,
        node_indices: &[usize],
        width: usize,
        end_us: Option<TimeUs>,
    ) {
        if let Some(end) = end_us {
            self.ends.insert(job_id, end);
            self.add_deltas(end, node_indices, width);
        }
    }

    /// Removes a job (no-op when it carried no estimate). `node_indices` and
    /// `width` must be the allocation currently on the timeline.
    pub fn remove(&mut self, job_id: u64, node_indices: &[usize], width: usize) {
        if let Some(end) = self.ends.remove(&job_id) {
            self.sub_deltas(end, node_indices, width);
        }
    }

    /// Re-prices a tracked job's release from `old_width` to `new_width` at
    /// its current end instant — the resize hook (a resize keeps the node
    /// set; the estimate is refreshed separately via
    /// [`set_end`](Self::set_end)). No-op for unestimated jobs.
    pub fn update_width(
        &mut self,
        job_id: u64,
        node_indices: &[usize],
        old_width: usize,
        new_width: usize,
    ) {
        if let Some(&end) = self.ends.get(&job_id) {
            self.sub_deltas(end, node_indices, old_width);
            self.add_deltas(end, node_indices, new_width);
        }
    }

    /// Re-keys a job's release to a new estimate (in place: remove at the
    /// old instant, insert at the new), `None` dropping it from the
    /// timeline. `node_indices`/`width` are the job's current allocation.
    pub fn set_end(
        &mut self,
        job_id: u64,
        node_indices: &[usize],
        width: usize,
        end_us: Option<TimeUs>,
    ) {
        self.remove(job_id, node_indices, width);
        self.add(job_id, node_indices, width, end_us);
    }
}

/// Incrementally maintained, per-node indexed scheduler state: free CPUs,
/// the reclaimable-CPU summary, the donor index (which running malleable
/// jobs hold CPUs on each node) and the [`ReleaseTimeline`] over the
/// estimated completions.
///
/// [`PolicyScheduler`](crate::PolicyScheduler) owns one and updates it on
/// every start / resize / completion **event** instead of letting policies
/// recompute the same per-node sums from `running` on every pass. The
/// recomputation was the malleable policy's scaling wall: its availability
/// and victim scans were O(queue × nodes × running) per pass (~2 ms on a
/// loaded 128-node view, `BENCH_sched.json`), while the event-driven updates
/// here are O(nodes of the affected job) each.
///
/// Invariants (checked in debug builds against
/// [`rebuild_from_capacity`](SchedIndex::rebuild_from_capacity), which
/// re-derives everything — the free vector included — from the cluster
/// shape and the running jobs alone):
///
/// * `free[n]` equals the node capacity minus all allocations on `n`;
/// * `reclaim[n]` equals `Σ width − shrink_floor` (clamped at zero per job)
///   over the running malleable jobs on `n`, where the floor is the
///   malleable policy's [`shrink bound`](MalleablePolicy) — its declared
///   floor, but never below half its request;
/// * `cheap[n]` is the part of `reclaim[n]` the donors' speedup curves
///   price at zero — the curve-aware ordering summary
///   ([`SpeedupCurve::zero_cost_run`] under the same shrink bound, 0 for
///   curve-less linear jobs) that lets `shrink_to_admit` prefer nodes whose
///   reclaimable CPUs cost no throughput, without a per-pass curve scan;
/// * `donors[n]` lists exactly the running malleable jobs on `n`, in the
///   order they appear in the driver's `running` vector (start order), which
///   is what keeps indexed victim selection byte-identical to the reference
///   scan;
/// * `timeline` holds exactly `{(r.expected_end_us, r.alloc.node_indices,
///   r.alloc.cpus_per_node)}` over the running jobs whose estimate is
///   `Some`, in [`ReleaseTimeline`] canonical form — kept current by
///   [`on_estimate`](SchedIndex::on_estimate) whenever the driver refreshes
///   an estimate.
///
/// Completion consistency is the driver's job: the trace engine tags its
/// completion events with a generation counter and drops stale ones *before*
/// calling [`PolicyScheduler::job_finished`](crate::PolicyScheduler::job_finished),
/// so a completion superseded by a resize can never unwind the index twice.
///
/// On top of the per-node state the index keeps **per-width-class dirty
/// generations** for the probe memo ([`free_gen`](Self::free_gen) /
/// [`avail_gen`](Self::avail_gen)): `free_gen[w]` is bumped every time any
/// node's free-CPU count rises from below `w` to at least `w`, and
/// `avail_gen[w]` the same for free + reclaimable. An unchanged generation
/// therefore proves no node entered width class `w` since it was read —
/// the per-class count of qualifying nodes cannot have increased — which is
/// what makes skipping a re-probe sound (see `docs/scheduling.md`). The
/// generations are *not* part of the index's value ([`PartialEq`] ignores
/// them): two equal cluster states reached through different event
/// histories carry different generations by design.
#[derive(Debug, Clone)]
pub struct SchedIndex {
    free: Vec<usize>,
    reclaim: Vec<usize>,
    cheap: Vec<usize>,
    donors: Vec<Vec<u64>>,
    timeline: ReleaseTimeline,
    /// `free_gen[w]`: bumped when any node's free CPUs cross up into ≥ `w`.
    /// Grown on demand — a class never crossed is generation 0.
    free_gen: Vec<u64>,
    /// `avail_gen[w]`: same for free + reclaimable CPUs.
    avail_gen: Vec<u64>,
    /// Unique per index instance (fresh on every `new`/`rebuild`), so a
    /// probe memo recorded against one index can never validate against the
    /// zeroed generations of a freshly rebuilt one.
    epoch: u64,
}

/// Source of unique [`SchedIndex::epoch`] values. Starts at 1 so an epoch of
/// 0 can mean "no index seen yet" in a probe memo.
static INDEX_EPOCH: AtomicU64 = AtomicU64::new(1);

fn next_index_epoch() -> u64 {
    // SAFETY(ordering): epoch allocator; only uniqueness matters.
    INDEX_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Bumps the generations of every width class the value `old → new` crossed
/// up into (`old+1 ..= new`); a downward or flat move bumps nothing. The
/// generation vector grows on demand, so rebuilt indices need no capacity.
// PANIC: the vector is resized to `new + 1` right above the indexed range.
fn bump_gens(gens: &mut Vec<u64>, old: usize, new: usize) {
    if new > old {
        if gens.len() <= new {
            gens.resize(new + 1, 0);
        }
        for g in &mut gens[old + 1..=new] {
            *g += 1;
        }
    }
}

impl PartialEq for SchedIndex {
    fn eq(&self, other: &Self) -> bool {
        self.free == other.free
            && self.reclaim == other.reclaim
            && self.cheap == other.cheap
            && self.donors == other.donors
            && self.timeline == other.timeline
    }
}

impl Eq for SchedIndex {}

impl SchedIndex {
    /// An index over `num_nodes` empty nodes of `node_cpus` CPUs.
    pub fn new(num_nodes: usize, node_cpus: usize) -> Self {
        SchedIndex {
            free: vec![node_cpus; num_nodes],
            reclaim: vec![0; num_nodes],
            cheap: vec![0; num_nodes],
            donors: vec![Vec::new(); num_nodes],
            timeline: ReleaseTimeline::new(),
            free_gen: Vec::new(),
            avail_gen: Vec::new(),
            epoch: next_index_epoch(),
        }
    }

    /// Rebuilds the full index — including the free vector, derived from
    /// node capacity minus every running allocation — from nothing but the
    /// cluster shape and the running jobs. This is the debug-mode oracle the
    /// incremental updates are checked against: unlike [`rebuild`]
    /// (which trusts the free vector it is given), a drifted `free[n]`
    /// cannot escape this one.
    ///
    /// [`rebuild`]: SchedIndex::rebuild
    // PANIC: running allocations name nodes within the capacity they were
    // validated against.
    pub fn rebuild_from_capacity(
        num_nodes: usize,
        node_cpus: usize,
        running: &[RunningJob],
    ) -> Self {
        let mut free = vec![node_cpus; num_nodes];
        for r in running {
            for &n in &r.alloc.node_indices {
                free[n] -= r.alloc.cpus_per_node;
            }
        }
        Self::rebuild(&free, running)
    }

    /// Rebuilds the index from a free vector and the running jobs — the
    /// one-shot fallback for hand-built views (where the view's free vector
    /// is the source of truth).
    // ALLOC(pass): O(nodes) full rebuild — per-node columns, donor lists and
    // the release timeline from scratch; the incremental on_* path exists so
    // steady-state ticks never pay this.
    // PANIC: running allocations index nodes inside the free vector.
    pub fn rebuild(free: &[usize], running: &[RunningJob]) -> Self {
        let mut index = SchedIndex {
            free: free.to_vec(),
            reclaim: vec![0; free.len()],
            cheap: vec![0; free.len()],
            donors: vec![Vec::new(); free.len()],
            timeline: ReleaseTimeline::new(),
            free_gen: Vec::new(),
            avail_gen: Vec::new(),
            epoch: next_index_epoch(),
        };
        for r in running {
            if r.job.malleable {
                let spare = Self::spare(&r.job, r.alloc.cpus_per_node);
                let cheap = Self::cheap_spare(&r.job, r.alloc.cpus_per_node);
                for &n in &r.alloc.node_indices {
                    index.donors[n].push(r.alloc.job_id);
                    index.reclaim[n] += spare;
                    index.cheap[n] += cheap;
                }
            }
            index.timeline.add(
                r.alloc.job_id,
                &r.alloc.node_indices,
                r.alloc.cpus_per_node,
                r.expected_end_us,
            );
        }
        index
    }

    /// Free CPUs on each node.
    pub fn free(&self) -> &[usize] {
        &self.free
    }

    /// Reclaimable CPUs on each node: what the running malleable jobs there
    /// could give up before hitting the malleable policy's shrink bound.
    pub fn reclaim(&self) -> &[usize] {
        &self.reclaim
    }

    /// Zero-marginal-cost reclaimable CPUs on each node: the part of
    /// [`reclaim`](Self::reclaim) the donors' speedup curves price at zero
    /// (saturated tails). 0 everywhere on a curve-less cluster.
    pub fn cheap(&self) -> &[usize] {
        &self.cheap
    }

    /// Ids of the running malleable jobs holding CPUs on `node`, in start
    /// order.
    pub fn donors(&self, node: usize) -> &[u64] {
        &self.donors[node]
    }

    /// The end-time-ordered release timeline over the estimated completions.
    pub fn timeline(&self) -> &ReleaseTimeline {
        &self.timeline
    }

    /// Dirty generation of free-CPU width class `width`: bumped whenever any
    /// node's free count crosses up into ≥ `width`. Unchanged ⟹ the number
    /// of nodes with ≥ `width` free CPUs has not increased since it was read.
    pub fn free_gen(&self, width: usize) -> u64 {
        self.free_gen.get(width).copied().unwrap_or(0)
    }

    /// Dirty generation of availability (free + reclaimable) width class
    /// `width` — same contract as [`free_gen`](Self::free_gen).
    pub fn avail_gen(&self, width: usize) -> u64 {
        self.avail_gen.get(width).copied().unwrap_or(0)
    }

    /// Unique instance epoch — what lets a probe memo detect that the index
    /// it recorded against was rebuilt (fresh generations, all zero).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-job clamped spare width under the shrink bound.
    fn spare(job: &QueuedJob, width: usize) -> usize {
        width.saturating_sub(shrink_floor(job.min_cpus_per_node, job.cpus_per_node))
    }

    /// Per-job zero-marginal-cost part of [`spare`](Self::spare): what the
    /// job's curve says it can donate for free at `width`.
    fn cheap_spare(job: &QueuedJob, width: usize) -> usize {
        match &job.speedup {
            Some(curve) => curve.zero_cost_run(width, Self::spare(job, width)),
            None => 0,
        }
    }

    /// A job started on `node_indices` at `width` CPUs per node, with the
    /// driver's completion estimate (entered on the release timeline when
    /// `Some`).
    // PANIC: started allocations name nodes inside the driver's free vector.
    pub fn on_start(
        &mut self,
        job: &QueuedJob,
        node_indices: &[usize],
        width: usize,
        end_us: Option<TimeUs>,
    ) {
        let spare = Self::spare(job, width);
        let cheap = Self::cheap_spare(job, width);
        for &n in node_indices {
            self.free[n] -= width;
            if job.malleable {
                self.donors[n].push(job.id);
                self.reclaim[n] += spare;
                self.cheap[n] += cheap;
            }
        }
        // No generation bumps: a start lowers free CPUs, and lowers
        // availability too (the malleable spare it adds, `width − floor`,
        // never exceeds the `width` it takes), so no width-class count rises.
        self.timeline.add(job.id, node_indices, width, end_us);
    }

    /// A running job resized from `old_width` to `new_width` CPUs per node.
    // PANIC: resized allocations name nodes inside the driver's free vector.
    pub fn on_resize(
        &mut self,
        job: &QueuedJob,
        node_indices: &[usize],
        old_width: usize,
        new_width: usize,
    ) {
        let old_spare = Self::spare(job, old_width);
        let new_spare = Self::spare(job, new_width);
        let old_cheap = Self::cheap_spare(job, old_width);
        let new_cheap = Self::cheap_spare(job, new_width);
        for &n in node_indices {
            let old_free = self.free[n];
            let old_avail = old_free + self.reclaim[n];
            self.free[n] = self.free[n] + old_width - new_width;
            if job.malleable {
                self.reclaim[n] = self.reclaim[n] + new_spare - old_spare;
                self.cheap[n] = self.cheap[n] + new_cheap - old_cheap;
            }
            bump_gens(&mut self.free_gen, old_free, self.free[n]);
            bump_gens(
                &mut self.avail_gen,
                old_avail,
                self.free[n] + self.reclaim[n],
            );
        }
        // The release the timeline promises at the job's (unchanged) end
        // instant is the new width; the driver refreshes the estimate itself
        // afterwards via `on_estimate`.
        self.timeline
            .update_width(job.id, node_indices, old_width, new_width);
    }

    /// The driver refreshed a running job's completion estimate:
    /// re-keys its release (current allocation) to the new instant in place.
    pub fn on_estimate(
        &mut self,
        job_id: u64,
        node_indices: &[usize],
        width: usize,
        end_us: Option<TimeUs>,
    ) {
        self.timeline.set_end(job_id, node_indices, width, end_us);
    }

    /// A running job completed, releasing `width` CPUs on each of its nodes.
    // PANIC: completed allocations name nodes inside the driver's free vector.
    pub fn on_complete(&mut self, job: &QueuedJob, node_indices: &[usize], width: usize) {
        let spare = Self::spare(job, width);
        let cheap = Self::cheap_spare(job, width);
        for &n in node_indices {
            let old_free = self.free[n];
            let old_avail = old_free + self.reclaim[n];
            self.free[n] += width;
            if job.malleable {
                self.donors[n].retain(|&id| id != job.id);
                self.reclaim[n] -= spare;
                self.cheap[n] -= cheap;
            }
            bump_gens(&mut self.free_gen, old_free, self.free[n]);
            bump_gens(
                &mut self.avail_gen,
                old_avail,
                self.free[n] + self.reclaim[n],
            );
        }
        self.timeline.remove(job.id, node_indices, width);
    }
}

/// A cluster-wide scheduling policy: given the current state and queue, emit
/// the actions to take *now*. Called at every scheduling event (submission,
/// completion, explicit tick); must be deterministic for a given input.
pub trait SchedulerPolicy: Send {
    /// Short policy name used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Decides what to start/resize right now. Implementations must not
    /// assume their actions are applied — the scheduler validates them.
    fn schedule(
        &mut self,
        view: &ClusterView<'_>,
        queue: &[QueuedJob],
        now_us: TimeUs,
    ) -> Vec<SchedulerAction>;
}

/// Queue order shared by all built-in policies: priority (desc), submission
/// time, id.
///
/// This is the **reference sort**: it collects and sorts a fresh
/// `Vec<&QueuedJob>` on every call, O(queue log queue) per pass. The
/// production policies walk the driver's maintained [`AdmissionOrder`]
/// instead (via [`admission_iter`]); the scan references and hand-built
/// views keep this one so the two stay differentially testable.
// ALLOC(pass): O(queue) admission ordering; the trusted incremental index
// order is borrowed instead when the view carries one.
fn queue_order(queue: &[QueuedJob]) -> Vec<&QueuedJob> {
    let mut ordered: Vec<&QueuedJob> = queue.iter().collect();
    ordered.sort_by_key(|j| (std::cmp::Reverse(j.priority), j.submit_us, j.id));
    ordered
}

/// The admission key: priority (desc), submission time, id — identical to
/// the `queue_order` sort key. The id component makes the key total and
/// unique per job, so the ordered map below never collides.
type AdmissionKey = (std::cmp::Reverse<u32>, TimeUs, u64);

fn admission_key(job: &QueuedJob) -> AdmissionKey {
    (std::cmp::Reverse(job.priority), job.submit_us, job.id)
}

/// Incrementally maintained admission order over the waiting queue:
/// an ordered map from `queue_order`'s exact sort key —
/// `(Reverse(priority), submit_us, id)` — to the job's position in the
/// driver's queue vector.
///
/// The key of a waiting job is invariant between submission and
/// admission/requeue (priority and submit time never change while it
/// waits), so the order is maintained in O(log queue) per queue **event**
/// (submit / admitted start / requeue) and a scheduling pass never pays the
/// O(queue log queue) re-sort: it walks [`positions`](Self::positions) —
/// exactly the `queue_order` sequence. The mapped positions let the
/// driver store its queue as an unordered `Vec` (and remove admitted jobs
/// with a `swap_remove` + one [`set_pos`](Self::set_pos) fixup).
///
/// [`PolicyScheduler`](crate::PolicyScheduler) owns one next to its
/// [`SchedIndex`] and hands it to policies through
/// [`ClusterView::order`]; policies trust it only when its size matches the
/// queue (see `trusted_order`), falling back to the reference sort
/// otherwise, so hand-built views keep byte-identical decisions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionOrder {
    by_key: BTreeMap<AdmissionKey, usize>,
    key_by_id: HashMap<u64, AdmissionKey>,
}

impl AdmissionOrder {
    /// An empty order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked jobs.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// `true` when no job is tracked.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Tracks `job`, stored at position `pos` of the driver's queue vector.
    ///
    /// Re-inserting an id drops its stale entry first, leaving the two maps
    /// out of step with a queue that still holds both copies — which the
    /// size-based trust check then rejects, so a corrupt driver degrades to
    /// the reference sort instead of a wrong order.
    pub fn insert(&mut self, job: &QueuedJob, pos: usize) {
        let key = admission_key(job);
        if let Some(stale) = self.key_by_id.insert(job.id, key) {
            self.by_key.remove(&stale);
        }
        self.by_key.insert(key, pos);
    }

    /// Stops tracking `job_id`, returning the queue position it mapped to.
    pub fn remove(&mut self, job_id: u64) -> Option<usize> {
        let key = self.key_by_id.remove(&job_id)?;
        self.by_key.remove(&key)
    }

    /// Records that `job_id` now lives at `pos` of the queue vector (the
    /// `swap_remove` fixup for the job moved into the freed hole).
    pub fn set_pos(&mut self, job_id: u64, pos: usize) {
        if let Some(key) = self.key_by_id.get(&job_id) {
            if let Some(p) = self.by_key.get_mut(key) {
                *p = pos;
            }
        }
    }

    /// The queue position of `job_id`, when tracked.
    pub fn position_of(&self, job_id: u64) -> Option<usize> {
        self.by_key.get(self.key_by_id.get(&job_id)?).copied()
    }

    /// Queue positions in admission order — the `queue_order` sequence
    /// without the sort.
    pub fn positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.by_key.values().copied()
    }
}

/// The driver's maintained admission order, when the view carries one whose
/// size matches the queue (a mismatch means it belongs to some other queue
/// state — or an id collision corrupted it — and must be ignored). The
/// debug oracle checks the maintained sequence against the reference sort
/// job by job.
fn trusted_order<'a>(view: &ClusterView<'a>, queue: &[QueuedJob]) -> Option<&'a AdmissionOrder> {
    let order = view
        .order
        .filter(|o| o.by_key.len() == queue.len() && o.key_by_id.len() == queue.len())?;
    debug_assert!(
        order
            .by_key
            .iter()
            .zip(queue_order(queue))
            .all(|((&(_, _, id), &pos), expected)| {
                expected.id == id && queue.get(pos).is_some_and(|j| j.id == id)
            }),
        "maintained admission order diverged from the reference sort"
    );
    Some(order)
}

/// The admission-order walk of one scheduling pass: the maintained
/// [`AdmissionOrder`] when the view carries a trusted one (no allocation,
/// no sort), the `queue_order` reference sort otherwise. Either way the
/// jobs come out in exactly the `(Reverse(priority), submit_us, id)`
/// sequence.
enum AdmissionIter<'q, 'a> {
    Indexed(
        std::collections::btree_map::Values<'a, AdmissionKey, usize>,
        &'q [QueuedJob],
    ),
    Sorted(std::vec::IntoIter<&'q QueuedJob>),
}

impl<'q> Iterator for AdmissionIter<'q, '_> {
    type Item = &'q QueuedJob;

    // PANIC: indexed positions come from the admission order built over this
    // exact queue.
    fn next(&mut self) -> Option<&'q QueuedJob> {
        match self {
            AdmissionIter::Indexed(positions, queue) => positions.next().map(|&pos| &queue[pos]),
            AdmissionIter::Sorted(ordered) => ordered.next(),
        }
    }
}

fn admission_iter<'q, 'a>(view: &ClusterView<'a>, queue: &'q [QueuedJob]) -> AdmissionIter<'q, 'a> {
    match trusted_order(view, queue) {
        Some(order) => AdmissionIter::Indexed(order.by_key.values(), queue),
        None => AdmissionIter::Sorted(queue_order(queue).into_iter()),
    }
}

/// One allocation holding CPUs until an (optionally) estimated end time —
/// the input of the reservation forecast shared by backfill and malleable.
struct Holder<'a> {
    end_us: Option<TimeUs>,
    node_indices: &'a [usize],
    width: usize,
}

/// Earliest time ≥ `now_us` at which a `nodes × width` allocation fits,
/// replaying the holders' expected releases onto a copy of `free`. Returns
/// the time and the node set; `None` when the fit is never provable (a
/// holder on needed CPUs has no completion estimate).
///
/// This is the **reference replay**: it re-sorts the holders and probes a
/// first-fit per candidate instant, O(holders log holders + candidates ×
/// nodes) per forecast. The production forecast is
/// [`earliest_timeline_fit`], which walks a maintained [`ReleaseTimeline`]
/// instead; [`MalleableScanPolicy`] and the oracle tests keep this one so
/// the two stay differentially testable.
// ALLOC(pass): O(nodes) scratch free vector per reservation probe.
// PANIC: timeline deltas index nodes within the scratch vector they were
// recorded for; the eligibility count is exact before `fit_first` runs.
fn earliest_release_fit(
    nodes: usize,
    width: usize,
    free: &[usize],
    holders: &[Holder<'_>],
    now_us: TimeUs,
) -> Option<(TimeUs, Vec<usize>)> {
    if let Some(found) = fit_first(free, nodes, width) {
        return Some((now_us, found));
    }
    // Walk the holders once in end order, releasing each exactly when the
    // replay clock passes its estimate; candidate fit instants are the
    // distinct future ends. Holders whose estimate is already overdue
    // (end ≤ now) release at the first future candidate, like the full
    // replay did.
    let mut by_end: Vec<&Holder<'_>> = holders.iter().filter(|h| h.end_us.is_some()).collect();
    by_end.sort_by_key(|h| h.end_us);
    let mut free_at = free.to_vec();
    let mut i = 0;
    while i < by_end.len() {
        let t = by_end[i].end_us.expect("filtered to estimated holders");
        while i < by_end.len() && by_end[i].end_us.is_some_and(|e| e <= t) {
            for &n in by_end[i].node_indices {
                free_at[n] += by_end[i].width;
            }
            i += 1;
        }
        if t <= now_us {
            continue; // overdue estimate: not a candidate start instant
        }
        if let Some(found) = fit_first(&free_at, nodes, width) {
            return Some((t, found));
        }
    }
    None
}

/// One pass-local adjustment layered over a base [`ReleaseTimeline`] during
/// a forecast walk: at `end_us`, each node of `node_indices` releases
/// `delta` more (new starts of this pass, `+width`) or fewer (victims this
/// pass shrank, `width − original_width` ≤ 0) CPUs than the base promises.
struct TimelineDelta<'a> {
    end_us: TimeUs,
    node_indices: &'a [usize],
    delta: i64,
}

/// Earliest time ≥ `now_us` at which a `nodes × width` allocation fits:
/// the [`earliest_release_fit`] forecast computed by walking a maintained
/// [`ReleaseTimeline`] (plus a sorted pass-local `overlay`) with a running
/// count of nodes at ≥ `width` free CPUs, instead of sorting the holders
/// and probing a first-fit per candidate instant.
///
/// Decision equivalence with the replay, instant by instant: the candidate
/// instants are the distinct estimated ends (base keys ∪ overlay ends —
/// exactly the estimated holders' ends); all deltas at one instant apply
/// before it is probed (the replay's equal-end grouping); instants ≤
/// `now_us` release without becoming candidates (overdue estimates); and a
/// first-fit at `width` succeeds **iff** at least `nodes` nodes carry ≥
/// `width` free CPUs — so the count crossing the threshold at a future
/// instant is exactly the replay's first successful probe, and placement is
/// computed once, there. Base deltas apply before overlay deltas within an
/// instant: a shrunk victim's negative overlay correction lands on top of
/// the base release it corrects, so the running free count never
/// underflows. O(nodes + total deltas) per forecast.
// ALLOC(pass): O(nodes) scratch free vector per timeline probe.
// PANIC: timeline deltas index nodes within the scratch vector they were
// recorded for; the eligibility count is exact before `fit_first` runs.
fn earliest_timeline_fit(
    nodes: usize,
    width: usize,
    free: &[usize],
    timeline: &ReleaseTimeline,
    overlay: &[TimelineDelta<'_>],
    now_us: TimeUs,
) -> Option<(TimeUs, Vec<usize>)> {
    if nodes == 0 {
        return None; // a zero-node fit is never satisfied, like fit_first
    }
    let mut eligible = free.iter().filter(|&&f| f >= width).count();
    if eligible >= nodes {
        let found = fit_first(free, nodes, width).expect("eligible count is exact");
        return Some((now_us, found));
    }
    let mut free_at = free.to_vec();
    let raise = |free_at: &mut [usize], eligible: &mut usize, n: usize, delta: i64| {
        let was = free_at[n] >= width;
        free_at[n] = (free_at[n] as i64 + delta) as usize;
        match (was, free_at[n] >= width) {
            (false, true) => *eligible += 1,
            (true, false) => *eligible -= 1,
            _ => {}
        }
    };
    let mut base = timeline.by_end.iter().peekable();
    let mut over = overlay.iter().peekable();
    loop {
        let t = match (base.peek(), over.peek()) {
            (None, None) => return None,
            (Some((&bt, _)), None) => bt,
            (None, Some(o)) => o.end_us,
            (Some((&bt, _)), Some(o)) => bt.min(o.end_us),
        };
        if let Some((&bt, deltas)) = base.peek() {
            if bt == t {
                for (&n, &w) in deltas.iter() {
                    raise(&mut free_at, &mut eligible, n, w as i64);
                }
                base.next();
            }
        }
        while let Some(o) = over.peek() {
            if o.end_us != t {
                break;
            }
            for &n in o.node_indices {
                raise(&mut free_at, &mut eligible, n, o.delta);
            }
            over.next();
        }
        if t > now_us && eligible >= nodes {
            let found = fit_first(&free_at, nodes, width).expect("eligible count is exact");
            return Some((t, found));
        }
    }
}

/// A one-shot [`ReleaseTimeline`] over `running` — the fallback when the
/// view carries no trustworthy driver index (hand-built views). The walk
/// code is shared, so decisions are identical either way.
fn timeline_from_running(running: &[RunningJob]) -> ReleaseTimeline {
    let mut timeline = ReleaseTimeline::new();
    for r in running {
        timeline.add(
            r.alloc.job_id,
            &r.alloc.node_indices,
            r.alloc.cpus_per_node,
            r.expected_end_us,
        );
    }
    timeline
}

/// The driver's event-maintained index, when the view carries one that
/// matches the view's free vector (a mismatch means the index belongs to
/// some other state and must be ignored). Shared trust guard of every
/// indexed policy path; the debug oracle re-derives the whole index — the
/// release timeline included — from the running set.
fn trusted_index<'a>(view: &ClusterView<'a>) -> Option<&'a SchedIndex> {
    let index = view.index.filter(|i| i.free() == view.free)?;
    debug_assert_eq!(
        *index,
        SchedIndex::rebuild(view.free, view.running),
        "event-maintained index diverged from the running set"
    );
    Some(index)
}

/// How a policy treats its probe memo — the dirty-tracked re-probe skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Probing {
    /// Production: skip re-probing a waiting job whose recorded failure
    /// signature is provably still valid (no width class it needs gained
    /// nodes since the probe failed).
    #[default]
    DirtyTracked,
    /// Conservative mode: never skip a probe. The byte-identical replay
    /// surface the differential battery compares against.
    AlwaysProbe,
    /// TEST ONLY — the "missed release" hazard: trust any recorded
    /// signature, ignoring the generations entirely.
    #[cfg(test)]
    UnsoundStaleSkip,
    /// TEST ONLY — the "widened skip" hazard (backfill): on a memo-valid
    /// blocked head, keep admitting FCFS followers instead of stopping,
    /// letting a later candidate leapfrog the head without the
    /// end-before-reservation proof.
    #[cfg(test)]
    UnsoundSkipContinues,
}

/// One recorded probe failure: the dirty generations of the width classes
/// whose node counts proved the job could not start. Valid (skippable)
/// while those generations are unchanged — no node has crossed up into a
/// class the job needs, so the counts cannot have grown and the failure
/// still holds.
#[derive(Debug, Clone, Copy)]
struct ProbeSig {
    /// [`SchedIndex::free_gen`] at the job's request width when the
    /// count-proven fit failure was recorded.
    fit_gen: u64,
    /// [`SchedIndex::avail_gen`] at the job's shrink floor when the
    /// count-proven shrink-admission failure was recorded (malleable pass
    /// only; `None` for first-fit/backfill signatures).
    avail_gen: Option<u64>,
}

/// Fibonacci-mix hasher for the probe memo's job-id keys. The memo is
/// consulted once per waiting job per pass, so on a deep queue the default
/// SipHash costs more than the histogram-guarded probe the memo exists to
/// skip; one multiply plus an xor-shift (to feed the table's low bucket
/// bits) is collision-adequate for sequential ids at a fraction of the
/// cost.
#[derive(Clone, Default)]
struct JobIdHasher(u64);

impl std::hash::Hasher for JobIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let h = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type JobIdBuildHasher = std::hash::BuildHasherDefault<JobIdHasher>;

/// Per-policy memo of the waiting jobs' last failed probes, keyed by job id.
/// Sound only against the index instance it recorded from — `sync_epoch`
/// clears it when the driver's index was rebuilt.
#[derive(Debug, Clone, Default)]
struct ProbeMemo {
    epoch: u64,
    sigs: HashMap<u64, ProbeSig, JobIdBuildHasher>,
}

impl ProbeMemo {
    /// Drops every signature when `epoch` is not the one they were recorded
    /// against (a fresh index has fresh, all-zero generations that must not
    /// validate old signatures).
    fn sync_epoch(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.sigs.clear();
        }
    }

    fn record(&mut self, job_id: u64, fit_gen: u64, avail_gen: Option<u64>) {
        self.sigs.insert(job_id, ProbeSig { fit_gen, avail_gen });
    }

    fn forget(&mut self, job_id: u64) {
        self.sigs.remove(&job_id);
    }

    /// `true` when `job`'s recorded probe failure is provably still valid:
    /// a signature exists, the free generation at its request width is
    /// unchanged, no pass-local shrink raised free CPUs into that class
    /// (`raised`, the malleable pass's in-pass counters), and — for a
    /// malleable signature — the availability generation at its shrink
    /// floor is unchanged too.
    fn still_blocked(
        &self,
        job: &QueuedJob,
        index: &SchedIndex,
        raised: Option<&[u64]>,
        ignore_gens: bool,
    ) -> bool {
        let Some(sig) = self.sigs.get(&job.id) else {
            return false;
        };
        if ignore_gens {
            return true; // TEST ONLY: the unsound stale-skip hazard
        }
        if index.free_gen(job.cpus_per_node) != sig.fit_gen {
            return false;
        }
        if raised.is_some_and(|r| r.get(job.cpus_per_node).copied().unwrap_or(0) != 0) {
            return false;
        }
        match sig.avail_gen {
            None => true,
            Some(gen) => {
                let floor = shrink_floor(job.min_cpus_per_node, job.cpus_per_node);
                index.avail_gen(floor) == gen
            }
        }
    }
}

/// Exact per-value histogram over a bounded CPU-count vector (free CPUs, or
/// free + reclaimable; both are ≤ the node capacity): `counts[v]` nodes
/// currently carry value `v`. [`count_ge`](Self::count_ge) answers "how many
/// nodes offer at least `w`" in O(node capacity) — the O(1)-per-node-count
/// admission guard that lets a scheduling pass reject a doomed fit or
/// shrink probe without an O(nodes) scan. The guard is exact in the reject
/// direction (a first-fit at `width` succeeds iff ≥ `nodes` nodes qualify),
/// so skipping the scan never changes a decision.
#[derive(Clone)]
struct FreeHist {
    counts: Vec<usize>,
}

impl FreeHist {
    /// Histogram of `values` (each ≤ `cap`), counting only nodes where
    /// `tracked` holds.
    // ALLOC(pass): bucket vector sized by the node-CPU cap, once per memo.
    // PANIC: every tracked value is ≤ cap by the caller contract.
    fn new(values: &[usize], cap: usize, tracked: impl Fn(usize) -> bool) -> Self {
        let mut counts = vec![0; cap + 1];
        for (n, &v) in values.iter().enumerate() {
            if tracked(n) {
                counts[v] += 1;
            }
        }
        FreeHist { counts }
    }

    /// Number of tracked nodes with value ≥ `v` (0 when `v` exceeds the
    /// capacity bound).
    fn count_ge(&self, v: usize) -> usize {
        self.counts.get(v..).map_or(0, |tail| tail.iter().sum())
    }

    /// A tracked node's value changed from `old` to `new`.
    // PANIC: old/new widths stay within the cap the histogram was sized with.
    fn update(&mut self, old: usize, new: usize) {
        self.counts[old] -= 1;
        self.counts[new] += 1;
    }
}

/// First-fit placement: the first `nodes` nodes (in index order) with at
/// least `width` free CPUs. Two passes — find the last needed node first,
/// then collect — so a failed probe performs no allocation at all (the
/// malleable pass probes far more often than it places).
// ALLOC(pass): the result vector, sized to the requested node count.
// PANIC: scans indices below `free.len()`.
fn fit_first(free: &[usize], nodes: usize, width: usize) -> Option<Vec<usize>> {
    if nodes == 0 {
        return None;
    }
    let mut seen = 0;
    let mut last = 0;
    for (idx, &f) in free.iter().enumerate() {
        if f >= width {
            seen += 1;
            if seen == nodes {
                last = idx;
                break;
            }
        }
    }
    if seen < nodes {
        return None;
    }
    let mut selected = Vec::with_capacity(nodes);
    for (idx, &f) in free[..=last].iter().enumerate() {
        if f >= width {
            selected.push(idx);
        }
    }
    Some(selected)
}

/// The baseline: FCFS order, first-fit placement, head-of-line blocking.
///
/// This is the unmodified-controller behaviour of the paper's Section 5
/// lifted to CPU granularity: a job starts only at its full request width,
/// and a blocked head job blocks everything behind it.
///
/// The pass walks the maintained [`AdmissionOrder`] (no queue sort) and
/// keeps a `ProbeMemo`: when the head's fit failure was count-proven
/// (`fit_first` fails iff fewer than `nodes` nodes carry ≥ `width` free
/// CPUs) and the free generation of its width class is unchanged, the pass
/// ends without re-probing — head-of-line blocking means a still-blocked
/// head blocks exactly as before, so the skip is decision-identical.
#[derive(Debug, Default, Clone)]
pub struct FirstFitPolicy {
    probing: Probing,
    memo: ProbeMemo,
}

impl FirstFitPolicy {
    /// The conservative variant that never skips a probe — the
    /// byte-identical differential surface for the dirty-tracked default.
    pub fn always_probe() -> Self {
        FirstFitPolicy {
            probing: Probing::AlwaysProbe,
            memo: ProbeMemo::default(),
        }
    }

    /// TEST ONLY: trusts stale signatures (hazard: a missed release).
    #[cfg(test)]
    fn unsound_stale_skip() -> Self {
        FirstFitPolicy {
            probing: Probing::UnsoundStaleSkip,
            memo: ProbeMemo::default(),
        }
    }
}

impl SchedulerPolicy for FirstFitPolicy {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    // ALLOC(pass): one candidate node vector per admission attempt.
    // PANIC: fit results index the view's free vector.
    fn schedule(
        &mut self,
        view: &ClusterView<'_>,
        queue: &[QueuedJob],
        _now_us: TimeUs,
    ) -> Vec<SchedulerAction> {
        let memo_ix = match self.probing {
            Probing::AlwaysProbe => None,
            _ => trusted_index(view),
        };
        if let Some(index) = memo_ix {
            self.memo.sync_epoch(index.epoch());
        }
        #[cfg(test)]
        let ignore_gens = matches!(self.probing, Probing::UnsoundStaleSkip);
        #[cfg(not(test))]
        let ignore_gens = false;
        // Borrowed until the first start: a fully blocked pass (the common
        // case under load) allocates nothing at all.
        let mut free: Cow<'_, [usize]> = Cow::Borrowed(view.free);
        let mut actions = Vec::new();
        for job in admission_iter(view, queue) {
            if let Some(index) = memo_ix {
                if self.memo.still_blocked(job, index, None, ignore_gens) {
                    break; // provably still the blocked head
                }
            }
            match fit_first(&free, job.nodes, job.cpus_per_node) {
                Some(node_indices) => {
                    let free = free.to_mut();
                    for &idx in &node_indices {
                        free[idx] -= job.cpus_per_node;
                    }
                    if memo_ix.is_some() {
                        self.memo.forget(job.id);
                    }
                    actions.push(SchedulerAction::Start {
                        job_id: job.id,
                        node_indices,
                        cpus_per_node: job.cpus_per_node,
                    });
                }
                None => {
                    if let Some(index) = memo_ix {
                        // The failure is count-proven (fit_first is exact),
                        // and this pass's own starts only lowered free CPUs,
                        // so the recorded generation over-approximates the
                        // blocked state — sound to skip on while unchanged.
                        self.memo
                            .record(job.id, index.free_gen(job.cpus_per_node), None);
                    }
                    break;
                }
            }
        }
        actions
    }
}

/// Conservative EASY-style backfill.
///
/// Jobs start in FCFS order at full width. When the head job does not fit,
/// its start is *reserved* at the earliest instant enough CPUs free up
/// (using the running jobs' expected completion times), and later queued
/// jobs may start out of order only when they declare a time limit and are
/// guaranteed to finish before that reservation — so the head job is never
/// delayed. If any running job on the needed CPUs has no completion
/// estimate, no reservation exists and nothing is backfilled.
///
/// The pass walks the maintained [`AdmissionOrder`] (no queue sort) and
/// keeps a `ProbeMemo` over count-proven fit failures: a memo-valid FCFS
/// job ends the FCFS phase exactly like a re-probed failure would (it
/// becomes the reserved head — never leapfrogged, because the reservation
/// and the end-before-it guarantee are recomputed every pass), and a
/// memo-valid backfill candidate is passed over exactly like its re-probed
/// count failure would be.
#[derive(Debug, Default, Clone)]
pub struct BackfillPolicy {
    probing: Probing,
    memo: ProbeMemo,
}

impl BackfillPolicy {
    /// The conservative variant that never skips a probe — the
    /// byte-identical differential surface for the dirty-tracked default.
    pub fn always_probe() -> Self {
        BackfillPolicy {
            probing: Probing::AlwaysProbe,
            memo: ProbeMemo::default(),
        }
    }

    /// TEST ONLY: on a memo-valid blocked head, keeps admitting followers
    /// (hazard: a stale-signature candidate leapfrogs the EASY head).
    #[cfg(test)]
    fn unsound_skip_continues() -> Self {
        BackfillPolicy {
            probing: Probing::UnsoundSkipContinues,
            memo: ProbeMemo::default(),
        }
    }
}

impl SchedulerPolicy for BackfillPolicy {
    fn name(&self) -> &'static str {
        "backfill"
    }

    // ALLOC(pass): backfill working set — queue order, shadow free vector and
    // reservation mask are rebuilt per pass.
    // PANIC: reservation and fit indices stay within the shadow free vector.
    fn schedule(
        &mut self,
        view: &ClusterView<'_>,
        queue: &[QueuedJob],
        now_us: TimeUs,
    ) -> Vec<SchedulerAction> {
        let memo_ix = match self.probing {
            Probing::AlwaysProbe => None,
            _ => trusted_index(view),
        };
        if let Some(index) = memo_ix {
            self.memo.sync_epoch(index.epoch());
        }
        #[cfg(test)]
        let ignore_gens = matches!(self.probing, Probing::UnsoundStaleSkip);
        #[cfg(not(test))]
        let ignore_gens = false;
        #[cfg(test)]
        let continue_past_head = matches!(self.probing, Probing::UnsoundSkipContinues);
        #[cfg(not(test))]
        let continue_past_head = false;
        let mut free = view.free.to_vec();
        // Exact per-pass reject guard: a fit at `width` exists iff enough
        // nodes carry ≥ `width` free CPUs, so a failed count skips the
        // O(nodes) probe without changing any decision.
        let mut hist = FreeHist::new(&free, view.node_cpus, |_| true);
        let mut actions = Vec::new();
        // Only the jobs this very call starts are tracked here — the running
        // jobs' releases come off the release timeline below, so the pass no
        // longer clones every running allocation up front.
        let mut started: Vec<(Option<TimeUs>, Vec<usize>, usize)> = Vec::new();
        let start = |job: &QueuedJob,
                     node_indices: Vec<usize>,
                     free: &mut [usize],
                     hist: &mut FreeHist,
                     actions: &mut Vec<SchedulerAction>,
                     started: &mut Vec<(Option<TimeUs>, Vec<usize>, usize)>| {
            for &idx in &node_indices {
                hist.update(free[idx], free[idx] - job.cpus_per_node);
                free[idx] -= job.cpus_per_node;
            }
            started.push((
                job.expected_duration_us.map(|d| now_us.saturating_add(d)),
                node_indices.clone(),
                job.cpus_per_node,
            ));
            actions.push(SchedulerAction::Start {
                job_id: job.id,
                node_indices,
                cpus_per_node: job.cpus_per_node,
            });
        };
        let mut ordered = admission_iter(view, queue);
        let mut head = None;
        for job in ordered.by_ref() {
            if let Some(index) = memo_ix {
                if self.memo.still_blocked(job, index, None, ignore_gens) {
                    if continue_past_head {
                        continue; // TEST ONLY: the widened-skip hazard
                    }
                    head = Some(job); // still blocked: FCFS phase ends here
                    break;
                }
            }
            let fit = if hist.count_ge(job.cpus_per_node) >= job.nodes {
                fit_first(&free, job.nodes, job.cpus_per_node)
            } else {
                None
            };
            match fit {
                Some(node_indices) => {
                    if memo_ix.is_some() {
                        self.memo.forget(job.id);
                    }
                    start(
                        job,
                        node_indices,
                        &mut free,
                        &mut hist,
                        &mut actions,
                        &mut started,
                    );
                }
                None => {
                    if let Some(index) = memo_ix {
                        // Count-proven: the guard and fit_first agree
                        // exactly, and this pass only lowered free CPUs.
                        self.memo
                            .record(job.id, index.free_gen(job.cpus_per_node), None);
                    }
                    head = Some(job);
                    break;
                }
            }
        }
        let Some(head) = head else {
            return actions;
        };
        // Reserve the head job's start at the earliest provable fit: walk
        // the maintained release timeline (or a one-shot rebuild for
        // hand-built views) overlaid with this pass's own starts.
        let one_shot;
        let timeline = match trusted_index(view) {
            Some(index) => index.timeline(),
            None => {
                one_shot = timeline_from_running(view.running);
                &one_shot
            }
        };
        let mut overlay: Vec<TimelineDelta<'_>> = started
            .iter()
            .filter_map(|(end, node_indices, width)| {
                end.map(|end_us| TimelineDelta {
                    end_us,
                    node_indices,
                    delta: *width as i64,
                })
            })
            .collect();
        overlay.sort_by_key(|d| d.end_us);
        let Some((reservation_us, _)) = earliest_timeline_fit(
            head.nodes,
            head.cpus_per_node,
            &free,
            timeline,
            &overlay,
            now_us,
        ) else {
            return actions; // no provable reservation: nothing may jump
        };
        for job in ordered {
            let Some(duration) = job.expected_duration_us else {
                continue; // no limit declared: could delay the reservation
            };
            if now_us.saturating_add(duration) > reservation_us {
                continue;
            }
            // The memo check sits behind the per-pass duration/window tests
            // (those depend on the reservation, recomputed every pass, and
            // cannot be memoized) and replaces only the count/fit probe — a
            // memo-valid candidate is passed over exactly like a re-probed
            // count failure, so the outcome is identical either way.
            if let Some(index) = memo_ix {
                if self.memo.still_blocked(job, index, None, ignore_gens) {
                    continue;
                }
            }
            if hist.count_ge(job.cpus_per_node) < job.nodes {
                if let Some(index) = memo_ix {
                    self.memo
                        .record(job.id, index.free_gen(job.cpus_per_node), None);
                }
                continue; // exact reject: no fit exists, skip the probe
            }
            if let Some(node_indices) = fit_first(&free, job.nodes, job.cpus_per_node) {
                if memo_ix.is_some() {
                    self.memo.forget(job.id);
                }
                start(
                    job,
                    node_indices,
                    &mut free,
                    &mut hist,
                    &mut actions,
                    &mut started,
                );
            }
        }
        actions
    }
}

/// The DROM-enabled malleable policy: shrink running jobs to admit queued
/// work, drain nodes for jobs that cannot be admitted by shrinking, and
/// re-expand shrunk jobs when CPUs free up.
///
/// Admission is FCFS. A queued job starts at full width when it fits; when
/// it does not, the policy picks the nodes with the most *available* CPUs
/// (free plus what running malleable jobs could give up), shrinks victims
/// greedily — cheapest marginal rate loss per reclaimed CPU first, per the
/// donors' [`SpeedupCurve`]s, so a saturated job donates before one whose
/// CPUs still carry throughput — and starts the job at the widest per-node
/// width the selection supports. Three bounds keep this healthy:
///
/// * **Shrink depth**: no job is ever pushed below half its request (nor
///   below its declared floor). Unbounded shrink-to-admit degenerates into
///   deep time-sharing that fragments the cluster and hurts every metric —
///   the bound is the paper's two-jobs-per-node equipartition generalised
///   to a width rule (measured in `docs/scheduling.md`).
/// * **Shrink economics**: an admission that requires shrinking proceeds
///   only when the newcomer's relative rate gain covers the donors'
///   aggregate relative rate loss (both normalised so one linear CPU is
///   worth [`SpeedupCurve::FP`]); otherwise the shrinks are rolled back and
///   the job waits for a drain reservation instead. A curve-less cluster
///   never fails the check — every donated CPU costs exactly what an
///   admitted CPU gains — so linear traces replay the pre-curve policy
///   byte for byte.
/// * **Head reservation**: when even shrinking cannot admit the head job
///   (typically a rigid or cluster-wide one), the policy reserves the nodes
///   that drain soonest — no later start and no expansion may touch them
///   unless it provably completes before the reservation — and keeps
///   admitting queue followers on the rest of the cluster. Without the
///   drain, a malleable-packed cluster never again offers a fully idle
///   node and rigid jobs starve behind it.
///
/// After admissions, every unsaturated malleable job running below its
/// request is expanded into the remaining (non-reserved) free CPUs, one CPU
/// per node per sweep — steepest marginal gain first within a sweep, and
/// jobs whose curve is flat at their current width are skipped entirely
/// (free CPUs are never wasted on a saturated job). This is how jobs regain
/// their CPUs when a co-runner completes.
///
/// # Complexity
///
/// The pass runs over indexed state (`PassState`, seeded from the driver's
/// event-maintained [`SchedIndex`]): victim selection reads the per-node
/// donor list, availability reads the per-node free + reclaimable summary,
/// and the one reservation mask of the pass is shared by every admission
/// attempt. One pass is O(running + queue × nodes) instead of the reference
/// scan's O(queue × nodes × running) — see [`MalleableScanPolicy`] and
/// `docs/scheduling.md` for the measured difference.
#[derive(Debug, Clone)]
pub struct MalleablePolicy {
    /// Fixed-point tolerance on the shrink-economics gate
    /// ([`SpeedupCurve::FP`] = 1.0): a shrinking admission is kept when
    /// `gain × tolerance ≥ loss`. The default, exactly `FP`, reduces to the
    /// strict `gain ≥ loss` rule; a larger tolerance trades aggregate
    /// throughput for admitting (and thus responding to) more jobs sooner.
    loss_tolerance_fp: u64,
    probing: Probing,
    memo: ProbeMemo,
}

impl Default for MalleablePolicy {
    fn default() -> Self {
        MalleablePolicy {
            loss_tolerance_fp: SpeedupCurve::FP,
            probing: Probing::DirtyTracked,
            memo: ProbeMemo::default(),
        }
    }
}

impl MalleablePolicy {
    /// A policy whose shrink-economics gate accepts up to
    /// `tolerance_fp / FP` of relative-rate loss per unit of admission gain.
    /// `with_loss_tolerance(SpeedupCurve::FP)` is exactly the default gate.
    pub fn with_loss_tolerance(tolerance_fp: u64) -> Self {
        MalleablePolicy {
            loss_tolerance_fp: tolerance_fp,
            ..Self::default()
        }
    }

    /// The conservative variant that never skips a probe — the
    /// byte-identical differential surface for the dirty-tracked default.
    pub fn always_probe() -> Self {
        MalleablePolicy {
            probing: Probing::AlwaysProbe,
            ..Self::default()
        }
    }

    /// TEST ONLY: trusts stale signatures (hazard: a missed release).
    #[cfg(test)]
    fn unsound_stale_skip() -> Self {
        MalleablePolicy {
            probing: Probing::UnsoundStaleSkip,
            ..Self::default()
        }
    }
}

/// The width below which the malleable policy will not push a job: its
/// declared floor, but never less than half its request.
fn shrink_floor(declared_floor: usize, request: usize) -> usize {
    declared_floor.max(request.div_ceil(2)).max(1)
}

/// Mutable working copy of one running (or newly started) job during a
/// [`MalleablePolicy::schedule`] pass. Borrows the job's speedup curve so
/// both malleable implementations price donations and expansions through
/// the exact same helpers — decision equivalence by construction. Node sets
/// are borrowed from the view for already-running jobs (a pass never moves
/// a job between nodes, and cloning ~running Vecs per pass dominated the
/// seeding cost at 1024+ nodes) and owned only for jobs started this pass.
struct Slot<'a> {
    job_id: u64,
    node_indices: Cow<'a, [usize]>,
    width: usize,
    original_width: Option<usize>, // None for jobs started this pass
    floor: usize,
    request: usize,
    malleable: bool,
    expected_end_us: Option<TimeUs>,
    speedup: Option<&'a SpeedupCurve>,
    /// `true` once the pass reserved a node this job overlaps (cached so the
    /// indexed pass never re-scans `node_indices` per candidate victim).
    reserved_overlap: bool,
}

impl Slot<'_> {
    // PANIC: reservation masks are node-count sized like every per-node vector.
    fn on_reserved(&self, reserved: Option<&[bool]>) -> bool {
        reserved.is_some_and(|r| self.node_indices.iter().any(|&n| r[n]))
    }

    fn shrink_floor(&self) -> usize {
        shrink_floor(self.floor, self.request)
    }

    /// CPUs per node above the shrink floor.
    fn spare(&self) -> usize {
        self.width.saturating_sub(self.shrink_floor())
    }

    /// Relative marginal cost of the next CPU this slot would donate —
    /// [`SpeedupCurve::FP`] exactly for a curve-less linear job.
    fn donor_cost(&self) -> u64 {
        match self.speedup {
            Some(curve) => curve.relative_marginal_cost(self.width),
            None => SpeedupCurve::FP,
        }
    }

    /// CPUs this slot donates per carve-out step: the equal-marginal run
    /// under its shrink floor (all of its spare for a linear job, so the
    /// curve-less donation chunks are unchanged).
    fn donor_run(&self) -> usize {
        match self.speedup {
            Some(curve) => curve.equal_cost_run(self.width, self.spare()),
            None => self.spare(),
        }
    }

    /// CPUs this slot could give up without losing any throughput.
    fn zero_cost_spare(&self) -> usize {
        match self.speedup {
            Some(curve) => curve.zero_cost_run(self.width, self.spare()),
            None => 0,
        }
    }

    /// Relative marginal gain of one more CPU per node —
    /// [`SpeedupCurve::FP`] for a curve-less linear job.
    fn expand_gain(&self) -> u64 {
        match self.speedup {
            Some(curve) => curve.relative_marginal_cost(self.width + 1),
            None => SpeedupCurve::FP,
        }
    }

    /// `true` when more CPUs cannot speed this job up at all.
    fn saturated(&self) -> bool {
        self.speedup.is_some_and(|c| c.saturated_at(self.width))
    }
}

/// Relative rate (fixed-point) of `job` granted `width` CPUs per node —
/// `width × FP` for a curve-less linear job. Multiplied by the job's node
/// count, this is the gain side of the shrink-economics comparison.
fn admission_gain(job: &QueuedJob, width: usize) -> u64 {
    match &job.speedup {
        Some(curve) => curve.relative_rate(width),
        None => width as u64 * SpeedupCurve::FP,
    }
}

/// Expected duration of a malleable job granted `width` CPUs per node
/// instead of its full `request`, under the linear-speedup model — the
/// fallback when a job carries no [`SpeedupCurve`] (all estimate sites go
/// through [`QueuedJob::scaled_duration_us`], which dispatches). Rounds
/// **up**: truncating here made the estimate optimistic, and an optimistic
/// completion estimate lets the policy place a drain reservation at an
/// instant the shrunk job itself still occupies — a reservation violated by
/// the very job the policy shrank. Shared with
/// `PolicyScheduler::apply_start` so the controller's recorded estimate can
/// never diverge from the one the policy planned around.
pub(crate) fn scaled_duration(duration_us: TimeUs, request: usize, width: usize) -> TimeUs {
    duration_us
        .saturating_mul(request as u64)
        .div_ceil(width.max(1) as u64)
}

/// The indexed working state of one [`MalleablePolicy::schedule`] pass:
/// per-node free and reclaimable CPUs plus the per-node donor index (slot
/// positions of the malleable jobs holding CPUs there), every one maintained
/// incrementally as the pass shrinks victims and admits jobs.
///
/// Seeded from the driver's event-maintained [`SchedIndex`] when the view
/// carries one, or rebuilt from `running` in one O(running) sweep when it
/// does not (hand-built views, benches). Either way the pass itself never
/// rescans all running jobs per node again — victim selection reads
/// `donors[node]`, availability reads `free[node] + reclaim[node]`.
struct PassState<'a> {
    node_cpus: usize,
    free: Vec<usize>,
    reclaim: Vec<usize>,
    cheap: Vec<usize>,
    donors: Vec<Vec<usize>>,
    slots: Vec<Slot<'a>>,
    /// The driver's maintained release timeline, when the view's index is
    /// trusted — the drain-reservation forecast walks it directly instead of
    /// replaying every slot (hand-built views fall back to a one-shot
    /// rebuild from the slots).
    base_timeline: Option<&'a ReleaseTimeline>,
    /// Per-value histograms of free and free+reclaimable CPUs — the exact
    /// reject guards that let admission attempts skip O(nodes) probes. The
    /// `open_*` pair is restricted to non-reserved nodes; until
    /// [`apply_reservation`](Self::apply_reservation) rebuilds them they
    /// track all nodes, identically to the unrestricted pair.
    free_hist: FreeHist,
    avail_hist: FreeHist,
    open_free_hist: FreeHist,
    open_avail_hist: FreeHist,
    /// Number of non-reserved nodes (all of them until a reservation lands).
    open_nodes: usize,
    /// The trusted driver index behind this pass (`None` for hand-built
    /// views) — resolved once here so the probe memo and the timeline reuse
    /// the same trust decision.
    index: Option<&'a SchedIndex>,
    /// In-pass dirty counters, mirroring [`SchedIndex::free_gen`] for the
    /// pass-local free vector: `raised[w]` counts the upward crossings into
    /// width class `w` this pass's own shrinks caused. A memo skip is valid
    /// only while `raised[request] == 0` — the index generations cannot see
    /// pass-local movement. Never decremented: an unshrink leaves the
    /// counter high, which can only disable a skip (conservative).
    raised: Vec<u64>,
    /// Plain (unreserved) availability — per-node free + reclaim as the
    /// *index* accounts it, i.e. ignoring the reservation's donor stripping
    /// — plus its histogram. `None` until a reservation lands (before that,
    /// `avail_hist` *is* plain). Probe-memo availability failures must be
    /// proven against this state, not the stripped one: the reservation
    /// mask is recomputed every pass and can change with no generation
    /// bump, so a stripped-count failure is not stable — a plain-count
    /// failure is (plain availability only falls as jobs start).
    plain_avail: Option<(Vec<usize>, FreeHist)>,
}

impl<'a> PassState<'a> {
    // ALLOC(pass): the O(nodes) pass seeding ROADMAP names as the next perf
    // wall — clones the view's free vector, reclaim/cheap columns, donor
    // lists and slot table every pass; the work-list is a reusable scratch
    // arena so steady-state passes stop paying this.
    // PANIC: seeded vectors index nodes of the fixed cluster size.
    fn new(view: &ClusterView<'a>) -> Self {
        let slots: Vec<Slot<'a>> = view
            .running
            .iter()
            .map(|r| Slot {
                job_id: r.alloc.job_id,
                node_indices: Cow::Borrowed(r.alloc.node_indices.as_slice()),
                width: r.alloc.cpus_per_node,
                original_width: Some(r.alloc.cpus_per_node),
                floor: r.job.min_cpus_per_node,
                request: r.job.cpus_per_node,
                malleable: r.job.malleable,
                expected_end_us: r.expected_end_us,
                speedup: r.job.speedup.as_ref(),
                reserved_overlap: false,
            })
            .collect();
        let mut state = PassState {
            node_cpus: view.node_cpus,
            free: view.free.to_vec(),
            reclaim: vec![0; view.free.len()],
            cheap: vec![0; view.free.len()],
            donors: vec![Vec::new(); view.free.len()],
            slots,
            base_timeline: None,
            free_hist: FreeHist { counts: Vec::new() },
            avail_hist: FreeHist { counts: Vec::new() },
            open_free_hist: FreeHist { counts: Vec::new() },
            open_avail_hist: FreeHist { counts: Vec::new() },
            open_nodes: view.free.len(),
            index: trusted_index(view),
            raised: vec![0; view.node_cpus + 1],
            plain_avail: None,
        };
        // Prefer the driver's event-maintained index; `free` must agree or
        // the index belongs to some other state and is ignored.
        if let Some(index) = state.index {
            state.base_timeline = Some(index.timeline());
            state.reclaim.copy_from_slice(index.reclaim());
            state.cheap.copy_from_slice(index.cheap());
            // The id → slot-position map costs O(running) hashing, so it is
            // built only on the first node that actually lists donors (a
            // rigid-heavy cluster skips it entirely).
            let slots = &state.slots;
            let mut by_id: Option<HashMap<u64, usize>> = None;
            for (node, donors) in state.donors.iter_mut().enumerate() {
                let ids = index.donors(node);
                if ids.is_empty() {
                    continue;
                }
                let by_id = by_id.get_or_insert_with(|| {
                    slots
                        .iter()
                        .enumerate()
                        .map(|(i, s)| (s.job_id, i))
                        .collect()
                });
                // Donor ids are kept in running order, so the mapped slot
                // positions come out ascending — the tie-break order the
                // reference scan uses.
                donors.extend(ids.iter().map(|id| by_id[id]));
            }
        } else {
            for (i, slot) in state.slots.iter().enumerate() {
                if slot.malleable {
                    let spare = slot.spare();
                    let cheap = slot.zero_cost_spare();
                    for &n in slot.node_indices.iter() {
                        state.donors[n].push(i);
                        state.reclaim[n] += spare;
                        state.cheap[n] += cheap;
                    }
                }
            }
        }
        let avail: Vec<usize> = state
            .free
            .iter()
            .zip(&state.reclaim)
            .map(|(f, r)| f + r)
            .collect();
        state.free_hist = FreeHist::new(&state.free, view.node_cpus, |_| true);
        state.avail_hist = FreeHist::new(&avail, view.node_cpus, |_| true);
        state.open_free_hist = state.free_hist.clone();
        state.open_avail_hist = state.avail_hist.clone();
        state
    }

    /// [`fit_first`] behind the exact histogram reject guard: when fewer
    /// than `nodes` nodes carry ≥ `width` free CPUs, no first-fit exists and
    /// the O(nodes) probe is skipped without changing any decision.
    fn guarded_fit_first(&self, nodes: usize, width: usize) -> Option<Vec<usize>> {
        if self.free_hist.count_ge(width) < nodes {
            return None;
        }
        fit_first(&self.free, nodes, width)
    }

    /// [`fit_first_masked`] behind the same guard, counted over open
    /// (non-reserved) nodes only.
    fn guarded_fit_first_masked(
        &self,
        reserved: &[bool],
        nodes: usize,
        width: usize,
    ) -> Option<Vec<usize>> {
        if self.open_free_hist.count_ge(width) < nodes {
            return None;
        }
        fit_first_masked(&self.free, reserved, nodes, width)
    }

    /// The donor on `node` whose next donated CPU costs the least relative
    /// rate (per its [`SpeedupCurve`] — a saturated tail costs nothing),
    /// excluding jobs overlapping a reserved node (slowing one down would
    /// push its completion — and the reservation — later). Ties go to the
    /// donor with the most spare above its shrink floor, then to the
    /// earliest-started job — so on a curve-less cluster, where every cost
    /// is FP, the rule reduces exactly to the pre-curve widest-donor order.
    /// The reference scan uses the same key.
    // PANIC: per-node columns are sized to the cluster's node count.
    fn best_donor(&self, node: usize) -> Option<usize> {
        self.donors[node]
            .iter()
            .copied()
            .filter(|&i| {
                let s = &self.slots[i];
                s.width > s.shrink_floor() && !s.reserved_overlap
            })
            .min_by_key(|&i| {
                let s = &self.slots[i];
                (s.donor_cost(), std::cmp::Reverse(s.spare()), i)
            })
    }

    /// Shrinks `victim` by `give` CPUs per node, releasing them on every one
    /// of its nodes. Only ever called on unreserved donors, so the spare the
    /// victim loses is spare the reclaim summary was counting — and every
    /// node it touches is open, so both free histograms move (availability,
    /// free + reclaim, is unchanged by a shrink).
    // PANIC: victim slot positions and node indices were recorded while
    // seeding this very pass.
    fn shrink_victim(&mut self, victim: usize, give: usize) {
        let old_cheap = self.slots[victim].zero_cost_spare();
        self.slots[victim].width -= give;
        let new_cheap = self.slots[victim].zero_cost_spare();
        for &n in self.slots[victim].node_indices.iter() {
            self.free_hist.update(self.free[n], self.free[n] + give);
            self.open_free_hist
                .update(self.free[n], self.free[n] + give);
            // The only pass-local upward free movement: flag the crossed
            // width classes so the probe memo stops skipping on them
            // (availability, free + reclaim, is unchanged by a shrink).
            bump_gens(&mut self.raised, self.free[n], self.free[n] + give);
            self.free[n] += give;
            self.reclaim[n] -= give;
            self.cheap[n] = self.cheap[n] - old_cheap + new_cheap;
        }
    }

    /// Rolls one [`shrink_victim`](Self::shrink_victim) back — the undo side
    /// of the shrink-economics check, restoring width, free, reclaim, the
    /// cheap summary and the histograms exactly.
    // PANIC: victim slot positions and node indices were recorded while
    // seeding this very pass.
    fn unshrink_victim(&mut self, victim: usize, give: usize) {
        let old_cheap = self.slots[victim].zero_cost_spare();
        self.slots[victim].width += give;
        let new_cheap = self.slots[victim].zero_cost_spare();
        for &n in self.slots[victim].node_indices.iter() {
            self.free_hist.update(self.free[n], self.free[n] - give);
            self.open_free_hist
                .update(self.free[n], self.free[n] - give);
            self.free[n] -= give;
            self.reclaim[n] += give;
            self.cheap[n] = self.cheap[n] - old_cheap + new_cheap;
        }
    }

    /// Carves `width` free CPUs out of every selected node by shrinking
    /// donors — cheapest marginal cost first, whole equal-cost runs at a
    /// time — then checks the shrink economics: `gain` (the newcomer's
    /// relative rate × its node count, both sides FP-normalised) must cover
    /// the donors' aggregate relative rate loss. On a failed check every
    /// shrink is rolled back, the pass state is exactly as before, and the
    /// caller falls through to the drain-reservation path.
    ///
    /// The loss counts each donated width-unit once (a donor's curve prices
    /// per-node width; CPUs freed on its other nodes are reabsorbed by
    /// expansion). On a curve-less cluster every donated CPU costs FP and
    /// the gives sum to at most `nodes × width`, so at the default tolerance
    /// `gain ≥ loss` always holds — the check can only fire when curves are
    /// present (or the tolerance is set below `FP`).
    // ALLOC(pass): one carve vector per admission candidate.
    // PANIC: carving walks node-count-sized columns; the unreachable! arm
    // guards an eligibility count proven exact before the walk.
    fn carve_out(
        &mut self,
        node_indices: &[usize],
        width: usize,
        gain: u128,
        tolerance_fp: u64,
    ) -> bool {
        let mut donations: Vec<(usize, usize)> = Vec::new();
        let mut loss: u128 = 0;
        for &node in node_indices {
            while self.free[node] < width {
                let needed = width - self.free[node];
                let Some(victim) = self.best_donor(node) else {
                    unreachable!("plan_admission guaranteed the capacity");
                };
                let give = needed.min(self.slots[victim].donor_run());
                loss += give as u128 * self.slots[victim].donor_cost() as u128;
                self.shrink_victim(victim, give);
                donations.push((victim, give));
            }
        }
        // Both sides carry one FP factor already; scaling gain by the
        // tolerance and loss by FP keeps the comparison in the same
        // fixed-point units (and exactly `gain ≥ loss` at the default).
        if gain * tolerance_fp as u128 >= loss * SpeedupCurve::FP as u128 {
            return true;
        }
        for &(victim, give) in donations.iter().rev() {
            self.unshrink_victim(victim, give);
        }
        false
    }

    /// Starts `job` on `node_indices` at `width`, entering it into the free,
    /// reclaim and donor indices (it may donate to later admissions of the
    /// same pass).
    // PANIC: start updates per-node columns at indices from the carve result.
    fn start(
        &mut self,
        job: &'a QueuedJob,
        node_indices: Vec<usize>,
        width: usize,
        now_us: TimeUs,
        reserved: Option<&[bool]>,
    ) {
        let idx = self.slots.len();
        let slot = Slot {
            job_id: job.id,
            node_indices: Cow::Owned(node_indices),
            width,
            original_width: None,
            floor: job.min_cpus_per_node,
            request: job.cpus_per_node,
            malleable: job.malleable,
            expected_end_us: job
                .expected_duration_us
                .map(|d| now_us.saturating_add(job.scaled_duration_us(d, width))),
            speedup: job.speedup.as_ref(),
            reserved_overlap: false,
        };
        let spare = slot.spare();
        let cheap = slot.zero_cost_spare();
        let overlap = slot.on_reserved(reserved);
        for &n in slot.node_indices.iter() {
            let old_free = self.free[n];
            let old_avail = self.free[n] + self.reclaim[n];
            self.free[n] -= width;
            if slot.malleable && !overlap {
                self.donors[n].push(idx);
                self.reclaim[n] += spare;
                self.cheap[n] += cheap;
            }
            let new_avail = self.free[n] + self.reclaim[n];
            self.free_hist.update(old_free, self.free[n]);
            self.avail_hist.update(old_avail, new_avail);
            // An ends-before-the-reservation start may land on reserved
            // nodes; those are absent from the open histograms.
            if !reserved.is_some_and(|m| m[n]) {
                self.open_free_hist.update(old_free, self.free[n]);
                self.open_avail_hist.update(old_avail, new_avail);
            }
            // Plain availability follows index semantics: a malleable start
            // donates its spare whether or not it overlaps the reservation.
            if let Some((plain, plain_hist)) = &mut self.plain_avail {
                let new_plain = plain[n] - width + if slot.malleable { spare } else { 0 };
                plain_hist.update(plain[n], new_plain);
                plain[n] = new_plain;
            }
        }
        self.slots.push(Slot {
            reserved_overlap: overlap,
            ..slot
        });
    }

    /// Records a freshly placed reservation: overlapping jobs stop donating
    /// (their reclaimable spare leaves the summary, they are filtered from
    /// victim selection) and reserved nodes stop being admission targets.
    /// Runs at most once per pass, so the availability histograms are simply
    /// rebuilt in one O(nodes) sweep (free CPUs are untouched here, the
    /// all-node free histogram stands).
    // ALLOC(pass): rebuilds the masked donor view when a reservation overlaps.
    // PANIC: the reservation mask is node-count sized.
    fn apply_reservation(&mut self, mask: &[bool]) {
        // Snapshot the plain availability before the donor stripping below:
        // at this point `avail_hist` still histograms exactly free + reclaim
        // (starts so far updated it plain, shrinks leave it unchanged), so
        // the clone *is* the plain histogram. The probe memo records
        // availability failures against this state — the only one whose
        // failures are stable across passes (see the field's doc).
        let plain: Vec<usize> = self
            .free
            .iter()
            .zip(&self.reclaim)
            .map(|(f, r)| f + r)
            .collect();
        self.plain_avail = Some((plain, self.avail_hist.clone()));
        for slot in self.slots.iter_mut() {
            if slot.node_indices.iter().any(|&n| mask[n]) {
                slot.reserved_overlap = true;
                if slot.malleable {
                    let spare = slot.spare();
                    let cheap = slot.zero_cost_spare();
                    for &n in slot.node_indices.iter() {
                        self.reclaim[n] -= spare;
                        self.cheap[n] -= cheap;
                    }
                }
            }
        }
        let avail: Vec<usize> = self
            .free
            .iter()
            .zip(&self.reclaim)
            .map(|(f, r)| f + r)
            .collect();
        self.avail_hist = FreeHist::new(&avail, self.node_cpus, |_| true);
        self.open_free_hist = FreeHist::new(&self.free, self.node_cpus, |n| !mask[n]);
        self.open_avail_hist = FreeHist::new(&avail, self.node_cpus, |n| !mask[n]);
        self.open_nodes = mask.iter().filter(|&&m| !m).count();
    }

    /// Number of nodes whose **plain** availability (free + reclaim under
    /// index semantics, no reservation stripping) is ≥ `width` — the count
    /// the probe memo's availability failures are proven against.
    fn plain_avail_count_ge(&self, width: usize) -> usize {
        match &self.plain_avail {
            Some((_, hist)) => hist.count_ge(width),
            None => self.avail_hist.count_ge(width),
        }
    }
}

impl SchedulerPolicy for MalleablePolicy {
    fn name(&self) -> &'static str {
        "malleable"
    }

    // ALLOC(pass): the per-pass action list.
    // PANIC: indices address PassState's node-count-sized columns.
    fn schedule(
        &mut self,
        view: &ClusterView<'_>,
        queue: &[QueuedJob],
        now_us: TimeUs,
    ) -> Vec<SchedulerAction> {
        let mut state = PassState::new(view);
        let memo_ix = match self.probing {
            Probing::AlwaysProbe => None,
            _ => state.index,
        };
        if let Some(index) = memo_ix {
            self.memo.sync_epoch(index.epoch());
        }
        #[cfg(test)]
        let ignore_gens = matches!(self.probing, Probing::UnsoundStaleSkip);
        #[cfg(not(test))]
        let ignore_gens = false;
        // Reservation for the first job that could not be admitted at all:
        // (earliest provable start time, per-node reserved flag). The flag
        // vector is shared by every later admission attempt of the pass —
        // `shrink_to_admit` and the masked fits read it directly instead of
        // rebuilding a masked free vector per queued job.
        let mut reservation: Option<(TimeUs, Vec<bool>)> = None;

        for job in admission_iter(view, queue) {
            // A memo-valid job is provably still unadmittable (no width
            // class it needs gained nodes since its count-proven failure,
            // neither in the index nor from this pass's own shrinks), so it
            // falls straight through to the not-admitted flow below — the
            // reservation forecast is still paid, exactly as a re-probed
            // failure would.
            let skip = memo_ix.is_some_and(|index| {
                self.memo
                    .still_blocked(job, index, Some(&state.raised), ignore_gens)
            });
            let mut admitted = false;
            if !skip {
                let placement = Self::plan_admission(job, &state, &reservation, now_us);
                if let Some((node_indices, width)) = placement {
                    // Carve out the CPUs: shrink victims until every selected
                    // node has `width` free, then allocate — unless the donors'
                    // aggregate rate loss exceeds the newcomer's gain, in which
                    // case the carve rolls itself back and the job falls through
                    // to the reservation path below.
                    let gain = node_indices.len() as u128 * admission_gain(job, width) as u128;
                    if state.carve_out(&node_indices, width, gain, self.loss_tolerance_fp) {
                        let reserved_mask = reservation.as_ref().map(|(_, m)| m.as_slice());
                        state.start(job, node_indices, width, now_us, reserved_mask);
                        if memo_ix.is_some() {
                            self.memo.forget(job.id);
                        }
                        admitted = true;
                    }
                } else if let Some(index) = memo_ix {
                    // Record only *count-proven* failures: the plain fit
                    // count and the plain availability count at the shrink
                    // floor both fall short. Mask- or economics-induced
                    // failures are never recorded — they depend on per-pass
                    // state the generations cannot witness.
                    let floor = shrink_floor(job.min_cpus_per_node, job.cpus_per_node);
                    if state.free_hist.count_ge(job.cpus_per_node) < job.nodes
                        && state.plain_avail_count_ge(floor) < job.nodes
                    {
                        self.memo.record(
                            job.id,
                            index.free_gen(job.cpus_per_node),
                            Some(index.avail_gen(floor)),
                        );
                    }
                }
            }
            if admitted {
                continue;
            }
            if reservation.is_some() {
                continue; // one reservation at a time; revisit next tick
            }
            match Self::earliest_full_fit(job, &state, now_us) {
                Some((at_us, nodes)) => {
                    let mut mask = vec![false; state.free.len()];
                    for &n in &nodes {
                        mask[n] = true;
                    }
                    state.apply_reservation(&mask);
                    reservation = Some((at_us, mask));
                }
                // No provable drain (a holder lacks an estimate): stop
                // admitting rather than risk starving the head forever.
                None => break,
            }
        }

        let reserved_mask = reservation.as_ref().map(|(_, m)| m.as_slice());
        let PassState {
            ref mut free,
            ref mut slots,
            ..
        } = state;
        expand_shrunk(slots, free, reserved_mask);
        emit_actions(slots)
    }
}

impl MalleablePolicy {
    /// Decides whether (and how) `job` can start right now, honouring an
    /// existing reservation: a job whose declared duration provably ends
    /// before the reservation may use any free CPUs at full width; otherwise
    /// reserved nodes are off limits, for the start and for its victims.
    fn plan_admission(
        job: &QueuedJob,
        state: &PassState<'_>,
        reservation: &Option<(TimeUs, Vec<bool>)>,
        now_us: TimeUs,
    ) -> Option<(Vec<usize>, usize)> {
        match reservation {
            None => state
                .guarded_fit_first(job.nodes, job.cpus_per_node)
                .map(|nodes| (nodes, job.cpus_per_node))
                .or_else(|| Self::shrink_to_admit(job, state, None)),
            Some((reserved_at, mask)) => {
                let ends_first = job
                    .expected_duration_us
                    .is_some_and(|d| now_us.saturating_add(d) <= *reserved_at);
                if ends_first {
                    if let Some(nodes) = state.guarded_fit_first(job.nodes, job.cpus_per_node) {
                        return Some((nodes, job.cpus_per_node));
                    }
                }
                // Reserved nodes are off limits for the start and its victims.
                state
                    .guarded_fit_first_masked(mask, job.nodes, job.cpus_per_node)
                    .map(|nodes| (nodes, job.cpus_per_node))
                    .or_else(|| Self::shrink_to_admit(job, state, Some(mask)))
            }
        }
    }

    /// Plans an admission that requires shrinking: picks the `job.nodes`
    /// nodes with the most available (free + reclaimable) CPUs and the widest
    /// feasible width. `None` if even the floors don't fit. Availability is
    /// read straight off the pass indices — no rescan of the running jobs —
    /// and the top nodes are found with a linear-time selection instead of a
    /// full sort.
    ///
    /// Among equally available nodes, the one whose reclaimable CPUs cost
    /// the least throughput wins (more zero-marginal-cost spare per the
    /// donors' curves — the `cheap` summary). On a curve-less cluster every
    /// `cheap` entry is 0 and the order reduces to the pre-curve
    /// availability-then-index rule exactly.
    // ALLOC(pass): candidate shrink plans are collected per admission attempt.
    // PANIC: plan indices address pass-local slot and node vectors.
    fn shrink_to_admit(
        job: &QueuedJob,
        state: &PassState<'_>,
        reserved: Option<&[bool]>,
    ) -> Option<(Vec<usize>, usize)> {
        // Exact histogram reject: the k-th most available open node offers
        // ≥ the shrink floor iff at least k open nodes do, so a failed
        // count means the selection below cannot reach the floor either —
        // skip the O(nodes) gather entirely (the common case on a loaded
        // cluster, where most queued jobs cannot be admitted at all).
        let floor = shrink_floor(job.min_cpus_per_node, job.cpus_per_node);
        let (hist, open) = match reserved {
            None => (&state.avail_hist, state.free.len()),
            Some(_) => (&state.open_avail_hist, state.open_nodes),
        };
        if open < job.nodes || hist.count_ge(floor) < job.nodes {
            return None;
        }
        let mut avail: Vec<(usize, usize, usize)> = (0..state.free.len())
            .filter(|&node| !reserved.is_some_and(|m| m[node]))
            .map(|node| {
                (
                    node,
                    state.free[node] + state.reclaim[node],
                    state.cheap[node],
                )
            })
            .collect();
        if avail.len() < job.nodes {
            return None;
        }
        // Most available first, cheapest reclaim next; index order breaks
        // remaining ties deterministically. The ordering is total, so
        // selecting the top `job.nodes` yields the same node set the
        // reference scan's full sort produces.
        if avail.len() > job.nodes {
            avail.select_nth_unstable_by_key(job.nodes - 1, |&(node, a, cheap)| {
                (std::cmp::Reverse(a), std::cmp::Reverse(cheap), node)
            });
        }
        let selected = &avail[..job.nodes];
        let width = selected
            .iter()
            .map(|&(_, a, _)| a)
            .min()
            .unwrap_or(0)
            .min(job.cpus_per_node);
        // A job is admitted shrunk only down to its own shrink floor: deeper
        // admission would just move the time-sharing to the newcomer.
        if width < shrink_floor(job.min_cpus_per_node, job.cpus_per_node) {
            return None;
        }
        let mut node_indices: Vec<usize> = selected.iter().map(|&(n, _, _)| n).collect();
        node_indices.sort_unstable();
        Some((node_indices, width))
    }

    /// Earliest time ≥ `now` at which `job` fits at full width — the
    /// drain-reservation forecast. Returns the time and the node set; `None`
    /// when a holder on a needed node has no completion estimate.
    ///
    /// Computed as a [`earliest_timeline_fit`] walk over the driver's
    /// maintained [`ReleaseTimeline`] plus a pass-local overlay: jobs this
    /// pass started release their full current width at their estimated
    /// end, and victims this pass shrank release `width − original_width`
    /// **less** than the base timeline promises at theirs. Base + overlay
    /// releases sum to each slot's current width at its estimated end —
    /// exactly what the reference replay
    /// ([`MalleableScanPolicy`]'s `earliest_release_fit` over the slots)
    /// accumulates, so the forecast is decision-identical. A slot's
    /// estimated end never changes mid-pass (re-estimates happen in the
    /// controller after a resize is applied), so shrink corrections always
    /// land on the instant the base already keys.
    // ALLOC(pass): scratch future-free vector per estimate probe.
    // PANIC: the timeline walk indexes the scratch vector it sized.
    fn earliest_full_fit(
        job: &QueuedJob,
        state: &PassState<'_>,
        now_us: TimeUs,
    ) -> Option<(TimeUs, Vec<usize>)> {
        let mut overlay: Vec<TimelineDelta<'_>> = state
            .slots
            .iter()
            .filter_map(|s| {
                let end_us = s.expected_end_us?;
                let delta = match s.original_width {
                    None => s.width as i64,
                    Some(original) => s.width as i64 - original as i64,
                };
                (delta != 0).then_some(TimelineDelta {
                    end_us,
                    node_indices: &s.node_indices[..],
                    delta,
                })
            })
            .collect();
        overlay.sort_by_key(|d| d.end_us);
        let one_shot;
        let base = match state.base_timeline {
            Some(timeline) => timeline,
            None => {
                one_shot = base_timeline_from_slots(&state.slots);
                &one_shot
            }
        };
        earliest_timeline_fit(
            job.nodes,
            job.cpus_per_node,
            &state.free,
            base,
            &overlay,
            now_us,
        )
    }
}

/// A one-shot base [`ReleaseTimeline`] equivalent to the one the driver
/// maintains: every slot that was already running when the pass began, at
/// its **original** width (the pass's own shrinks and starts ride in the
/// overlay). The fallback when the view carries no trustworthy index.
fn base_timeline_from_slots(slots: &[Slot<'_>]) -> ReleaseTimeline {
    let mut timeline = ReleaseTimeline::new();
    for s in slots {
        if let Some(original) = s.original_width {
            timeline.add(s.job_id, &s.node_indices, original, s.expected_end_us);
        }
    }
    timeline
}

/// Expansion, shared by both malleable implementations: hands the remaining
/// free CPUs on non-reserved nodes to shrunk malleable jobs, one CPU per
/// node per sweep so concurrent victims recover evenly. Within a sweep the
/// steepest relative marginal gain goes first (stable sort — slot order, the
/// pre-curve round-robin, breaks ties) and saturated jobs are skipped
/// entirely: a curve flat from the current width through the request cannot
/// convert a CPU into progress, so the CPU goes to a job that can. A job on
/// a zero-marginal plateau *below* saturation still participates (ranked
/// last) — those stepping-stone CPUs are what reach the rising part of its
/// curve on later sweeps. Reserved nodes do not participate: consuming
/// their free CPUs could push the reserved job's start past its
/// reservation. On a curve-less cluster every gain is FP and the sweep is
/// byte-identical to the pre-curve round-robin.
// ALLOC(pass): collects expandable slot positions once per pass tail.
// PANIC: slot positions and node indices are pass-local by construction.
fn expand_shrunk(slots: &mut [Slot<'_>], free: &mut [usize], reserved: Option<&[bool]>) {
    let expandable = |n: usize| !reserved.is_some_and(|m| m[n]);
    let mut progressed = true;
    while progressed {
        progressed = false;
        let mut order: Vec<usize> = (0..slots.len())
            .filter(|&i| {
                let s = &slots[i];
                s.malleable && s.width < s.request && !s.saturated()
            })
            .collect();
        order.sort_by_key(|&i| std::cmp::Reverse(slots[i].expand_gain()));
        for i in order {
            let slot = &mut slots[i];
            let headroom = slot
                .node_indices
                .iter()
                .map(|&n| if expandable(n) { free[n] } else { 0 })
                .min()
                .unwrap_or(0);
            if headroom == 0 {
                continue;
            }
            slot.width += 1;
            for &n in slot.node_indices.iter() {
                free[n] -= 1;
            }
            progressed = true;
        }
    }
}

/// Emits the actions of a finished malleable pass from the FINAL slot state
/// (a job admitted mid-pass may have been shrunk or expanded again by later
/// admissions), in an order that is valid to apply sequentially: shrinks
/// release CPUs, then starts consume them, then expands absorb the leftovers.
// ALLOC(pass): the emitted action list plus per-start node vectors — the
// pass's output, proportional to the jobs it admitted.
fn emit_actions(slots: &[Slot<'_>]) -> Vec<SchedulerAction> {
    let mut actions: Vec<SchedulerAction> = Vec::new();
    for slot in slots {
        if slot.original_width.is_some_and(|o| slot.width < o) {
            actions.push(SchedulerAction::Resize {
                job_id: slot.job_id,
                cpus_per_node: slot.width,
            });
        }
    }
    for slot in slots {
        if slot.original_width.is_none() {
            actions.push(SchedulerAction::Start {
                job_id: slot.job_id,
                node_indices: slot.node_indices.to_vec(),
                cpus_per_node: slot.width,
            });
        }
    }
    for slot in slots {
        if slot.original_width.is_some_and(|o| slot.width > o) {
            actions.push(SchedulerAction::Resize {
                job_id: slot.job_id,
                cpus_per_node: slot.width,
            });
        }
    }
    actions
}

/// First-fit placement that skips reserved nodes — the shared-mask
/// equivalent of masking the free vector to zero, without materialising a
/// masked copy per queued job.
// ALLOC(pass): the result vector, sized to the requested node count.
// PANIC: scans indices below `free.len()`; the mask is node-count sized.
fn fit_first_masked(
    free: &[usize],
    reserved: &[bool],
    nodes: usize,
    width: usize,
) -> Option<Vec<usize>> {
    if nodes == 0 {
        return None;
    }
    let mut seen = 0;
    let mut last = 0;
    for (idx, &f) in free.iter().enumerate() {
        if !reserved[idx] && f >= width {
            seen += 1;
            if seen == nodes {
                last = idx;
                break;
            }
        }
    }
    if seen < nodes {
        return None;
    }
    let mut selected = Vec::with_capacity(nodes);
    for (idx, &f) in free[..=last].iter().enumerate() {
        if !reserved[idx] && f >= width {
            selected.push(idx);
        }
    }
    Some(selected)
}

/// The pre-index reference implementation of the malleable policy: identical
/// decision procedure to [`MalleablePolicy`], but every availability and
/// victim scan recomputes from the slot list — O(queue × nodes × running)
/// per pass.
///
/// Kept for two reasons: the differential tests in `drom-sim` replay whole
/// traces under both implementations and require byte-identical reports, and
/// the `sched_scale` bench measures it next to the indexed pass so the
/// speedup stays visible (`BENCH_sched.json` records both).
#[derive(Debug, Clone)]
pub struct MalleableScanPolicy {
    /// Same shrink-economics tolerance as
    /// [`MalleablePolicy::with_loss_tolerance`] — the reference must apply
    /// the identical gate for the differential replays to stay meaningful
    /// at non-default tolerances.
    loss_tolerance_fp: u64,
}

impl Default for MalleableScanPolicy {
    fn default() -> Self {
        MalleableScanPolicy {
            loss_tolerance_fp: SpeedupCurve::FP,
        }
    }
}

impl MalleableScanPolicy {
    /// Reference-scan counterpart of
    /// [`MalleablePolicy::with_loss_tolerance`].
    pub fn with_loss_tolerance(tolerance_fp: u64) -> Self {
        MalleableScanPolicy {
            loss_tolerance_fp: tolerance_fp,
        }
    }
}

impl SchedulerPolicy for MalleableScanPolicy {
    fn name(&self) -> &'static str {
        "malleable-scan"
    }

    // ALLOC(pass): scan working set — slot table and donor columns are seeded
    // per pass (same O(nodes) seeding as PassState::new).
    // PANIC: indices address the pass-local node-count-sized vectors.
    fn schedule(
        &mut self,
        view: &ClusterView<'_>,
        queue: &[QueuedJob],
        now_us: TimeUs,
    ) -> Vec<SchedulerAction> {
        let mut free = view.free.to_vec();
        let mut slots: Vec<Slot<'_>> = view
            .running
            .iter()
            .map(|r| Slot {
                job_id: r.alloc.job_id,
                node_indices: Cow::Borrowed(r.alloc.node_indices.as_slice()),
                width: r.alloc.cpus_per_node,
                original_width: Some(r.alloc.cpus_per_node),
                floor: r.job.min_cpus_per_node,
                request: r.job.cpus_per_node,
                malleable: r.job.malleable,
                expected_end_us: r.expected_end_us,
                speedup: r.job.speedup.as_ref(),
                reserved_overlap: false,
            })
            .collect();
        let mut reservation: Option<(TimeUs, Vec<bool>)> = None;

        for job in queue_order(queue) {
            let placement = Self::plan_admission(job, &free, &slots, &reservation, now_us);
            let mut admitted = false;
            if let Some((node_indices, width)) = placement {
                let reserved_mask = reservation.as_ref().map(|(_, m)| m.as_slice());
                let gain = node_indices.len() as u128 * admission_gain(job, width) as u128;
                if Self::carve_out(
                    &mut free,
                    &mut slots,
                    &node_indices,
                    width,
                    reserved_mask,
                    gain,
                    self.loss_tolerance_fp,
                ) {
                    for &node in &node_indices {
                        free[node] -= width;
                    }
                    slots.push(Slot {
                        job_id: job.id,
                        node_indices: Cow::Owned(node_indices),
                        width,
                        original_width: None,
                        floor: job.min_cpus_per_node,
                        request: job.cpus_per_node,
                        malleable: job.malleable,
                        expected_end_us: job
                            .expected_duration_us
                            .map(|d| now_us.saturating_add(job.scaled_duration_us(d, width))),
                        speedup: job.speedup.as_ref(),
                        reserved_overlap: false,
                    });
                    admitted = true;
                }
            }
            if admitted {
                continue;
            }
            if reservation.is_some() {
                continue;
            }
            let holders: Vec<Holder<'_>> = slots
                .iter()
                .map(|s| Holder {
                    end_us: s.expected_end_us,
                    node_indices: &s.node_indices[..],
                    width: s.width,
                })
                .collect();
            match earliest_release_fit(job.nodes, job.cpus_per_node, &free, &holders, now_us) {
                Some((at_us, nodes)) => {
                    let mut mask = vec![false; free.len()];
                    for &n in &nodes {
                        mask[n] = true;
                    }
                    reservation = Some((at_us, mask));
                }
                None => break,
            }
        }

        let reserved_mask = reservation.as_ref().map(|(_, m)| m.as_slice());
        expand_shrunk(&mut slots, &mut free, reserved_mask);
        emit_actions(&slots)
    }
}

impl MalleableScanPolicy {
    /// Reference `plan_admission`: same decisions as
    /// [`MalleablePolicy::plan_admission`], recomputed from scratch.
    // ALLOC(pass): one admission plan per candidate.
    // PANIC: plan indices are pass-local.
    fn plan_admission(
        job: &QueuedJob,
        free: &[usize],
        slots: &[Slot<'_>],
        reservation: &Option<(TimeUs, Vec<bool>)>,
        now_us: TimeUs,
    ) -> Option<(Vec<usize>, usize)> {
        match reservation {
            None => fit_first(free, job.nodes, job.cpus_per_node)
                .map(|nodes| (nodes, job.cpus_per_node))
                .or_else(|| Self::shrink_to_admit(job, free, slots, None)),
            Some((reserved_at, mask)) => {
                let ends_first = job
                    .expected_duration_us
                    .is_some_and(|d| now_us.saturating_add(d) <= *reserved_at);
                if ends_first {
                    if let Some(nodes) = fit_first(free, job.nodes, job.cpus_per_node) {
                        return Some((nodes, job.cpus_per_node));
                    }
                }
                let masked: Vec<usize> = free
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| if mask[i] { 0 } else { f })
                    .collect();
                fit_first(&masked, job.nodes, job.cpus_per_node)
                    .map(|nodes| (nodes, job.cpus_per_node))
                    .or_else(|| Self::shrink_to_admit(job, &masked, slots, Some(mask)))
            }
        }
    }

    /// Reference victim selection: scans every slot, filtering by
    /// `node_indices.contains` — the cost the donor index removes. Same
    /// ranking key as [`PassState::best_donor`]: cheapest marginal cost,
    /// then most spare, then earliest start.
    fn best_donor(slots: &[Slot<'_>], node: usize, reserved: Option<&[bool]>) -> Option<usize> {
        slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.malleable
                    && s.width > s.shrink_floor()
                    && s.node_indices.contains(&node)
                    && !s.on_reserved(reserved)
            })
            .min_by_key(|&(i, s)| (s.donor_cost(), std::cmp::Reverse(s.spare()), i))
            .map(|(i, _)| i)
    }

    /// Reference carve-out + shrink economics: the same decision rule as
    /// [`PassState::carve_out`] — cheapest donors first, whole equal-cost
    /// runs, full rollback when the donors' aggregate loss exceeds `gain` —
    /// recomputed against the slot list.
    // ALLOC(pass): one carve vector per admission candidate.
    // PANIC: carving walks node-count-sized columns; the unreachable! arm
    // guards an eligibility count proven exact before the walk.
    fn carve_out(
        free: &mut [usize],
        slots: &mut [Slot<'_>],
        node_indices: &[usize],
        width: usize,
        reserved: Option<&[bool]>,
        gain: u128,
        tolerance_fp: u64,
    ) -> bool {
        let mut donations: Vec<(usize, usize)> = Vec::new();
        let mut loss: u128 = 0;
        for &node in node_indices {
            while free[node] < width {
                let needed = width - free[node];
                let Some(victim) = Self::best_donor(slots, node, reserved) else {
                    unreachable!("plan_admission guaranteed the capacity");
                };
                let give = needed.min(slots[victim].donor_run());
                loss += give as u128 * slots[victim].donor_cost() as u128;
                slots[victim].width -= give;
                for &n in slots[victim].node_indices.iter() {
                    free[n] += give;
                }
                donations.push((victim, give));
            }
        }
        if gain * tolerance_fp as u128 >= loss * SpeedupCurve::FP as u128 {
            return true;
        }
        for &(victim, give) in donations.iter().rev() {
            slots[victim].width += give;
            for &n in slots[victim].node_indices.iter() {
                free[n] -= give;
            }
        }
        false
    }

    /// Reference shrink-to-admit: recomputes per-node availability (and the
    /// zero-cost-reclaim tie-break) by scanning every slot for every node,
    /// then fully sorts by the same key the indexed selection uses.
    // ALLOC(pass): candidate shrink plans are collected per admission attempt.
    // PANIC: plan indices address pass-local slot and node vectors.
    fn shrink_to_admit(
        job: &QueuedJob,
        free: &[usize],
        slots: &[Slot<'_>],
        reserved: Option<&[bool]>,
    ) -> Option<(Vec<usize>, usize)> {
        let mut avail: Vec<(usize, usize, usize)> = free
            .iter()
            .enumerate()
            .filter(|&(node, _)| !reserved.is_some_and(|m| m[node]))
            .map(|(node, &f)| {
                let donors = slots.iter().filter(|s| {
                    s.malleable && s.node_indices.contains(&node) && !s.on_reserved(reserved)
                });
                let (reclaimable, cheap) =
                    donors.fold((0, 0), |(r, c), s| (r + s.spare(), c + s.zero_cost_spare()));
                (node, f + reclaimable, cheap)
            })
            .collect();
        avail.sort_by_key(|&(node, a, cheap)| {
            (std::cmp::Reverse(a), std::cmp::Reverse(cheap), node)
        });
        if avail.len() < job.nodes {
            return None;
        }
        let selected = &avail[..job.nodes];
        let width = selected
            .iter()
            .map(|&(_, a, _)| a)
            .min()
            .unwrap_or(0)
            .min(job.cpus_per_node);
        if width < shrink_floor(job.min_cpus_per_node, job.cpus_per_node) {
            return None;
        }
        let mut node_indices: Vec<usize> = selected.iter().map(|&(n, _, _)| n).collect();
        node_indices.sort_unstable();
        Some((node_indices, width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(node_cpus: usize, free: &'a [usize], running: &'a [RunningJob]) -> ClusterView<'a> {
        ClusterView {
            node_cpus,
            free,
            running,
            index: None,
            order: None,
        }
    }

    fn running(
        id: u64,
        nodes: Vec<usize>,
        width: usize,
        request: usize,
        floor: usize,
    ) -> RunningJob {
        RunningJob {
            job: QueuedJob::new(id, nodes.len(), request).malleable(floor),
            alloc: JobAllocation {
                job_id: id,
                node_indices: nodes,
                cpus_per_node: width,
            },
            start_us: 0,
            expected_end_us: None,
        }
    }

    #[test]
    fn first_fit_starts_in_order_and_blocks() {
        let free = [16, 16];
        let queue = vec![
            QueuedJob::new(1, 1, 16),
            QueuedJob::new(2, 2, 16), // does not fit once job 1 holds a node
            QueuedJob::new(3, 1, 1),  // would fit, but the head blocks it
        ];
        let actions = FirstFitPolicy::default().schedule(&view(16, &free, &[]), &queue, 0);
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            SchedulerAction::Start {
                job_id: 1,
                cpus_per_node: 16,
                ..
            }
        ));
    }

    #[test]
    fn first_fit_respects_priority() {
        let free = [16];
        let queue = vec![
            QueuedJob::new(1, 1, 16),
            QueuedJob::new(2, 1, 16).with_priority(5),
        ];
        let actions = FirstFitPolicy::default().schedule(&view(16, &free, &[]), &queue, 0);
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            SchedulerAction::Start { job_id: 2, .. }
        ));
    }

    #[test]
    fn backfill_jumps_only_safe_jobs() {
        // Node 0 busy until t=100s; head job wants both nodes.
        let holders = [running(10, vec![0], 16, 16, 16)];
        let mut holders = holders.to_vec();
        holders[0].expected_end_us = Some(100_000_000);
        let free = [0, 16];
        let queue = vec![
            QueuedJob::new(1, 2, 16), // head: blocked until t=100s
            QueuedJob::new(2, 1, 8).with_expected_duration_us(50_000_000), // safe
            QueuedJob::new(3, 1, 8).with_expected_duration_us(200_000_000), // would delay head
            QueuedJob::new(4, 1, 8),  // no estimate: never backfilled
        ];
        let actions = BackfillPolicy::default().schedule(&view(16, &free, &holders), &queue, 0);
        assert_eq!(actions.len(), 1, "only the safe job jumps: {actions:?}");
        assert!(matches!(
            &actions[0],
            SchedulerAction::Start { job_id: 2, .. }
        ));
    }

    #[test]
    fn backfill_without_estimates_never_jumps() {
        let holders = vec![running(10, vec![0], 16, 16, 16)]; // no expected end
        let free = [0, 16];
        let queue = vec![
            QueuedJob::new(1, 2, 16),
            QueuedJob::new(2, 1, 4).with_expected_duration_us(1),
        ];
        let actions = BackfillPolicy::default().schedule(&view(16, &free, &holders), &queue, 0);
        assert!(
            actions.is_empty(),
            "no reservation, no backfill: {actions:?}"
        );
    }

    #[test]
    fn malleable_shrinks_to_admit_and_expands_back() {
        // One malleable job owns both nodes fully; a rigid half-node job queues.
        let holders = vec![running(1, vec![0, 1], 16, 16, 4)];
        let free = [0, 0];
        let queue = vec![QueuedJob::new(2, 1, 8)];
        let actions = MalleablePolicy::default().schedule(&view(16, &free, &holders), &queue, 0);
        // Shrink job 1 (on both nodes), start job 2 on one node, and re-expand
        // job 1 by the slack the shrink left on the other node? The width is
        // uniform, so job 1 stays at 8 and node 1 keeps 8 CPUs free.
        assert!(actions.contains(&SchedulerAction::Resize {
            job_id: 1,
            cpus_per_node: 8
        }));
        assert!(actions.iter().any(|a| matches!(
            a,
            SchedulerAction::Start {
                job_id: 2,
                cpus_per_node: 8,
                ..
            }
        )));
        // Shrinks come before starts.
        let shrink_pos = actions
            .iter()
            .position(|a| matches!(a, SchedulerAction::Resize { job_id: 1, .. }))
            .unwrap();
        let start_pos = actions
            .iter()
            .position(|a| matches!(a, SchedulerAction::Start { .. }))
            .unwrap();
        assert!(shrink_pos < start_pos);
    }

    #[test]
    fn malleable_expands_into_free_cpus() {
        // A shrunk malleable job and an empty queue: pure expansion.
        let holders = vec![running(1, vec![0, 1], 8, 16, 4)];
        let free = [8, 8];
        let actions = MalleablePolicy::default().schedule(&view(16, &free, &holders), &[], 0);
        assert_eq!(
            actions,
            vec![SchedulerAction::Resize {
                job_id: 1,
                cpus_per_node: 16
            }]
        );
    }

    #[test]
    fn malleable_respects_floors() {
        // The running job can only shrink to 12; the queued job needs 8 on
        // its node: 4 free + 4 reclaimable = admitted at its floor width.
        let holders = vec![running(1, vec![0], 16, 16, 12)];
        let free = [0];
        let queue = vec![QueuedJob::new(2, 1, 8).malleable(4)];
        let actions = MalleablePolicy::default().schedule(&view(16, &free, &holders), &queue, 0);
        assert!(actions.contains(&SchedulerAction::Resize {
            job_id: 1,
            cpus_per_node: 12
        }));
        assert!(actions.iter().any(|a| matches!(
            a,
            SchedulerAction::Start {
                job_id: 2,
                cpus_per_node: 4,
                ..
            }
        )));
    }

    #[test]
    fn malleable_blocks_when_floors_exceed_capacity() {
        let holders = vec![running(1, vec![0], 16, 16, 16)]; // rigid-in-effect
        let free = [0];
        let queue = vec![QueuedJob::new(2, 1, 8)];
        let actions = MalleablePolicy::default().schedule(&view(16, &free, &holders), &queue, 0);
        assert!(actions.is_empty());
    }

    /// Regression (shrunk-duration rounding): a job admitted shrunk in this
    /// pass must carry a **rounded-up** completion estimate. With the old
    /// truncating scaling, J1 (101 µs at 7 CPUs, admitted at width 5) was
    /// estimated to end at 141 instead of 142, so the drain reservation for
    /// J2 landed at an instant J1 still occupies — and J3, whose duration
    /// ends exactly when the CPUs really free up, was refused the backfill
    /// it is entitled to.
    #[test]
    fn shrunk_admission_estimate_rounds_up_for_reservations() {
        let mut holders = vec![
            running(10, vec![0], 13, 13, 13), // rigid-in-effect, node 0
            running(11, vec![1], 11, 11, 11), // rigid-in-effect, node 1
        ];
        holders[0].expected_end_us = Some(50_000);
        holders[1].expected_end_us = Some(50_000);
        let free = [3, 5];
        let queue = vec![
            // Admitted shrunk at width 5 on node 1: ends at ⌈101·7/5⌉ = 142.
            QueuedJob::new(1, 1, 7)
                .malleable(1)
                .with_submit_us(0)
                .with_expected_duration_us(101),
            // Blocked: reservation at t = 142 over both nodes.
            QueuedJob::new(2, 2, 3)
                .with_submit_us(1)
                .with_expected_duration_us(1_000),
            // Ends exactly at the reservation instant: must backfill.
            QueuedJob::new(3, 1, 2)
                .with_submit_us(2)
                .with_expected_duration_us(142),
        ];
        let actions = MalleablePolicy::default().schedule(&view(16, &free, &holders), &queue, 0);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                SchedulerAction::Start {
                    job_id: 1,
                    cpus_per_node: 5,
                    ..
                }
            )),
            "job 1 admitted shrunk: {actions:?}"
        );
        assert!(
            actions.iter().any(|a| matches!(
                a,
                SchedulerAction::Start {
                    job_id: 3,
                    cpus_per_node: 2,
                    ..
                }
            )),
            "job 3 ends exactly at the (rounded-up) reservation and must \
             backfill: {actions:?}"
        );
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, SchedulerAction::Start { job_id: 2, .. })),
            "job 2 stays reserved: {actions:?}"
        );
    }

    /// The indexed pass and the reference scan make identical decisions on a
    /// view with no driver index (both rebuild from `running`).
    #[test]
    fn indexed_and_scan_policies_agree_on_handbuilt_views() {
        let mut holders = vec![
            running(1, vec![0, 1], 16, 16, 4),
            running(2, vec![2], 10, 16, 2),
            running(3, vec![1, 2], 3, 8, 1),
        ];
        holders[1].expected_end_us = Some(700);
        holders[2].expected_end_us = Some(900);
        let free = [0, 3, 3, 16];
        let queue = vec![
            QueuedJob::new(10, 2, 12)
                .malleable(3)
                .with_expected_duration_us(500),
            QueuedJob::new(11, 4, 16)
                .with_submit_us(1)
                .with_expected_duration_us(400),
            QueuedJob::new(12, 1, 4)
                .with_submit_us(2)
                .with_expected_duration_us(100),
            QueuedJob::new(13, 1, 2).malleable(1).with_submit_us(3),
        ];
        let indexed = MalleablePolicy::default().schedule(&view(16, &free, &holders), &queue, 50);
        let scanned =
            MalleableScanPolicy::default().schedule(&view(16, &free, &holders), &queue, 50);
        assert_eq!(indexed, scanned);
    }

    /// The event-maintained index equals a from-scratch rebuild after any
    /// start/resize/complete sequence, including donor-list order.
    #[test]
    fn sched_index_updates_match_rebuild() {
        let mut index = SchedIndex::new(3, 16);
        let j1 = QueuedJob::new(1, 2, 8).malleable(2);
        let j2 = QueuedJob::new(2, 1, 16).malleable(4);
        let j3 = QueuedJob::new(3, 2, 4); // rigid: never a donor
        index.on_start(&j1, &[0, 1], 8, Some(1_000));
        index.on_start(&j2, &[2], 12, Some(2_000));
        index.on_start(&j3, &[1, 2], 4, None);
        index.on_resize(&j2, &[2], 12, 9);
        index.on_resize(&j1, &[0, 1], 8, 5);
        // A resize refresh re-keys j1's releases in the timeline in place.
        index.on_estimate(1, &[0, 1], 5, Some(1_500));
        let running = vec![
            RunningJob {
                alloc: JobAllocation {
                    job_id: 1,
                    node_indices: vec![0, 1],
                    cpus_per_node: 5,
                },
                job: j1.clone(),
                start_us: 0,
                expected_end_us: Some(1_500),
            },
            RunningJob {
                alloc: JobAllocation {
                    job_id: 2,
                    node_indices: vec![2],
                    cpus_per_node: 9,
                },
                job: j2.clone(),
                start_us: 0,
                expected_end_us: Some(2_000),
            },
            RunningJob {
                alloc: JobAllocation {
                    job_id: 3,
                    node_indices: vec![1, 2],
                    cpus_per_node: 4,
                },
                job: j3.clone(),
                start_us: 0,
                expected_end_us: None,
            },
        ];
        assert_eq!(index, SchedIndex::rebuild(&[11, 7, 3], &running));
        assert_eq!(index.free(), &[11, 7, 3]);
        // j1 at width 5 with shrink floor max(2, 4) = 4 → 1 reclaimable;
        // j2 at width 9 with shrink floor max(4, 8) = 8 → 1 reclaimable.
        assert_eq!(index.reclaim(), &[1, 1, 1]);
        assert_eq!(index.donors(1), &[1]);
        assert_eq!(index.donors(2), &[2]);
        index.on_complete(&j1, &[0, 1], 5);
        index.on_complete(&j3, &[1, 2], 4);
        assert_eq!(index, SchedIndex::rebuild(&[16, 16, 7], &running[1..2]));
    }

    #[test]
    fn speedup_curve_linear_matches_the_linear_fallback_exactly() {
        let curve = SpeedupCurve::linear(4);
        assert_eq!(curve.request_width(), 4);
        assert_eq!(curve.rate(2), 2 * SpeedupCurve::FP);
        assert_eq!(curve.rate(9), curve.full_rate(), "beyond request clamps");
        for d in [1u64, 2, 3, 100, 101, 999_999] {
            for w in 1..=4usize {
                assert_eq!(
                    curve.scaled_duration_us(d, w),
                    scaled_duration(d, 4, w),
                    "linear curve must be byte-identical to no curve (d={d}, w={w})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn speedup_curve_rejects_non_monotone_rates() {
        SpeedupCurve::from_rates(vec![0, SpeedupCurve::FP, SpeedupCurve::FP / 2]);
    }

    /// A job carrying a sub-linear curve gets curve-scaled (not linear)
    /// estimates from every policy path that starts it shrunk.
    #[test]
    fn shrunk_admission_estimate_consults_the_speedup_curve() {
        // Request 7, but shrinking costs double the linear slowdown:
        // rate(w) = w·FP/14 below the request, FP at it.
        let rates: Vec<u64> = (0..=7u64)
            .map(|w| {
                if w == 7 {
                    SpeedupCurve::FP
                } else {
                    w * SpeedupCurve::FP / 14
                }
            })
            .collect();
        let curve = SpeedupCurve::from_rates(rates);
        let holders = vec![running(10, vec![0], 11, 11, 11)]; // rigid-in-effect
        let free = [5];
        let queue = vec![QueuedJob::new(1, 1, 7)
            .malleable(1)
            .with_expected_duration_us(101)
            .with_speedup(curve.clone())];
        for actions in [
            MalleablePolicy::default().schedule(&view(16, &free, &holders), &queue, 0),
            MalleableScanPolicy::default().schedule(&view(16, &free, &holders), &queue, 0),
        ] {
            assert!(
                actions.iter().any(|a| matches!(
                    a,
                    SchedulerAction::Start {
                        job_id: 1,
                        cpus_per_node: 5,
                        ..
                    }
                )),
                "job 1 admitted shrunk at width 5: {actions:?}"
            );
        }
        // The estimate the policy plans around: ⌈101·FP / rate(5)⌉ = 283
        // virtual µs — twice the linear ⌈101·7/5⌉ = 142 (minus rounding).
        assert_eq!(curve.scaled_duration_us(101, 5), 283);
        assert_eq!(scaled_duration(101, 7, 5), 142);
    }

    /// STREAM-like saturated curve for `request` CPUs per node: half rate at
    /// one CPU, full (memory-bound) rate from two CPUs on.
    fn stream_curve(request: usize) -> SpeedupCurve {
        let rates = (0..=request as u64)
            .map(|w| match w {
                0 => 0,
                1 => SpeedupCurve::FP / 2,
                _ => SpeedupCurve::FP,
            })
            .collect();
        SpeedupCurve::from_rates(rates)
    }

    fn with_curve(mut r: RunningJob, curve: SpeedupCurve) -> RunningJob {
        r.job.speedup = Some(curve);
        r
    }

    /// Regression (model-blind expansion): a STREAM job saturated at its
    /// current width must never be handed free CPUs while an unsaturated
    /// job on the same node is below its request. Pre-fix the round-robin
    /// sweep split the 8 free CPUs evenly between both.
    #[test]
    fn saturated_job_is_never_expanded_while_an_unsaturated_peer_wants_cpus() {
        let holders = vec![
            with_curve(running(1, vec![0], 4, 8, 4), stream_curve(8)),
            running(2, vec![0], 4, 8, 4), // linear: every CPU still helps
        ];
        let free = [8];
        for actions in [
            MalleablePolicy::default().schedule(&view(16, &free, &holders), &[], 0),
            MalleableScanPolicy::default().schedule(&view(16, &free, &holders), &[], 0),
        ] {
            assert_eq!(
                actions,
                vec![SchedulerAction::Resize {
                    job_id: 2,
                    cpus_per_node: 8
                }],
                "only the unsaturated job expands; the saturated STREAM job \
                 gains nothing from more CPUs"
            );
        }
    }

    /// Regression (model-blind victim selection): a saturated STREAM job
    /// donates its zero-marginal-cost tail before an uneven static-partition
    /// job loses real throughput — even when the static job has the larger
    /// raw spare, which is what the pre-fix widest-donor rule keyed on.
    #[test]
    fn saturated_stream_job_is_preferred_donor_over_uneven_static_partition() {
        // Static-partition-like curve: every width below the request costs
        // real rate (linear profile), so its marginal cost is FP per CPU.
        let static_rates: Vec<u64> = (0..=16u64).map(|w| w * (SpeedupCurve::FP / 16)).collect();
        let holders = vec![
            // STREAM at width 12 of 16, shrink floor 8: 4 CPUs of spare, all
            // on the flat tail (zero marginal cost).
            with_curve(running(1, vec![0], 12, 16, 1), stream_curve(16)),
            // Static partition at width 16 of 16, shrink floor 8: 8 CPUs of
            // spare (the pre-fix rule's pick), every one costing throughput.
            with_curve(
                running(2, vec![0], 16, 16, 1),
                SpeedupCurve::from_rates(static_rates),
            ),
        ];
        let free = [4];
        let queue = vec![QueuedJob::new(3, 1, 8)];
        for actions in [
            MalleablePolicy::default().schedule(&view(32, &free, &holders), &queue, 0),
            MalleableScanPolicy::default().schedule(&view(32, &free, &holders), &queue, 0),
        ] {
            assert!(
                actions.contains(&SchedulerAction::Resize {
                    job_id: 1,
                    cpus_per_node: 8
                }),
                "the free-to-shrink STREAM job donates: {actions:?}"
            );
            assert!(
                !actions
                    .iter()
                    .any(|a| matches!(a, SchedulerAction::Resize { job_id: 2, .. })),
                "the static-partition job keeps its throughput: {actions:?}"
            );
            assert!(
                actions.iter().any(|a| matches!(
                    a,
                    SchedulerAction::Start {
                        job_id: 3,
                        cpus_per_node: 8,
                        ..
                    }
                )),
                "the queued job still starts: {actions:?}"
            );
        }
    }

    /// Regression (shrink economics): an admission whose donors lose more
    /// aggregate rate than the newcomer gains is refused. The donor's curve
    /// cliffs at width 12 — the first donated CPU costs 3/4 of its full rate
    /// (relative cost 12·FP) while the 8-CPU newcomer only brings 8·FP.
    #[test]
    fn admission_is_rejected_when_donor_loss_exceeds_newcomer_gain() {
        let cliff_rates: Vec<u64> = (0..=16u64)
            .map(|w| match w {
                0 => 0,
                1..=11 => SpeedupCurve::FP / 4,
                _ => SpeedupCurve::FP,
            })
            .collect();
        let holders = vec![with_curve(
            running(1, vec![0], 12, 16, 1),
            SpeedupCurve::from_rates(cliff_rates),
        )];
        let free = [4];
        let queue = vec![QueuedJob::new(2, 1, 8)];
        for actions in [
            MalleablePolicy::default().schedule(&view(16, &free, &holders), &queue, 0),
            MalleableScanPolicy::default().schedule(&view(16, &free, &holders), &queue, 0),
        ] {
            assert!(
                actions.is_empty(),
                "shrinking off the cliff loses 12·FP to gain 8·FP — the \
                 admission must be refused: {actions:?}"
            );
        }
    }

    /// Edge cases of the marginal-rate helpers: a flat single-entry curve
    /// (request width 1), a zero-marginal STREAM tail, a zero shrink limit
    /// (width already at the floor), and linear exactness.
    #[test]
    fn marginal_rate_helpers_handle_degenerate_curves() {
        // Request width 1: the one CPU carries the whole rate, nothing below
        // it, and the table clamps flat beyond it.
        let single = SpeedupCurve::from_rates(vec![0, SpeedupCurve::FP]);
        assert_eq!(single.marginal_rate(0), 0);
        assert_eq!(single.marginal_rate(1), SpeedupCurve::FP);
        assert_eq!(
            single.marginal_rate(5),
            0,
            "beyond the request the curve is flat"
        );
        assert_eq!(single.relative_marginal_cost(1), SpeedupCurve::FP);
        assert_eq!(single.zero_cost_run(1, 1), 0);
        assert_eq!(single.equal_cost_run(1, 1), 1);
        assert!(single.saturated_at(1));
        assert!(!single.saturated_at(0));

        // Zero-marginal tail: every STREAM CPU past the second is free to
        // donate, and a zero-cost run is in particular an equal-cost run.
        let stream = stream_curve(8);
        assert_eq!(stream.marginal_rate(8), 0);
        assert_eq!(stream.relative_marginal_cost(8), 0);
        assert_eq!(stream.zero_cost_run(8, 6), 6);
        assert_eq!(
            stream.zero_cost_run(8, 3),
            3,
            "the tail is capped by the limit"
        );
        assert_eq!(stream.equal_cost_run(8, 6), 6);
        assert!(stream.saturated_at(2));
        assert!(!stream.saturated_at(1));

        // Width already at the shrink floor (`min_cpus_per_node`): the limit
        // is 0 and both runs are empty — such a slot is never a donor.
        assert_eq!(stream.zero_cost_run(2, 0), 0);
        assert_eq!(stream.equal_cost_run(2, 0), 0);

        // Linear curves are exact on the FP grid at every width: one CPU is
        // always worth exactly FP, and nothing is ever free.
        let linear = SpeedupCurve::linear(4);
        for w in 1..=4usize {
            assert_eq!(linear.relative_marginal_cost(w), SpeedupCurve::FP);
            assert_eq!(linear.relative_rate(w), w as u64 * SpeedupCurve::FP);
            assert_eq!(linear.zero_cost_run(w, w), 0);
            assert_eq!(linear.equal_cost_run(w, w), w);
            assert!(!linear.saturated_at(w) || w == 4);
        }
    }

    /// Fixed-point rounding at a saturation knee: the documented truncation
    /// of `relative_marginal_cost` / `relative_rate`, pinned on a curve
    /// whose full rate (9) does not divide the FP numerator.
    #[test]
    fn marginal_cost_truncates_on_the_fp_grid_at_the_knee() {
        // rates 0, 3, 7, 9 at request width 3: marginals 3, 4, 2.
        let knee = SpeedupCurve::from_rates(vec![0, 3, 7, 9]);
        // Cost of the knee CPU: 2 · 3 · FP / 9 = 699050.666… → 699050.
        assert_eq!(knee.relative_marginal_cost(3), 699_050);
        assert_eq!(knee.relative_marginal_cost(2), 4 * 3 * SpeedupCurve::FP / 9);
        // The request width itself is exact (rate == full_rate cancels).
        assert_eq!(knee.relative_rate(3), 3 * SpeedupCurve::FP);
        // Below it the same truncation applies: 7 · 3 · FP / 9 → 2446677.
        assert_eq!(knee.relative_rate(2), 2_446_677);
        // The knee bounds the equal-cost run: marginal(3) = 2 ≠ marginal(2).
        assert_eq!(knee.equal_cost_run(3, 3), 1);
        assert_eq!(knee.zero_cost_run(3, 3), 0);
    }

    /// The incrementally-maintained zero-cost reclaim summary
    /// (`SchedIndex::cheap`) matches a from-scratch rebuild through starts,
    /// resizes and completions of curved and curve-less jobs alike.
    #[test]
    fn sched_index_cheap_summary_matches_rebuild() {
        let mut index = SchedIndex::new(2, 32);
        let linear = QueuedJob::new(1, 2, 8).malleable(2); // shrink floor 4
        let stream = QueuedJob::new(2, 1, 16)
            .malleable(1) // shrink floor 8
            .with_speedup(stream_curve(16));
        index.on_start(&linear, &[0, 1], 8, None);
        assert_eq!(index.cheap(), &[0, 0], "linear spare is never cheap");
        index.on_start(&stream, &[0], 12, None);
        assert_eq!(
            index.cheap(),
            &[4, 0],
            "all 4 spare CPUs sit on the flat tail"
        );
        index.on_resize(&stream, &[0], 12, 9);
        let running = vec![
            RunningJob {
                alloc: JobAllocation {
                    job_id: 1,
                    node_indices: vec![0, 1],
                    cpus_per_node: 8,
                },
                job: linear.clone(),
                start_us: 0,
                expected_end_us: None,
            },
            RunningJob {
                alloc: JobAllocation {
                    job_id: 2,
                    node_indices: vec![0],
                    cpus_per_node: 9,
                },
                job: stream.clone(),
                start_us: 0,
                expected_end_us: None,
            },
        ];
        assert_eq!(index, SchedIndex::rebuild(&[15, 24], &running));
        assert_eq!(index.cheap(), &[1, 0]);
        index.on_resize(&stream, &[0], 9, 16);
        assert_eq!(index.cheap(), &[8, 0]);
        index.on_complete(&stream, &[0], 16);
        assert_eq!(index, SchedIndex::rebuild(&[24, 24], &running[..1]));
        assert_eq!(index.cheap(), &[0, 0]);
    }

    #[test]
    fn fits_ever_diagnoses_impossible_jobs() {
        let free = [16, 16];
        let v = view(16, &free, &[]);
        assert!(v.fits_ever(&QueuedJob::new(1, 2, 16)).is_ok());
        assert!(v.fits_ever(&QueuedJob::new(2, 3, 1)).is_err());
        assert!(v.fits_ever(&QueuedJob::new(3, 1, 17)).is_err());
        assert_eq!(v.num_nodes(), 2);
        assert_eq!(v.total_free(), 32);
    }

    /// The whole current state expressed as a base [`ReleaseTimeline`] (the
    /// indexed forecast's input when the pass changed nothing).
    fn timeline_of(holders: &[Holder<'_>]) -> ReleaseTimeline {
        let mut timeline = ReleaseTimeline::new();
        for (id, h) in holders.iter().enumerate() {
            timeline.add(id as u64, h.node_indices, h.width, h.end_us);
        }
        timeline
    }

    /// The timeline walk and the reference replay must agree — time, node
    /// set and unprovability alike — on the same holder state.
    fn assert_timeline_matches_replay(
        nodes: usize,
        width: usize,
        free: &[usize],
        holders: &[Holder<'_>],
        now_us: TimeUs,
    ) {
        assert_eq!(
            earliest_timeline_fit(nodes, width, free, &timeline_of(holders), &[], now_us),
            earliest_release_fit(nodes, width, free, holders, now_us),
            "timeline walk diverged from the reference replay \
             (nodes={nodes}, width={width}, now={now_us})"
        );
    }

    /// A holder with no completion estimate never releases: a fit that needs
    /// its CPUs is unprovable (`None`) no matter how many estimated holders
    /// release around it — but CPUs it does not hold stay provable.
    #[test]
    fn release_fit_unestimated_holder_blocks_only_its_own_cpus() {
        // Node 0 is held half by an estimated job, half by one without an
        // estimate: a full-width fit on node 0 is never provable.
        let free = [0usize, 0];
        let holders = [
            Holder {
                end_us: Some(100),
                node_indices: &[0],
                width: 8,
            },
            Holder {
                end_us: None,
                node_indices: &[0],
                width: 8,
            },
            Holder {
                end_us: None,
                node_indices: &[1],
                width: 16,
            },
        ];
        assert_eq!(earliest_release_fit(1, 16, &free, &holders, 10), None);
        // The estimated half of node 0 is still provable, at its end.
        assert_eq!(
            earliest_release_fit(1, 8, &free, &holders, 10),
            Some((100, vec![0]))
        );
        assert_timeline_matches_replay(1, 16, &free, &holders, 10);
        assert_timeline_matches_replay(1, 8, &free, &holders, 10);
    }

    /// Overdue estimates (end ≤ now) release before the first future
    /// candidate, but their own end instant is never a candidate start time —
    /// and when *no* future end exists, the fit stays unprovable even though
    /// the overdue releases alone would satisfy it.
    #[test]
    fn release_fit_overdue_estimates_release_but_are_no_candidates() {
        let free = [0usize];
        let holders = [
            Holder {
                end_us: Some(50),
                node_indices: &[0],
                width: 8,
            },
            Holder {
                end_us: Some(100),
                node_indices: &[0],
                width: 4,
            },
            Holder {
                end_us: Some(200),
                node_indices: &[0],
                width: 4,
            },
        ];
        // now = 100: the ends at 50 and 100 are overdue — their CPUs count,
        // but the earliest candidate instant is the first future end.
        assert_eq!(
            earliest_release_fit(1, 16, &free, &holders, 100),
            Some((200, vec![0]))
        );
        // Drop the future holder: 12 CPUs would be free once the overdue
        // holders release, but with no future end there is no candidate.
        assert_eq!(earliest_release_fit(1, 12, &free, &holders[..2], 100), None);
        assert_timeline_matches_replay(1, 16, &free, &holders, 100);
        assert_timeline_matches_replay(1, 12, &free, &holders[..2], 100);
    }

    /// Holders sharing an end instant release together *before* the fit is
    /// probed at that instant — each release alone is too small here, so any
    /// probe-per-holder implementation would miss the fit or place it later.
    #[test]
    fn release_fit_groups_holders_sharing_an_end_instant() {
        let free = [0usize, 0, 16];
        let holders = [
            Holder {
                end_us: Some(100),
                node_indices: &[0],
                width: 16,
            },
            Holder {
                end_us: Some(100),
                node_indices: &[1],
                width: 16,
            },
        ];
        assert_eq!(
            earliest_release_fit(3, 16, &free, &holders, 10),
            Some((100, vec![0, 1, 2]))
        );
        // The shared instant is one candidate: a 2×16 fit lands there too,
        // on the first two nodes in index order.
        assert_eq!(
            earliest_release_fit(2, 16, &free, &holders, 10),
            Some((100, vec![0, 1]))
        );
        assert_timeline_matches_replay(3, 16, &free, &holders, 10);
        assert_timeline_matches_replay(2, 16, &free, &holders, 10);
    }

    /// A base timeline at pass-start widths plus an overlay of the pass's
    /// own changes — a shrink correction and a fresh start — walks to the
    /// same forecast as replaying the current widths directly.
    #[test]
    fn timeline_overlay_corrections_match_replay_of_current_widths() {
        // Pass start: A held 16 on node 0 (end 100), B holds 8 on node 1
        // (end 200). The pass shrank A to 10 (its 6 CPUs were consumed by
        // C, started 6-wide on node 1 with estimated end 150).
        let free = [6usize, 2];
        let mut base = ReleaseTimeline::new();
        base.add(1, &[0], 16, Some(100));
        base.add(2, &[1], 8, Some(200));
        let overlay = [
            TimelineDelta {
                end_us: 100,
                node_indices: &[0][..],
                delta: -6,
            },
            TimelineDelta {
                end_us: 150,
                node_indices: &[1][..],
                delta: 6,
            },
        ];
        let current = [
            Holder {
                end_us: Some(100),
                node_indices: &[0],
                width: 10,
            },
            Holder {
                end_us: Some(150),
                node_indices: &[1],
                width: 6,
            },
            Holder {
                end_us: Some(200),
                node_indices: &[1],
                width: 8,
            },
        ];
        for nodes in 0..=2 {
            for width in [1usize, 4, 6, 8, 10, 16, 17] {
                for now in [0u64, 99, 100, 149, 150, 250] {
                    assert_eq!(
                        earliest_timeline_fit(nodes, width, &free, &base, &overlay, now),
                        earliest_release_fit(nodes, width, &free, &current, now),
                        "overlaid walk diverged (nodes={nodes}, width={width}, now={now})"
                    );
                }
            }
        }
    }

    #[test]
    fn from_spec_derives_widths() {
        let spec = JobSpec::new(9, "hybrid")
            .with_tasks(4)
            .with_threads_per_task(4)
            .with_nodes(2)
            .with_time_limit_us(1_000);
        let q = QueuedJob::from_spec(&spec);
        assert_eq!(q.nodes, 2);
        assert_eq!(q.cpus_per_node, 8); // 2 tasks × 4 threads per node
        assert_eq!(q.min_cpus_per_node, 2); // one CPU per task
        assert!(q.malleable);
        assert_eq!(q.expected_duration_us, Some(1_000));
        assert_eq!(q.total_cpus(), 16);

        let rigid = QueuedJob::from_spec(&JobSpec::new(1, "r").with_tasks(2).rigid());
        assert_eq!(rigid.min_cpus_per_node, rigid.cpus_per_node);
    }

    /// Regression battery for the two ways a dirty-tracked skip could go
    /// wrong, each reproduced by a `#[cfg(test)]`-only policy variant that
    /// reintroduces the hazard on purpose. The sound (default) pass and the
    /// deliberately broken one run the same scenario: the broken one takes
    /// the wrong decision, proving the generation checks in
    /// [`ProbeMemo::still_blocked`] are what prevents it — with them
    /// bypassed, these tests fail exactly as a pre-fix implementation did.
    mod dirty_tracking_hazards {
        use super::*;

        /// A rigid holder at full width with an optional completion estimate.
        fn rigid_holder(
            id: u64,
            nodes: Vec<usize>,
            width: usize,
            end_us: Option<TimeUs>,
        ) -> RunningJob {
            RunningJob {
                job: QueuedJob::new(id, nodes.len(), width),
                alloc: JobAllocation {
                    job_id: id,
                    node_indices: nodes,
                    cpus_per_node: width,
                },
                start_us: 0,
                expected_end_us: end_us,
            }
        }

        fn iview<'a>(
            free: &'a [usize],
            running: &'a [RunningJob],
            index: &'a SchedIndex,
        ) -> ClusterView<'a> {
            ClusterView {
                node_cpus: 16,
                free,
                running,
                index: Some(index),
                order: None,
            }
        }

        /// Hazard (a), first-fit: a job is recorded blocked, then a release
        /// lands on its nodes. The sound pass re-probes (the release bumped
        /// the free generation of its width class) and starts it; a pass
        /// that trusts the stale signature skips the job forever.
        #[test]
        fn missed_release_must_invalidate_a_recorded_block_first_fit() {
            let holder = [rigid_holder(10, vec![0], 16, None)];
            let free_before = [0usize];
            let mut index = SchedIndex::rebuild(&free_before, &holder);
            let queue = vec![QueuedJob::new(1, 1, 16)];

            let mut sound = FirstFitPolicy::default();
            let mut probe = FirstFitPolicy::always_probe();
            let mut unsound = FirstFitPolicy::unsound_stale_skip();
            let before = iview(&free_before, &holder, &index);
            assert!(sound.schedule(&before, &queue, 0).is_empty());
            assert!(probe.schedule(&before, &queue, 0).is_empty());
            assert!(unsound.schedule(&before, &queue, 0).is_empty());

            // The holder completes: the driver frees the node and feeds the
            // event to the index, bumping every width class the release
            // crossed (1..=16) — the recorded signature is now stale.
            index.on_complete(&holder[0].job, &[0], 16);
            let free_after = [16usize];
            let after = iview(&free_after, &[], &index);

            let expected = probe.schedule(&after, &queue, 1);
            assert_eq!(
                expected.len(),
                1,
                "the always-probe reference starts the job after the release"
            );
            assert_eq!(
                sound.schedule(&after, &queue, 1),
                expected,
                "the dirty-tracked pass must re-probe after the release"
            );
            assert!(
                unsound.schedule(&after, &queue, 1).is_empty(),
                "hazard reproduced: trusting the stale signature skips the \
                 now-startable job — the generation check is load-bearing"
            );
        }

        /// Hazard (a), malleable: same missed-release shape through the
        /// malleable pass (whose signatures also witness the availability
        /// generation at the shrink floor).
        #[test]
        fn missed_release_must_invalidate_a_recorded_block_malleable() {
            let holder = [rigid_holder(10, vec![0], 16, None)];
            let free_before = [0usize];
            let mut index = SchedIndex::rebuild(&free_before, &holder);
            let queue = vec![QueuedJob::new(1, 1, 16)];

            let mut sound = MalleablePolicy::default();
            let mut probe = MalleablePolicy::always_probe();
            let mut unsound = MalleablePolicy::unsound_stale_skip();
            let before = iview(&free_before, &holder, &index);
            assert!(sound.schedule(&before, &queue, 0).is_empty());
            assert!(probe.schedule(&before, &queue, 0).is_empty());
            assert!(unsound.schedule(&before, &queue, 0).is_empty());

            index.on_complete(&holder[0].job, &[0], 16);
            let free_after = [16usize];
            let after = iview(&free_after, &[], &index);

            let expected = probe.schedule(&after, &queue, 1);
            assert_eq!(expected.len(), 1);
            assert_eq!(
                sound.schedule(&after, &queue, 1),
                expected,
                "the dirty-tracked malleable pass must re-probe after the release"
            );
            assert!(
                unsound.schedule(&after, &queue, 1).is_empty(),
                "hazard reproduced: the stale signature skips the startable job"
            );
        }

        /// Hazard (b), backfill: a memo-valid blocked FCFS job must *end the
        /// FCFS phase* (become the reserved head), exactly like a re-probed
        /// failure. A pass that instead skips onwards lets a later candidate
        /// — whose declared duration overruns the head's reservation — start
        /// in the head's place: the EASY guarantee is violated and the head
        /// is leapfrogged.
        #[test]
        fn memo_valid_head_must_not_be_leapfrogged() {
            let holder = [rigid_holder(10, vec![0], 8, Some(100_000_000))];
            let free = [8usize];
            let index = SchedIndex::rebuild(&free, &holder);
            // Head wants the whole node (reserved at the holder's release,
            // t = 100 s); the candidate fits *now* but runs 500 s — far past
            // the reservation, so EASY must refuse it.
            let queue = vec![
                QueuedJob::new(1, 1, 16).with_expected_duration_us(1_000_000_000),
                QueuedJob::new(2, 1, 8).with_expected_duration_us(500_000_000),
            ];
            let view = iview(&free, &holder, &index);
            let now = 10_000_000;

            let mut sound = BackfillPolicy::default();
            let mut unsound = BackfillPolicy::unsound_skip_continues();
            // Pass 1 probes the head fresh and records its count-proven
            // failure; the candidate is refused by the reservation window.
            assert!(sound.schedule(&view, &queue, now).is_empty());
            assert!(unsound.schedule(&view, &queue, now).is_empty());
            // Pass 2, unchanged state: the head's signature is memo-valid.
            assert!(
                sound.schedule(&view, &queue, now).is_empty(),
                "the memo-valid head stays the reserved head — nothing starts"
            );
            let leapfrog = unsound.schedule(&view, &queue, now);
            assert_eq!(
                leapfrog.len(),
                1,
                "hazard reproduced: skipping past the memo-valid head admits \
                 a candidate the reservation window forbids: {leapfrog:?}"
            );
            assert!(
                matches!(leapfrog[0], SchedulerAction::Start { job_id: 2, .. }),
                "the overrunning candidate leapfrogged the EASY head"
            );
        }
    }

    mod timeline_replay_equivalence {
        use super::*;
        use proptest::prelude::*;

        /// One running-or-started job as the property generator sees it:
        /// `original − shrink` is its current width; `fresh` marks a job the
        /// pass started itself (absent from the base timeline, its full
        /// current width rides in the overlay).
        #[derive(Debug, Clone)]
        struct PropHolder {
            nodes: Vec<usize>,
            original: usize,
            shrink: usize,
            end: Option<TimeUs>,
            fresh: bool,
        }

        fn holder(num_nodes: usize) -> impl Strategy<Value = PropHolder> {
            (
                proptest::collection::btree_set(0..num_nodes, 1..=3),
                1..=8usize,
                0..8usize,
                (any::<bool>(), 0u64..300),
                any::<bool>(),
            )
                .prop_map(|(nodes, original, shrink, (estimated, end), fresh)| {
                    PropHolder {
                        nodes: nodes.into_iter().collect(),
                        original,
                        shrink: shrink % original, // keep the current width ≥ 1
                        end: estimated.then_some(end),
                        fresh,
                    }
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// On arbitrary holder sets, the timeline walk equals the
            /// reference replay under BOTH production formulations: the
            /// whole current state as the base (empty overlay), and the
            /// pass-start state as the base with the pass's own shrinks and
            /// starts as overlay corrections.
            #[test]
            fn walk_matches_replay_on_arbitrary_holders(
                holders in proptest::collection::vec(holder(6), 0..8),
                free in proptest::collection::vec(0..=8usize, 6),
                nodes in 0..=4usize,
                width in 1..=10usize,
                now in 0u64..250,
            ) {
                let current: Vec<Holder<'_>> = holders
                    .iter()
                    .map(|h| Holder {
                        end_us: h.end,
                        node_indices: &h.nodes,
                        width: h.original - h.shrink,
                    })
                    .collect();
                let replay = earliest_release_fit(nodes, width, &free, &current, now);

                // Formulation 1: current state as base, nothing overlaid.
                let mut base_all = ReleaseTimeline::new();
                for (id, h) in holders.iter().enumerate() {
                    base_all.add(id as u64, &h.nodes, h.original - h.shrink, h.end);
                }
                prop_assert_eq!(
                    earliest_timeline_fit(nodes, width, &free, &base_all, &[], now),
                    replay.clone()
                );

                // Formulation 2: pass-start widths as base, the pass's own
                // shrinks (negative) and fresh starts (positive) overlaid.
                let mut base = ReleaseTimeline::new();
                let mut overlay: Vec<TimelineDelta<'_>> = Vec::new();
                for (id, h) in holders.iter().enumerate() {
                    if h.fresh {
                        if let Some(end_us) = h.end {
                            overlay.push(TimelineDelta {
                                end_us,
                                node_indices: &h.nodes,
                                delta: (h.original - h.shrink) as i64,
                            });
                        }
                    } else {
                        base.add(id as u64, &h.nodes, h.original, h.end);
                        if h.shrink > 0 {
                            if let Some(end_us) = h.end {
                                overlay.push(TimelineDelta {
                                    end_us,
                                    node_indices: &h.nodes,
                                    delta: -(h.shrink as i64),
                                });
                            }
                        }
                    }
                }
                overlay.sort_by_key(|d| d.end_us);
                prop_assert_eq!(
                    earliest_timeline_fit(nodes, width, &free, &base, &overlay, now),
                    replay
                );
            }
        }
    }
}
