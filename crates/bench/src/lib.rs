//! Shared experiment harness for the per-figure binaries and the benches.
//!
//! Every figure of the paper's evaluation compares the *Serial* and *DROM*
//! scenarios over some set of application configurations. This crate holds the
//! sweep logic once; the `fig*` binaries in `src/bin/` select the slice of the
//! sweep their figure plots and print it as a table (and CSV on request).

#![forbid(unsafe_code)]

use drom_apps::{AppConfig, AppKind, Table1};
use drom_metrics::{Scenario, Table};
use drom_sim::{
    high_priority_workload, in_situ_workload, SimJob, SimulationResult, WorkloadSimulator,
};

/// Delay (seconds) after which the analytics job of use case 1 is submitted.
pub const ANALYTICS_DELAY_S: f64 = 100.0;
/// Delay (seconds) after which the high-priority job of use case 2 is submitted.
pub const HIGH_PRIORITY_DELAY_S: f64 = 200.0;

/// One cell of the use-case-1 sweep: a (simulation, analytics) configuration
/// pair simulated under both scenarios.
pub struct UseCase1Result {
    /// The simulation configuration (NEST or CoreNeuron).
    pub simulation: AppConfig,
    /// The analytics configuration (Pils or STREAM).
    pub analytics: AppConfig,
    /// The workload that was simulated.
    pub workload: Vec<SimJob>,
    /// Serial-scenario result.
    pub serial: SimulationResult,
    /// DROM-scenario result.
    pub drom: SimulationResult,
}

impl UseCase1Result {
    /// Runs one (simulation, analytics) pair under both scenarios.
    pub fn run(simulation: AppConfig, analytics: AppConfig) -> Self {
        let workload = in_situ_workload(simulation, analytics, ANALYTICS_DELAY_S);
        let serial = WorkloadSimulator::new(Scenario::Serial).run(&workload);
        let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);
        UseCase1Result {
            simulation,
            analytics,
            workload,
            serial,
            drom,
        }
    }

    /// Row label like `"NEST Conf. 1 + Pils Conf. 2"`.
    pub fn label(&self) -> String {
        format!(
            "{} {} + {} {}",
            self.simulation.kind.name(),
            self.simulation.short_label(),
            self.analytics.kind.name(),
            self.analytics.short_label()
        )
    }

    /// Name of the simulation job inside the workload.
    pub fn simulation_name(&self) -> &str {
        &self.workload[0].name
    }

    /// Name of the analytics job inside the workload.
    pub fn analytics_name(&self) -> &str {
        &self.workload[1].name
    }

    /// Total run time of a scenario in seconds.
    pub fn total_run_time_s(&self, scenario: Scenario) -> f64 {
        self.result(scenario).report.total_run_time() as f64 / 1e6
    }

    /// Average response time of a scenario in seconds.
    pub fn average_response_s(&self, scenario: Scenario) -> f64 {
        self.result(scenario).report.average_response_time() / 1e6
    }

    /// Response time of one job (by name) in seconds.
    pub fn response_s(&self, scenario: Scenario, job_name: &str) -> f64 {
        self.result(scenario)
            .report
            .response_time_of(job_name)
            .unwrap_or(0) as f64
            / 1e6
    }

    /// The result of one scenario.
    pub fn result(&self, scenario: Scenario) -> &SimulationResult {
        match scenario {
            Scenario::Serial => &self.serial,
            _ => &self.drom,
        }
    }
}

/// Runs the use-case-1 sweep for one simulator against every analytics
/// configuration of the paper (Pils Conf. 1–3 and STREAM).
pub fn use_case1_sweep(simulator: AppKind) -> Vec<UseCase1Result> {
    let sim_configs = Table1::of(simulator);
    let analytics = Table1::analytics();
    let mut results = Vec::new();
    for sim_config in &sim_configs {
        for ana_config in &analytics {
            results.push(UseCase1Result::run(*sim_config, *ana_config));
        }
    }
    results
}

/// Restricts a sweep to one analytics kind (e.g. only Pils pairs).
pub fn filter_analytics(results: &[UseCase1Result], kind: AppKind) -> Vec<&UseCase1Result> {
    results
        .iter()
        .filter(|r| r.analytics.kind == kind)
        .collect()
}

/// The use-case-2 workload simulated under both scenarios.
pub fn use_case2() -> (Vec<SimJob>, SimulationResult, SimulationResult) {
    let workload = high_priority_workload(HIGH_PRIORITY_DELAY_S);
    let serial = WorkloadSimulator::new(Scenario::Serial).run(&workload);
    let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);
    (workload, serial, drom)
}

/// Builds the standard "Serial vs DROM vs improvement" table for a
/// lower-is-better metric given `(label, serial, drom)` rows.
pub fn improvement_table(title: &str, metric: &str, rows: &[(String, f64, f64)]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "workload",
            &format!("Serial {metric}"),
            &format!("DROM {metric}"),
            "improvement [%]",
        ],
    );
    for (label, serial, drom) in rows {
        let improvement = drom_metrics::workload::percent_improvement(*serial, *drom);
        table.add_row(&[
            label.clone(),
            format!("{serial:.0}"),
            format!("{drom:.0}"),
            format!("{improvement:+.1}"),
        ]);
    }
    table
}

/// Prints a table and, when `--csv` was passed on the command line, its CSV
/// form as well.
pub fn emit(table: &Table) {
    println!("{}", table.render());
    if std::env::args().any(|a| a == "--csv") {
        println!("{}", table.to_csv());
    }
}

/// Shared fixtures for the scheduling-pass benchmarks (`sched_scale`) and
/// the CI perf-regression guard (`sched_guard`), so both measure exactly the
/// same loaded cluster snapshot.
pub mod sched_fixtures {
    use std::collections::HashMap;

    use drom_apps::AppKind;
    use drom_slurm::policy::{JobAllocation, QueuedJob, RunningJob};
    use drom_slurm::SpeedupCurve;

    /// CPUs per node of the bench clusters.
    pub const NODE_CPUS: usize = 16;

    /// A loaded cluster snapshot: ~1.5 running jobs per node (1–4 nodes
    /// each, some shrunk; the shape mix saturates the cluster just before
    /// the cap) plus a `nodes/2`-job queue — the steady state of the
    /// `cluster_sweep` trace. At 128 nodes this is exactly the 181-running /
    /// 64-queued view the committed `BENCH_sched.json` baseline measured.
    pub fn loaded_state(nodes: usize) -> (Vec<usize>, Vec<RunningJob>, Vec<QueuedJob>) {
        let cap = nodes * 3 / 2;
        let mut free = vec![NODE_CPUS; nodes];
        let mut running = Vec::new();
        let mut id = 1u64;
        // Deterministic placement: walk the nodes, dropping jobs of rotating
        // shapes until the cluster is ~89% allocated.
        let shapes = [(1usize, 4usize), (2, 8), (4, 16), (1, 8), (2, 4)];
        let mut node = 0usize;
        for i in 0.. {
            let (span, width) = shapes[i % shapes.len()];
            let indices: Vec<usize> = (0..span).map(|k| (node + k) % nodes).collect();
            if indices.iter().any(|&n| free[n] < width) {
                node += 1;
                if running.len() >= cap || i > 4 * nodes {
                    break;
                }
                continue;
            }
            for &n in &indices {
                free[n] -= width;
            }
            let shrunk = i % 3 == 0 && width > 2;
            running.push(RunningJob {
                job: QueuedJob::new(id, span, width)
                    .malleable((width / 4).max(1))
                    .with_expected_duration_us(1_000_000 + 10_000 * id),
                alloc: JobAllocation {
                    job_id: id,
                    node_indices: indices,
                    cpus_per_node: if shrunk { (width / 2).max(1) } else { width },
                },
                start_us: 0,
                expected_end_us: Some(1_000_000 + 10_000 * id),
            });
            if shrunk {
                // The shrink freed half the width on each node.
                let half = width - (width / 2).max(1);
                for &n in &running.last().unwrap().alloc.node_indices {
                    free[n] += half;
                }
            }
            id += 1;
            node += span;
            if running.len() >= cap {
                break;
            }
        }
        let queue: Vec<QueuedJob> = (0..nodes / 2)
            .map(|i| {
                let (span, width) = shapes[i % shapes.len()];
                QueuedJob::new(10_000 + i as u64, span, width)
                    .malleable((width / 4).max(1))
                    .with_submit_us(i as u64)
                    .with_expected_duration_us(500_000 + 1_000 * i as u64)
            })
            .collect();
        (free, running, queue)
    }

    /// A reservation-stress snapshot: every node runs one rigid
    /// three-quarter-width job with a *distinct* completion estimate, and the
    /// queue holds a single cluster-wide full-width rigid job. Nothing can be
    /// shrunk (no donors), so the whole pass cost is the drain-reservation
    /// forecast — which only succeeds at the very last release, making the
    /// pass walk every candidate instant. Under the pre-timeline replay that
    /// is O(running × nodes) fit probes; under the release-timeline walk it
    /// is O(running) delta applications plus one probe. This is the fixture
    /// behind `malleable_reservation_pass_1024n` and the reservation half of
    /// `sched_guard`.
    pub fn reservation_stress_state(nodes: usize) -> (Vec<usize>, Vec<RunningJob>, Vec<QueuedJob>) {
        let width = NODE_CPUS * 3 / 4;
        let free = vec![NODE_CPUS - width; nodes];
        let running: Vec<RunningJob> = (0..nodes)
            .map(|n| {
                let id = n as u64 + 1;
                RunningJob {
                    job: QueuedJob::new(id, 1, width)
                        .with_expected_duration_us(1_000_000 + 10_000 * id),
                    alloc: JobAllocation {
                        job_id: id,
                        node_indices: vec![n],
                        cpus_per_node: width,
                    },
                    start_us: 0,
                    expected_end_us: Some(1_000_000 + 10_000 * id),
                }
            })
            .collect();
        let queue =
            vec![QueuedJob::new(100_000, nodes, NODE_CPUS).with_expected_duration_us(600_000_000)];
        (free, running, queue)
    }

    /// The same loaded snapshot with the calibrated application models
    /// attached: every job — running and queued — carries the speedup curve
    /// of a deterministically rotating application kind, so a pass over this
    /// view pays the curve-scaled estimate arithmetic instead of the linear
    /// `div_ceil`. This is the fixture of the `malleable_model_pass_128n`
    /// bench and the model half of `sched_guard`.
    pub fn loaded_state_model(nodes: usize) -> (Vec<usize>, Vec<RunningJob>, Vec<QueuedJob>) {
        let (free, mut running, mut queue) = loaded_state(nodes);
        let kinds = [
            AppKind::Nest,
            AppKind::CoreNeuron,
            AppKind::Pils,
            AppKind::Stream,
        ];
        let mut curves: HashMap<(AppKind, usize), SpeedupCurve> = HashMap::new();
        let mut attach = |job: &mut QueuedJob, salt: u64| {
            let kind = kinds[salt as usize % kinds.len()];
            let width = job.cpus_per_node;
            let curve = curves
                .entry((kind, width))
                .or_insert_with(|| drom_sim::speedup_curve(kind, width, width))
                .clone();
            job.speedup = Some(curve);
        };
        for r in running.iter_mut() {
            let id = r.alloc.job_id;
            attach(&mut r.job, id);
        }
        for q in queue.iter_mut() {
            let id = q.id;
            attach(q, id);
        }
        (free, running, queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn use_case1_sweep_covers_all_pairs() {
        let results = use_case1_sweep(AppKind::Nest);
        // 2 NEST configurations x 4 analytics configurations.
        assert_eq!(results.len(), 8);
        assert_eq!(filter_analytics(&results, AppKind::Pils).len(), 6);
        assert_eq!(filter_analytics(&results, AppKind::Stream).len(), 2);
        for r in &results {
            assert!(r.total_run_time_s(Scenario::Serial) > 0.0);
            assert!(r.total_run_time_s(Scenario::Drom) > 0.0);
            assert!(r.label().contains("NEST"));
            assert!(r.response_s(Scenario::Drom, r.analytics_name()) > 0.0);
            assert!(r.response_s(Scenario::Serial, r.simulation_name()) > 0.0);
            assert!(r.average_response_s(Scenario::Drom) > 0.0);
        }
    }

    #[test]
    fn use_case2_runs_both_scenarios() {
        let (workload, serial, drom) = use_case2();
        assert_eq!(workload.len(), 2);
        assert!(serial.report.total_run_time() > 0);
        assert!(drom.report.total_run_time() > 0);
    }

    #[test]
    fn improvement_table_formats_rows() {
        let table = improvement_table(
            "demo",
            "[s]",
            &[
                ("a".to_string(), 100.0, 90.0),
                ("b".to_string(), 50.0, 55.0),
            ],
        );
        let text = table.render();
        assert!(text.contains("+10.0"));
        assert!(text.contains("-10.0"));
        assert_eq!(table.num_rows(), 2);
    }
}
