//! Figure 15: average response time of the high-priority use case, Serial vs
//! DROM (the paper reports a 10% improvement).
//!
//! Run with: `cargo run -p drom-bench --bin fig15_highprio_response`

use drom_bench::{emit, improvement_table, use_case2};
use drom_metrics::Table;

fn main() {
    let (workload, serial, drom) = use_case2();

    emit(&improvement_table(
        "Figure 15: use case 2 average response time",
        "[s]",
        &[(
            "NEST Conf. 1 + CoreNeuron Conf. 1".to_string(),
            serial.report.average_response_time() / 1e6,
            drom.report.average_response_time() / 1e6,
        )],
    ));

    // Per-job breakdown, useful to see where the improvement comes from: the
    // high-priority job starts (and finishes) much earlier under DROM.
    let mut per_job = Table::new(
        "Per-job response times",
        &[
            "job",
            "Serial [s]",
            "DROM [s]",
            "Serial wait [s]",
            "DROM wait [s]",
        ],
    );
    for job in &workload {
        let serial_record = serial.report.jobs.iter().find(|j| j.name == job.name);
        let drom_record = drom.report.jobs.iter().find(|j| j.name == job.name);
        per_job.add_row(&[
            job.name.clone(),
            format!(
                "{:.0}",
                serial_record
                    .map(|j| j.response_time() as f64 / 1e6)
                    .unwrap_or(0.0)
            ),
            format!(
                "{:.0}",
                drom_record
                    .map(|j| j.response_time() as f64 / 1e6)
                    .unwrap_or(0.0)
            ),
            format!(
                "{:.0}",
                serial_record
                    .map(|j| j.wait_time() as f64 / 1e6)
                    .unwrap_or(0.0)
            ),
            format!(
                "{:.0}",
                drom_record
                    .map(|j| j.wait_time() as f64 / 1e6)
                    .unwrap_or(0.0)
            ),
        ]);
    }
    emit(&per_job);
}
