//! Regenerates Table 1 of the paper: the application configurations used by
//! the evaluation (MPI tasks x OpenMP threads per configuration).
//!
//! Run with: `cargo run -p drom-bench --bin table1` (add `--csv` for CSV).

use drom_apps::Table1;
use drom_bench::emit;
use drom_metrics::Table;

fn main() {
    let mut table = Table::new(
        "Table 1: use case application configurations",
        &[
            "Application",
            "Conf.",
            "MPI tasks",
            "OpenMP threads",
            "CPUs/node",
        ],
    );
    for config in Table1::all() {
        table.add_row(&[
            config.kind.name().to_string(),
            config.short_label(),
            config.mpi_tasks.to_string(),
            config.threads_per_task.to_string(),
            config.cpus_per_node().to_string(),
        ]);
    }
    emit(&table);
}
